//! `jsdetect-serve`: the resident detection daemon.
//!
//! ```text
//! # Train a model, then serve it:
//! jsdetect-cli train --n 240 --seed 42 --model model.json
//! jsdetect-serve --model model.json --addr 127.0.0.1:7333
//!
//! # Ask it things (HTTP):
//! curl -s localhost:7333/analyze -d '{"src":"eval(atob(p))","deadline_ms":500}'
//! curl -s localhost:7333/healthz
//! curl -s localhost:7333/metrics
//!
//! # Graceful drain: SIGTERM (or POST /shutdown) stops admissions,
//! # answers every accepted request, and exits 0.
//! ```
//!
//! The same socket also speaks the 4-byte length-prefixed JSON framing for
//! machine clients; the daemon sniffs the protocol per connection.

use jsdetect_suite::serve::{serve, ChaosConfig, Daemon, ServeConfig, TransportConfig};
use jsdetect_suite::{cache::AnalysisCache, cache::CacheConfig, detector::TrainedDetectors};
use std::net::TcpListener;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  jsdetect-serve --model <model.json> [--addr 127.0.0.1:7333]\n\
         \x20                [--workers 4] [--queue 64] [--cache-dir <dir>]\n\
         \x20                [--limits wild|trusted|interactive] [--deadline-ms 0]\n\
         \x20                [--stuck-after-ms 10000] [--max-request-bytes 4194304]\n\
         \x20                [--chaos-panic-every N] [--chaos-delay-every N]\n\
         \x20                [--chaos-delay-ms MS] [--chaos-cache-fail-every N]\n\
         \x20                [--train-n N] [--seed 42]\n\n\
         --model loads a jsdetect-cli trained model; --train-n trains one\n\
         in-process instead (useful for smoke tests). SIGTERM or SIGINT\n\
         drains gracefully: admissions stop, accepted requests are\n\
         answered, the final telemetry snapshot goes to stderr."
    );
    std::process::exit(2);
}

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
}

fn arg_num<T: std::str::FromStr>(argv: &[String], flag: &str, default: T) -> T {
    match arg_value(argv, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
    }
}

fn load_detectors(argv: &[String]) -> TrainedDetectors {
    if let Some(model_path) = arg_value(argv, "--model") {
        let json = std::fs::read_to_string(&model_path).unwrap_or_else(|e| {
            eprintln!("cannot read {model_path}: {e}");
            std::process::exit(1);
        });
        return TrainedDetectors::from_json(&json).unwrap_or_else(|e| {
            eprintln!("invalid model {model_path}: {e}");
            std::process::exit(1);
        });
    }
    if let Some(n) = arg_value(argv, "--train-n") {
        let n: usize = n.parse().unwrap_or_else(|_| usage());
        let seed = arg_num(argv, "--seed", 42u64);
        eprintln!("[jsdetect-serve] training in-process model (n={n}, seed={seed})...");
        return jsdetect_suite::detector::train_pipeline(
            n,
            seed,
            &jsdetect_suite::detector::DetectorConfig::fast(),
        )
        .detectors;
    }
    usage();
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let shutdown = jsdetect_suite::serve::signal::install();
    let detectors = Arc::new(load_detectors(&argv));

    let limits_name = arg_value(&argv, "--limits").unwrap_or_else(|| "wild".to_string());
    let default_limits =
        jsdetect_suite::detector::Limits::from_name(&limits_name).unwrap_or_else(|| {
            eprintln!("unknown limits preset `{limits_name}`");
            std::process::exit(2);
        });
    let cache = arg_value(&argv, "--cache-dir").map(|dir| {
        Arc::new(AnalysisCache::open(CacheConfig::new(&dir, &default_limits)).unwrap_or_else(|e| {
            eprintln!("cannot open cache at {dir}: {e}");
            std::process::exit(1);
        }))
    });

    let cfg = ServeConfig {
        workers: arg_num(&argv, "--workers", 4usize),
        queue_capacity: arg_num(&argv, "--queue", 64usize),
        default_limits,
        default_deadline_ms: arg_num(&argv, "--deadline-ms", 0u64),
        stuck_after_ms: arg_num(&argv, "--stuck-after-ms", 10_000u64),
        chaos: ChaosConfig {
            panic_every: arg_num(&argv, "--chaos-panic-every", 0u64),
            delay_every: arg_num(&argv, "--chaos-delay-every", 0u64),
            delay_ms: arg_num(&argv, "--chaos-delay-ms", 0u64),
            cache_fail_every: arg_num(&argv, "--chaos-cache-fail-every", 0u64),
        },
        ..ServeConfig::default()
    };
    if cfg.chaos.armed() {
        eprintln!("[jsdetect-serve] CHAOS ARMED: {:?}", cfg.chaos);
    }

    let addr = arg_value(&argv, "--addr").unwrap_or_else(|| "127.0.0.1:7333".to_string());
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let transport = TransportConfig {
        max_request_bytes: arg_num(&argv, "--max-request-bytes", 4 * 1024 * 1024usize),
        ..TransportConfig::default()
    };

    let daemon = Arc::new(Daemon::start(cfg, detectors, cache));
    eprintln!(
        "[jsdetect-serve] listening on {} ({} workers, queue {}); SIGTERM drains",
        listener.local_addr().map(|a| a.to_string()).unwrap_or(addr),
        daemon.workers(),
        daemon.queue_depth(),
    );

    match serve(Arc::clone(&daemon), listener, transport, shutdown) {
        Ok(report) => {
            eprintln!(
                "[jsdetect-serve] drained: accepted={} responses={} drained={} \
                 rejected={} quarantined={} degraded={} worker_replaced={} breaker={}",
                report.stats.accepted,
                report.stats.responses,
                report.stats.drained,
                report.stats.rejected,
                report.stats.quarantined,
                report.stats.degraded,
                report.stats.worker_replaced,
                report.breaker_state.as_str(),
            );
            eprintln!("[jsdetect-serve] final telemetry snapshot:");
            eprint!("{}", report.final_telemetry_jsonl);
            if report.stats.responses != report.stats.accepted {
                eprintln!(
                    "[jsdetect-serve] ERROR: response accounting mismatch ({} accepted, {} answered)",
                    report.stats.accepted, report.stats.responses
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("[jsdetect-serve] transport error: {e}");
            std::process::exit(1);
        }
    }
}

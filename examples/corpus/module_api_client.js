// A small fetch-based API client, written as a modern ES module.
import { buildQuery, parseBody as parse } from "./http_util.js";
import defaultRetry, { backoff } from "./retry.js";
import * as log from "./log.js";

const BASE = import.meta.url.replace(/\/[^/]*$/, "");
const MAX_BODY = 10_000_000n;

class ApiClient {
    #base;
    #retries = 3;
    static #instances = 0;

    constructor(base) {
        this.#base = base || BASE;
        ApiClient.#instances += 1;
    }

    get retries() {
        return this.#retries;
    }

    async #request(path, params) {
        const url = `${this.#base}${path}?${buildQuery(params ?? {})}`;
        for (let attempt = 0; attempt <= this.#retries; attempt++) {
            try {
                const res = await fetch(url);
                if (res.ok) {
                    return parse(await res.text(), MAX_BODY);
                }
                log.warn(`status ${res.status} on ${url}`);
            } catch (err) {
                log.warn(`attempt ${attempt} failed: ${err?.message}`);
            }
            await backoff(attempt);
        }
        throw new Error(`gave up on ${path} after ${this.#retries} retries`);
    }

    async get(path, params) {
        return this.#request(path, params);
    }

    static count() {
        return ApiClient.#instances;
    }
}

export async function lazyPlugins(names) {
    const mods = await Promise.all(names.map((n) => import(`./plugins/${n}.js`)));
    return mods.map((m) => m.default ?? m);
}

export { defaultRetry as retry };
export default ApiClient;

//! Obfuscation-signature lint engine.
//!
//! The statistical detectors (Level 1 / Level 2) answer *whether* a script
//! was transformed; this crate answers *where* and *why*. Each [`Rule`]
//! inspects one parsed [`Program`] together with its [`ProgramGraph`]
//! (scopes, control flow, data flow) and emits span-anchored
//! [`Diagnostic`]s for the structural signatures the paper's techniques
//! leave behind (§II-A): dispatcher loops from control-flow flattening,
//! global string pools and their decoder shims, anti-debugging probes,
//! self-defending guards, injected dead code, and identifier-charset
//! anomalies.
//!
//! The per-rule hit counts, normalized by statement count
//! ([`LintSummary::features`]), are also appended to the hand-picked
//! feature block of the detector's vector space, so the classifiers can
//! use the same evidence the diagnostics show to a human.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
pub mod rules;

pub use context::{DecoderFn, DispatchSwitch, Facts, LintContext, OpaqueBranch, StringArray};

use jsdetect_ast::{Program, Span};
use jsdetect_flow::ProgramGraph;

/// How alarming a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Context worth surfacing, common in benign code.
    Info,
    /// Suspicious in isolation, legitimate uses exist (dead code, unused
    /// names, odd identifier charsets).
    Warning,
    /// A structural signature of a specific obfuscation technique.
    Signature,
}

impl Severity {
    /// Lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Signature => "signature",
        }
    }
}

/// One finding, anchored to the source range that exhibits it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Source range the finding points at.
    pub span: Span,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Structured key/value details (state-variable names, counts, …).
    pub data: Vec<(&'static str, String)>,
}

/// A single lint rule.
pub trait Rule {
    /// Stable kebab-case identifier.
    fn name(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// Inspects the collected facts and appends findings to `out`.
    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Number of built-in rules.
pub const N_RULES: usize = 9;

/// Built-in rule identifiers, in [`LintSummary::counts`] order.
pub const RULE_NAMES: [&str; N_RULES] = [
    "unreachable-code",
    "unused-binding",
    "flattening-dispatcher",
    "global-string-array",
    "string-decoder-call",
    "debugger-in-loop",
    "self-defending-tostring",
    "non-alphanumeric-density",
    "comma-sequence-density",
];

/// Runs a set of rules over one program in a single collection pass.
pub struct LintRunner {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for LintRunner {
    /// A runner with every built-in rule enabled.
    fn default() -> Self {
        LintRunner { rules: rules::default_rules() }
    }
}

impl LintRunner {
    /// A runner with a custom rule set.
    pub fn new(rules: Vec<Box<dyn Rule>>) -> Self {
        LintRunner { rules }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Lints one program; diagnostics come back sorted by span.
    pub fn run(&self, src: &str, program: &Program, graph: &ProgramGraph) -> Vec<Diagnostic> {
        self.run_with_summary(src, program, graph).0
    }

    /// Lints one program and also returns the per-rule summary used as
    /// classifier features.
    pub fn run_with_summary(
        &self,
        src: &str,
        program: &Program,
        graph: &ProgramGraph,
    ) -> (Vec<Diagnostic>, LintSummary) {
        let ctx = LintContext::collect(src, program, graph);
        let mut out = Vec::new();
        for rule in &self.rules {
            rule.check(&ctx, &mut out);
        }
        out.sort_by(|a, b| {
            (a.span.start, a.span.end, a.rule).cmp(&(b.span.start, b.span.end, b.rule))
        });
        let summary = LintSummary::new(&out, ctx.facts.statements);
        (out, summary)
    }
}

/// Per-rule hit counts for one script, plus the statement count used to
/// normalize them into densities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Findings per rule, indexed like [`RULE_NAMES`].
    pub counts: [u32; N_RULES],
    /// Statements walked (density denominator).
    pub statements: u32,
}

impl LintSummary {
    /// Length of the feature block [`LintSummary::features`] produces:
    /// one density per rule plus the total density.
    pub const N_FEATURES: usize = N_RULES + 1;

    /// Tallies diagnostics into a summary.
    pub fn new(diags: &[Diagnostic], statements: u32) -> Self {
        let mut counts = [0u32; N_RULES];
        for d in diags {
            if let Some(i) = RULE_NAMES.iter().position(|n| *n == d.rule) {
                counts[i] += 1;
            }
        }
        LintSummary { counts, statements }
    }

    /// Findings for one rule by name (0 for unknown rules).
    pub fn count(&self, rule: &str) -> u32 {
        RULE_NAMES.iter().position(|n| *n == rule).map_or(0, |i| self.counts[i])
    }

    /// Total findings across all rules.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Per-rule densities (count / statements) followed by the total
    /// density — the block appended to the hand-picked feature vector.
    pub fn features(&self) -> Vec<f32> {
        let denom = self.statements.max(1) as f32;
        let mut v: Vec<f32> = self.counts.iter().map(|&c| c as f32 / denom).collect();
        v.push(self.total() as f32 / denom);
        v
    }

    /// Names for [`LintSummary::features`], in order.
    pub fn feature_names() -> Vec<String> {
        RULE_NAMES
            .iter()
            .map(|n| format!("lint:{}", n))
            .chain(std::iter::once("lint:total".to_string()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_match_rule_names() {
        let runner = LintRunner::default();
        let names: Vec<&str> = runner.rules().iter().map(|r| r.name()).collect();
        assert_eq!(names, RULE_NAMES.to_vec());
    }

    #[test]
    fn summary_counts_and_features() {
        let d = |rule: &'static str| Diagnostic {
            rule,
            span: Span::DUMMY,
            severity: Severity::Warning,
            message: String::new(),
            data: Vec::new(),
        };
        let diags = vec![d("unused-binding"), d("unused-binding"), d("debugger-in-loop")];
        let s = LintSummary::new(&diags, 10);
        assert_eq!(s.count("unused-binding"), 2);
        assert_eq!(s.count("debugger-in-loop"), 1);
        assert_eq!(s.count("no-such-rule"), 0);
        assert_eq!(s.total(), 3);
        let f = s.features();
        assert_eq!(f.len(), LintSummary::N_FEATURES);
        assert!((f[1] - 0.2).abs() < 1e-6);
        assert!((f[LintSummary::N_FEATURES - 1] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn feature_names_align_with_features() {
        let names = LintSummary::feature_names();
        assert_eq!(names.len(), LintSummary::N_FEATURES);
        assert_eq!(names[0], format!("lint:{}", RULE_NAMES[0]));
        assert_eq!(names.last().unwrap(), "lint:total");
    }

    #[test]
    fn zero_statements_does_not_divide_by_zero() {
        let s = LintSummary::default();
        assert!(s.features().iter().all(|v| v.is_finite()));
    }
}

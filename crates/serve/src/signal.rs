//! SIGTERM/SIGINT → graceful-drain flag, with no new dependencies.
//!
//! std links libc already, so the classic `signal(2)` registration is one
//! `extern "C"` declaration away. The handler body is as async-signal-safe
//! as it gets: a single relaxed store into a static [`AtomicBool`]. The
//! accept loop polls that flag between connections and starts the drain
//! when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM or SIGINT arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Registers handlers for SIGTERM and SIGINT and returns the flag they
/// set. Safe to call more than once. On non-Unix targets this returns the
/// flag without registering anything (tests flip it directly via
/// [`request_shutdown`]).
pub fn install() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}

/// Flips the shutdown flag programmatically — the in-process equivalent of
/// delivering SIGTERM (used by tests and `POST /shutdown`).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Whether a shutdown has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal(2)` with a handler that only performs a relaxed
        // atomic store is async-signal-safe; registration itself is a
        // plain libc call with valid arguments.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_flips_the_installed_flag() {
        let flag = install();
        assert!(!flag.load(std::sync::atomic::Ordering::Acquire) || shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        assert!(flag.load(std::sync::atomic::Ordering::Acquire));
    }
}

//! Ground-truth dataset construction (paper §III-D2, §III-E).
//!
//! Regular scripts come from the [`crate::generator`]; transformed
//! variants are produced with the `jsdetect-transform` passes. Labels
//! follow the paper's conventions: a sample carries every technique that
//! was applied, plus implied labels (a tool that must emit compact output,
//! like self-defending, also leaves the *minification simple* trace).

use crate::generator::regular_corpus;
use jsdetect_obs::names;
use jsdetect_transform::{apply, Technique};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One labeled script.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Source text.
    pub src: String,
    /// Ground-truth techniques (empty = regular).
    pub techniques: Vec<Technique>,
}

impl LabeledSample {
    /// A regular (untransformed) sample.
    pub fn regular(src: String) -> Self {
        LabeledSample { src, techniques: Vec::new() }
    }

    /// Whether any minification technique applies.
    pub fn is_minified(&self) -> bool {
        self.techniques.iter().any(|t| t.is_minification())
    }

    /// Whether any obfuscation technique applies.
    pub fn is_obfuscated(&self) -> bool {
        self.techniques.iter().any(|t| !t.is_minification())
    }

    /// Whether the sample is transformed at all.
    pub fn is_transformed(&self) -> bool {
        !self.techniques.is_empty()
    }

    /// Label vector over the ten techniques.
    pub fn label_vector(&self) -> Vec<bool> {
        let mut v = vec![false; Technique::ALL.len()];
        for t in &self.techniques {
            v[t.index()] = true;
        }
        v
    }
}

/// Expands a technique set with implied labels: self-defending forces
/// compact output, so its samples also carry the *minification simple*
/// whitespace trace (the paper notes single-configuration samples can have
/// up to three labels for this reason).
pub fn implied_labels(techniques: &[Technique]) -> Vec<Technique> {
    let mut out: Vec<Technique> = techniques.to_vec();
    // Self-defending requires compact output, leaving the simple-
    // minification whitespace trace.
    if out.contains(&Technique::SelfDefending) {
        out.push(Technique::MinificationSimple);
    }
    // Advanced minification (Closure-style) performs everything basic
    // minification does — whitespace removal, identifier shortening,
    // dead-code deletion — plus the advanced optimizations; its samples
    // therefore carry both labels (cf. the paper's observation that
    // single-configuration samples can have up to three labels, and
    // Figure 2, where both minification flavours score high together).
    if out.contains(&Technique::MinificationAdvanced) {
        out.push(Technique::MinificationSimple);
    }
    out.sort();
    out.dedup();
    out
}

/// Transforms one script with one technique (single-configuration sample).
///
/// Returns `None` when the transformation fails *or is a no-op* (e.g.
/// control-flow flattening finds no eligible statement list) — a sample
/// whose code did not change must not carry a transformation label.
pub fn transform_sample(src: &str, techniques: &[Technique], seed: u64) -> Option<LabeledSample> {
    let out = apply(src, techniques, seed).ok()?;
    let untouched = apply(src, &[], seed).ok()?;
    if out == untouched {
        return None;
    }
    Some(LabeledSample { src: out, techniques: implied_labels(techniques) })
}

/// A complete ground-truth corpus: regular scripts plus, per technique,
/// a transformed variant of each.
#[derive(Debug)]
pub struct GroundTruth {
    /// The regular scripts.
    pub regular: Vec<LabeledSample>,
    /// `pools[t]` holds the variants transformed with technique `t`.
    pub pools: Vec<Vec<LabeledSample>>,
}

impl GroundTruth {
    /// Generates `n` regular scripts and transforms each with each of the
    /// ten techniques (the paper transforms its 21,000 scripts 10 times
    /// and stores the variants separately).
    pub fn generate(n: usize, seed: u64) -> Self {
        let _t = jsdetect_obs::span(names::SPAN_CORPUS_GENERATE);
        let regular_srcs = regular_corpus(n, seed);
        let mut pools: Vec<Vec<LabeledSample>> = vec![Vec::new(); Technique::ALL.len()];
        for (i, src) in regular_srcs.iter().enumerate() {
            for (t_idx, t) in Technique::ALL.iter().enumerate() {
                let sample_seed = seed ^ ((i as u64) << 8) ^ (t_idx as u64);
                if let Some(s) = transform_sample(src, &[*t], sample_seed) {
                    pools[t_idx].push(s);
                }
            }
        }
        let regular = regular_srcs.into_iter().map(LabeledSample::regular).collect();
        GroundTruth { regular, pools }
    }

    /// The pool for one technique.
    pub fn pool(&self, t: Technique) -> &[LabeledSample] {
        &self.pools[t.index()]
    }
}

/// Draws a random multi-technique combination for the mixed test set
/// (§III-E2: between 1 and 7 labels).
pub fn random_combo(rng: &mut StdRng) -> Vec<Technique> {
    use Technique::*;
    // JSFuck hides every other trace, so it only combines with simple
    // minification (which it consumes as its input layout).
    if rng.gen_bool(0.06) {
        return if rng.gen_bool(0.5) {
            vec![NoAlphanumeric]
        } else {
            vec![MinificationSimple, NoAlphanumeric]
        };
    }
    let obfuscations = [
        IdentifierObfuscation,
        StringObfuscation,
        GlobalArray,
        DeadCodeInjection,
        ControlFlowFlattening,
        SelfDefending,
        DebugProtection,
    ];
    let n_obf = rng.gen_range(0..=4usize);
    let mut picked: Vec<Technique> = obfuscations.choose_multiple(rng, n_obf).copied().collect();
    // Optionally add one minification flavour.
    match rng.gen_range(0..3u8) {
        0 => picked.push(MinificationSimple),
        1 => picked.push(MinificationAdvanced),
        _ => {}
    }
    if picked.is_empty() {
        picked.push(IdentifierObfuscation);
    }
    picked.sort();
    picked.dedup();
    picked
}

/// Builds a partially transformed sample: a minified "library" followed
/// by regular page code (paper §III-C: "a first part regular and a second
/// part transformed (e.g., when a minified jQuery version is added to a
/// regular sample)"). Such samples are both regular and minified.
pub fn partial_sample(seed: u64) -> Option<LabeledSample> {
    use crate::generator::{GenOptions, RegularJsGenerator};
    let lib = RegularJsGenerator::with_options(
        seed ^ 0x11b,
        GenOptions { min_bytes: 2048, max_bytes: 6 * 1024 },
    )
    .generate();
    let page = RegularJsGenerator::with_options(
        seed ^ 0x9a6e,
        GenOptions { min_bytes: 512, max_bytes: 1024 },
    )
    .generate();
    let technique = if seed.is_multiple_of(2) {
        Technique::MinificationSimple
    } else {
        Technique::MinificationAdvanced
    };
    let minified_lib = apply(&lib, &[technique], seed).ok()?;
    Some(LabeledSample {
        src: format!("{}\n{}", minified_lib, page),
        techniques: implied_labels(&[technique]),
    })
}

/// Builds a mixed-technique sample set of size `n` (paper's Test Set 2).
pub fn mixed_set(n: usize, seed: u64) -> Vec<LabeledSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        i += 1;
        let src = crate::generator::RegularJsGenerator::new(seed.wrapping_add(i * 131)).generate();
        let combo = random_combo(&mut rng);
        if let Some(s) = transform_sample(&src, &combo, seed.wrapping_add(i)) {
            out.push(s);
        }
    }
    out
}

/// Builds packer samples (the held-out Daft Logic / Dean Edwards tool,
/// paper §III-E3). Ground truth per the paper: minification (simple and
/// advanced flavours), identifier obfuscation, and string obfuscation.
pub fn packer_set(n: usize, seed: u64) -> Vec<LabeledSample> {
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        i += 1;
        let src = crate::generator::RegularJsGenerator::new(seed.wrapping_add(i * 977)).generate();
        if let Ok(packed) = jsdetect_transform::apply_packer(&src, seed.wrapping_add(i)) {
            out.push(LabeledSample {
                src: packed,
                techniques: vec![
                    Technique::IdentifierObfuscation,
                    Technique::StringObfuscation,
                    Technique::MinificationSimple,
                    Technique::MinificationAdvanced,
                ],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_pools_full() {
        let gt = GroundTruth::generate(4, 42);
        assert_eq!(gt.regular.len(), 4);
        for t in Technique::ALL {
            assert!(
                gt.pool(t).len() >= 3,
                "technique {} produced too few samples: {}",
                t,
                gt.pool(t).len()
            );
            for s in gt.pool(t) {
                assert!(s.techniques.contains(&t));
                assert!(jsdetect_parser::parse(&s.src).is_ok(), "{}", t);
            }
        }
    }

    #[test]
    fn implied_labels_rules() {
        let labels = implied_labels(&[Technique::SelfDefending]);
        assert!(labels.contains(&Technique::MinificationSimple));
        assert_eq!(labels.len(), 2);
        let labels = implied_labels(&[Technique::MinificationAdvanced]);
        assert!(labels.contains(&Technique::MinificationSimple));
        assert_eq!(labels.len(), 2);
        let labels = implied_labels(&[Technique::GlobalArray]);
        assert_eq!(labels.len(), 1);
        // Deduplication when everything is already present.
        let labels = implied_labels(&[
            Technique::SelfDefending,
            Technique::MinificationAdvanced,
            Technique::MinificationSimple,
        ]);
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn label_vector_shape() {
        let s = LabeledSample {
            src: String::new(),
            techniques: vec![Technique::GlobalArray, Technique::MinificationSimple],
        };
        let v = s.label_vector();
        assert_eq!(v.len(), 10);
        assert!(v[Technique::GlobalArray.index()]);
        assert!(v[Technique::MinificationSimple.index()]);
        assert_eq!(v.iter().filter(|b| **b).count(), 2);
        assert!(s.is_minified() && s.is_obfuscated() && s.is_transformed());
    }

    #[test]
    fn partial_samples_mix_minified_and_regular() {
        let s = partial_sample(4).unwrap();
        assert!(s.is_minified());
        assert!(jsdetect_parser::parse(&s.src).is_ok());
        // One long minified line plus pretty page lines.
        let first = s.src.lines().next().unwrap().len();
        assert!(first > 400, "first line {}", first);
        assert!(s.src.lines().count() > 5);
    }

    #[test]
    fn mixed_set_has_varied_label_counts() {
        let set = mixed_set(30, 7);
        assert_eq!(set.len(), 30);
        let max_labels = set.iter().map(|s| s.techniques.len()).max().unwrap();
        let min_labels = set.iter().map(|s| s.techniques.len()).min().unwrap();
        assert!(max_labels >= 3, "expected combos, max={}", max_labels);
        assert!(min_labels >= 1);
        for s in &set {
            assert!(jsdetect_parser::parse(&s.src).is_ok());
        }
    }

    #[test]
    fn packer_set_parses_and_is_labeled() {
        let set = packer_set(3, 11);
        assert_eq!(set.len(), 3);
        for s in &set {
            assert!(s.src.starts_with("eval(function(p,a,c,k,e,d)"));
            assert_eq!(s.techniques.len(), 4);
        }
    }

    #[test]
    fn random_combo_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let combo = random_combo(&mut rng);
            assert!(!combo.is_empty());
            assert!(combo.len() <= 7);
            if combo.contains(&Technique::NoAlphanumeric) {
                assert!(combo.len() <= 2);
            }
        }
    }
}

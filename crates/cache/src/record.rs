//! The schema-versioned binary record format.
//!
//! One record holds everything needed to replay one script's analysis
//! verdict without re-lexing or re-parsing: the three-way guard
//! [`OutcomeKind`], the failure kind/message for degraded and rejected
//! scripts, and the space-independent [`FeaturePayload`] (hand-picked and
//! lint f32 blocks verbatim, 4-gram counts exact).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            4  b"JDC1"
//! schema           u16   RECORD_SCHEMA_VERSION
//! feature_version  u32   FEATURE_SPACE_VERSION the payload was computed under
//! preset tag       u16 len + UTF-8 bytes (limits preset the verdict holds for)
//! content hash     32    full BLAKE2s-256 of the source bytes
//! outcome          u8    0 ok / 1 degraded / 2 rejected
//! error kind       u16 len + UTF-8 (empty for ok)
//! error message    u16 len + UTF-8 (empty for ok)
//! has_payload      u8
//!   degraded       u8
//!   handpicked     u16 n + n × f32
//!   lint           u16 n + n × f32
//!   normalize      u16 n + n × f32
//!   ngrams         u32 n + n × (4-byte gram + u32 count)
//! checksum         u64   checksum64 of every preceding byte
//! ```
//!
//! Decoding classifies every failure as either **stale** (a well-formed
//! record from another schema or feature-space version — recompute,
//! overwrite) or **corrupt** (truncated, bit-flipped, wrong magic — evict,
//! recompute). The trailing checksum is what turns silent disk rot into a
//! typed [`DecodeError::BadChecksum`] instead of garbage features.

use crate::blake::{checksum64, ContentHash};
use jsdetect_features::FeaturePayload;
use jsdetect_guard::OutcomeKind;
use std::fmt;

/// Version of the binary record layout. Bump on any layout change;
/// decoders treat other schemas as stale, never as corrupt (v2: the
/// normalization-delta f32 block between the lint and ngram blocks).
pub const RECORD_SCHEMA_VERSION: u16 = 2;

/// File magic: "JsDetect Cache", layout generation 1.
pub const MAGIC: [u8; 4] = *b"JDC1";

/// One script's cached verdict: outcome + optional feature payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRecord {
    /// Three-way guard verdict this record replays.
    pub outcome: OutcomeKind,
    /// Stable error kind tag (`AnalysisError::kind()`), empty for ok.
    pub error_kind: String,
    /// Human-readable error rendering, empty for ok.
    pub error_msg: String,
    /// The feature payload; present for ok and degraded outcomes, absent
    /// for rejected ones (nothing trustworthy was produced).
    pub payload: Option<FeaturePayload>,
}

/// Why a record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header + checksum trailer.
    Truncated,
    /// Magic bytes are not [`MAGIC`].
    BadMagic,
    /// Trailing checksum does not match the body (bit flip / partial write).
    BadChecksum,
    /// Well-formed, but written under a different record schema.
    StaleSchema {
        /// Schema version found in the record.
        found: u16,
    },
    /// Well-formed, but computed under a different feature-space version.
    StaleFeatureVersion {
        /// Feature-space version found in the record.
        found: u32,
    },
    /// Well-formed, but for a different limits preset than expected.
    StalePreset {
        /// Preset tag found in the record.
        found: String,
    },
    /// Well-formed, but the embedded content hash is not the one the
    /// caller asked for (prefix collision or a renamed file).
    HashMismatch,
    /// Structurally invalid (a length field runs past the buffer, an
    /// unknown outcome tag, non-UTF-8 text, ...).
    Malformed(&'static str),
}

impl DecodeError {
    /// Whether the record is merely from another version (recompute and
    /// overwrite) rather than damaged (evict the file).
    pub fn is_stale(&self) -> bool {
        matches!(
            self,
            DecodeError::StaleSchema { .. }
                | DecodeError::StaleFeatureVersion { .. }
                | DecodeError::StalePreset { .. }
        )
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::StaleSchema { found } => {
                write!(f, "stale record schema {} (current {})", found, RECORD_SCHEMA_VERSION)
            }
            DecodeError::StaleFeatureVersion { found } => {
                write!(f, "stale feature-space version {}", found)
            }
            DecodeError::StalePreset { found } => write!(f, "record for preset `{}`", found),
            DecodeError::HashMismatch => write!(f, "embedded content hash mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed record: {}", what),
        }
    }
}

impl std::error::Error for DecodeError {}

fn outcome_tag(o: OutcomeKind) -> u8 {
    match o {
        OutcomeKind::Ok => 0,
        OutcomeKind::Degraded => 1,
        OutcomeKind::Rejected => 2,
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    buf.extend_from_slice(&(bytes.len().min(u16::MAX as usize) as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

/// Encodes one record, including the trailing checksum.
pub fn encode(
    record: &CacheRecord,
    hash: &ContentHash,
    feature_version: u32,
    preset: &str,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&RECORD_SCHEMA_VERSION.to_le_bytes());
    buf.extend_from_slice(&feature_version.to_le_bytes());
    push_str(&mut buf, preset);
    buf.extend_from_slice(&hash.0);
    buf.push(outcome_tag(record.outcome));
    push_str(&mut buf, &record.error_kind);
    push_str(&mut buf, &record.error_msg);
    match &record.payload {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            buf.push(p.degraded as u8);
            buf.extend_from_slice(&(p.handpicked.len() as u16).to_le_bytes());
            for v in &p.handpicked {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf.extend_from_slice(&(p.lint.len() as u16).to_le_bytes());
            for v in &p.lint {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf.extend_from_slice(&(p.normalize.len() as u16).to_le_bytes());
            for v in &p.normalize {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf.extend_from_slice(&(p.ngrams.len() as u32).to_le_bytes());
            for (g, c) in &p.ngrams {
                buf.extend_from_slice(g);
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    let sum = checksum64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// A bounds-checked little-endian reader over the record body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Malformed("length field past end of record"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::Malformed("non-UTF-8 string field"))
    }
}

/// Decodes one record against its *own* embedded header: checksum, magic,
/// and schema are verified, and the record's (hash, feature-space version,
/// preset tag) are returned alongside it for the caller to judge. This is
/// what `cache verify` uses — it has no external expectations, only the
/// file itself.
pub fn decode_embedded(
    bytes: &[u8],
) -> Result<(CacheRecord, ContentHash, u32, String), DecodeError> {
    // Fixed prefix (magic + schema + feature version = 10) plus the
    // 8-byte checksum trailer is the minimum credible record.
    if bytes.len() < 18 {
        return Err(DecodeError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte slice"));
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if checksum64(body) != stored {
        return Err(DecodeError::BadChecksum);
    }

    let mut r = Reader { buf: body, pos: 4 };
    let schema = r.u16()?;
    if schema != RECORD_SCHEMA_VERSION {
        return Err(DecodeError::StaleSchema { found: schema });
    }
    let feature_version = r.u32()?;
    let preset = r.string()?;
    let hash_bytes = r.take(32)?;
    let hash = ContentHash(hash_bytes.try_into().expect("32-byte slice"));

    let outcome = match r.u8()? {
        0 => OutcomeKind::Ok,
        1 => OutcomeKind::Degraded,
        2 => OutcomeKind::Rejected,
        _ => return Err(DecodeError::Malformed("unknown outcome tag")),
    };
    let error_kind = r.string()?;
    let error_msg = r.string()?;
    let payload = match r.u8()? {
        0 => None,
        1 => {
            let degraded = r.u8()? != 0;
            let n_hand = r.u16()? as usize;
            let mut handpicked = Vec::with_capacity(n_hand);
            for _ in 0..n_hand {
                handpicked.push(r.f32()?);
            }
            let n_lint = r.u16()? as usize;
            let mut lint = Vec::with_capacity(n_lint);
            for _ in 0..n_lint {
                lint.push(r.f32()?);
            }
            let n_norm = r.u16()? as usize;
            let mut normalize = Vec::with_capacity(n_norm);
            for _ in 0..n_norm {
                normalize.push(r.f32()?);
            }
            let n_grams = r.u32()? as usize;
            // A length field cannot promise more entries than bytes left.
            if n_grams > (body.len() - r.pos) / 8 {
                return Err(DecodeError::Malformed("ngram count past end of record"));
            }
            let mut ngrams = Vec::with_capacity(n_grams);
            for _ in 0..n_grams {
                let g = r.take(4)?;
                let gram = [g[0], g[1], g[2], g[3]];
                ngrams.push((gram, r.u32()?));
            }
            Some(FeaturePayload { handpicked, lint, normalize, ngrams, degraded })
        }
        _ => return Err(DecodeError::Malformed("unknown payload tag")),
    };
    if r.pos != body.len() {
        return Err(DecodeError::Malformed("trailing bytes after payload"));
    }
    Ok((CacheRecord { outcome, error_kind, error_msg, payload }, hash, feature_version, preset))
}

/// Decodes one record, verifying checksum, schema, feature-space version,
/// preset tag, and the embedded content hash against the caller's
/// expectations.
pub fn decode(
    bytes: &[u8],
    expect_hash: &ContentHash,
    expect_feature_version: u32,
    expect_preset: &str,
) -> Result<CacheRecord, DecodeError> {
    let (record, hash, feature_version, preset) = decode_embedded(bytes)?;
    if feature_version != expect_feature_version {
        return Err(DecodeError::StaleFeatureVersion { found: feature_version });
    }
    if preset != expect_preset {
        return Err(DecodeError::StalePreset { found: preset });
    }
    if hash != *expect_hash {
        return Err(DecodeError::HashMismatch);
    }
    Ok(record)
}

/// Reads only the version header of a record (magic, schema, feature
/// version, preset) after checksum validation — what `cache stats` and
/// `gc` need without materializing payloads.
pub fn peek_header(bytes: &[u8]) -> Result<(u16, u32, String), DecodeError> {
    if bytes.len() < 18 {
        return Err(DecodeError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if checksum64(body) != u64::from_le_bytes(trailer.try_into().expect("8-byte slice")) {
        return Err(DecodeError::BadChecksum);
    }
    let mut r = Reader { buf: body, pos: 4 };
    let schema = r.u16()?;
    let feature_version = r.u32()?;
    let preset = r.string()?;
    Ok((schema, feature_version, preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> CacheRecord {
        CacheRecord {
            outcome: OutcomeKind::Ok,
            error_kind: String::new(),
            error_msg: String::new(),
            payload: Some(FeaturePayload {
                handpicked: vec![1.5, -0.25, 3.0],
                lint: vec![0.0, 0.125],
                normalize: vec![1.0, -0.5],
                ngrams: vec![([1, 2, 3, 4], 7), ([9, 9, 9, 9], 1)],
                degraded: false,
            }),
        }
    }

    fn hash() -> ContentHash {
        ContentHash::of(b"var x = 1;")
    }

    #[test]
    fn roundtrip_ok_record() {
        let rec = sample_record();
        let bytes = encode(&rec, &hash(), 2, "wild");
        let back = decode(&bytes, &hash(), 2, "wild").unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_rejected_record_without_payload() {
        let rec = CacheRecord {
            outcome: OutcomeKind::Rejected,
            error_kind: "ast_depth_exceeded".to_string(),
            error_msg: "AST depth exceeded: nesting deeper than 150".to_string(),
            payload: None,
        };
        let bytes = encode(&rec, &hash(), 2, "wild");
        assert_eq!(decode(&bytes, &hash(), 2, "wild").unwrap(), rec);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode(&sample_record(), &hash(), 2, "wild");
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut], &hash(), 2, "wild").unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated | DecodeError::BadChecksum | DecodeError::BadMagic
                ),
                "cut at {} gave {:?}",
                cut,
                err
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&sample_record(), &hash(), 2, "wild");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&bad, &hash(), 2, "wild").is_err(),
                "bit flip at byte {} went undetected",
                i
            );
        }
    }

    #[test]
    fn zero_length_and_garbage_are_corrupt_not_stale() {
        assert_eq!(decode(&[], &hash(), 2, "wild").unwrap_err(), DecodeError::Truncated);
        let err = decode(&[0u8; 64], &hash(), 2, "wild").unwrap_err();
        assert!(!err.is_stale(), "{:?}", err);
    }

    #[test]
    fn version_mismatches_are_stale_not_corrupt() {
        let bytes = encode(&sample_record(), &hash(), 2, "wild");
        let err = decode(&bytes, &hash(), 3, "wild").unwrap_err();
        assert_eq!(err, DecodeError::StaleFeatureVersion { found: 2 });
        assert!(err.is_stale());
        let err = decode(&bytes, &hash(), 2, "trusted").unwrap_err();
        assert_eq!(err, DecodeError::StalePreset { found: "wild".to_string() });
        assert!(err.is_stale());
    }

    #[test]
    fn wrong_hash_is_rejected() {
        let bytes = encode(&sample_record(), &hash(), 2, "wild");
        let other = ContentHash::of(b"var y = 2;");
        assert_eq!(decode(&bytes, &other, 2, "wild").unwrap_err(), DecodeError::HashMismatch);
    }

    #[test]
    fn peek_header_reads_versions() {
        let bytes = encode(&sample_record(), &hash(), 7, "interactive");
        let (schema, fv, preset) = peek_header(&bytes).unwrap();
        assert_eq!(schema, RECORD_SCHEMA_VERSION);
        assert_eq!(fv, 7);
        assert_eq!(preset, "interactive");
    }
}

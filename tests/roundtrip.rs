//! Deterministic codegen round-trip property tests.
//!
//! The cache stores verdicts keyed by *source bytes*, and the ground-truth
//! corpus pipeline routinely re-prints programs (transforms emit printed
//! code that is later re-parsed). Both rest on the printer being a
//! structure-preserving inverse of the parser, so this suite pins that
//! property over seeded generator samples across every transform config:
//! for `p1 = parse(src)` and `p2 = parse(print(p1))`, the two programs
//! have identical pre-order node-kind streams, and printing reaches a
//! fixed point (`print(p2) == print(p1)`, minified and readable alike).
//!
//! Node-kind streams (plus the fixed point) stand in for `p1 == p2`
//! because AST equality includes spans, which legitimately shift when a
//! program is re-printed.

use jsdetect_suite::ast::kind_stream;
use jsdetect_suite::codegen::{to_minified, to_source};
use jsdetect_suite::corpus::RegularJsGenerator;
use jsdetect_suite::parser::parse;
use jsdetect_suite::transform::{apply, Technique};

/// Asserts the full round-trip property for one source, in both printer
/// modes, and returns the sample's kind-stream length (for coverage
/// accounting in the caller).
fn assert_roundtrip(src: &str, label: &str) -> usize {
    let p1 = parse(src).unwrap_or_else(|e| panic!("{}: original does not parse: {}", label, e));
    let stream1 = kind_stream(&p1);

    for (mode, printed) in [("readable", to_source(&p1)), ("minified", to_minified(&p1))] {
        let p2 = parse(&printed).unwrap_or_else(|e| {
            panic!("{} [{}]: printed output does not re-parse: {}\n{}", label, mode, e, printed)
        });
        assert_eq!(
            stream1,
            kind_stream(&p2),
            "{} [{}]: node-kind stream changed across print→parse",
            label,
            mode
        );
        // Fixed point: printing the re-parsed program reproduces the
        // first print exactly, so repeated round-trips cannot drift.
        let reprinted = match mode {
            "readable" => to_source(&p2),
            _ => to_minified(&p2),
        };
        assert_eq!(printed, reprinted, "{} [{}]: printer is not a fixed point", label, mode);
    }
    stream1.len()
}

#[test]
fn generator_samples_roundtrip_untransformed() {
    let mut gen = RegularJsGenerator::new(0xC0FFEE);
    let mut total_nodes = 0;
    for i in 0..24 {
        let src = gen.generate();
        total_nodes += assert_roundtrip(&src, &format!("sample {}", i));
    }
    assert!(total_nodes > 1000, "generator samples too trivial to pin anything");
}

#[test]
fn every_single_technique_roundtrips() {
    let mut gen = RegularJsGenerator::new(0xBEEF);
    let samples: Vec<String> = (0..4).map(|_| gen.generate()).collect();
    for t in Technique::ALL {
        for (i, src) in samples.iter().enumerate() {
            let transformed = apply(src, &[t], 7 + i as u64)
                .unwrap_or_else(|e| panic!("{}: transform failed: {}", t.as_str(), e));
            assert_roundtrip(&transformed, &format!("{} on sample {}", t.as_str(), i));
        }
    }
}

#[test]
fn stacked_technique_combinations_roundtrip() {
    let mut gen = RegularJsGenerator::new(0xFACADE);
    let samples: Vec<String> = (0..3).map(|_| gen.generate()).collect();
    // Adjacent pairs plus the full stack: the combinations the ground
    // truth pipeline actually emits.
    let mut configs: Vec<Vec<Technique>> = Technique::ALL.windows(2).map(|w| w.to_vec()).collect();
    configs.push(Technique::ALL.to_vec());
    for (ci, techniques) in configs.iter().enumerate() {
        for (i, src) in samples.iter().enumerate() {
            let Ok(transformed) = apply(src, techniques, 11 + ci as u64) else {
                // Some stacks legitimately refuse some inputs; the
                // property only covers what the pipeline can emit.
                continue;
            };
            assert_roundtrip(&transformed, &format!("config {} on sample {}", ci, i));
        }
    }
}

#[test]
fn edge_case_literals_and_syntax_roundtrip() {
    // Hand-picked sources that historically break printers: escapes,
    // numeric edge cases, nested ternaries, regex-adjacent division,
    // postfix/prefix mixes, and empty constructs.
    let cases = [
        r#"var s = "quote \" backslash \\ newline \n tab \t end";"#,
        "var n = 0.5; var m = 1e21; var k = 0x1f; var z = -0;",
        "var x = a ? b ? c : d : e ? f : g;",
        "var r = a / b / c; var q = (a + b) / (c - d);",
        "i++; ++i; i--; --i; x = -(-y); z = +(+w);",
        "function f() {} var g = function () {}; (function () {})();",
        "for (;;) { break; } for (var i = 0; ; i++) { continue; }",
        "var o = { \"a b\": 1, c: { d: [1, [2, [3]]] } };",
        "if (a) {} else if (b) {} else {}",
        "while (a) do b(); while (c);",
        "switch (x) { case 1: case 2: f(); break; default: g(); }",
        "try { f(); } catch (e) { g(e); } finally { h(); }",
        "a = b = c = d, e = (f, g);",
        "new Foo(); new Foo(1, 2); new (bar())();",
        "var u; var v = void 0; delete o.p; typeof t;",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_roundtrip(src, &format!("edge case {}", i));
    }
}

#[test]
fn module_and_es2020_constructs_roundtrip() {
    // ES-module declarations, dynamic import, import.meta, BigInt edge
    // literals, and private class members — the syntax closed by the
    // spec-conformance push. Each must survive print→reparse in both
    // printer modes with an identical kind stream.
    let cases = [
        "import d from 'm';",
        "import d, { a, b as c } from 'mod'; import * as ns from 'other';",
        "import 'side-effect-only';",
        "export { a, b as c }; export { d } from 'm';",
        "export * from 'm'; export * as everything from 'n';",
        "export default function () { return 1; }",
        "export default class extends Base {}",
        "export default (a, b) => a + b;",
        "export const answer = 42; export async function load() {}",
        "const lazy = import('./chunk.js').then(m => m.default);",
        "if (import.meta.url) { log(import.meta); }",
        "var big = [0n, 0x1fn, 0b101n, 0o17n, 123_456n];",
        "var keyed = { 0n: 'zero', 0xFFn: 'ff' };",
        "class Counter { #n = 0n; static #all = []; #inc() { return ++this.#n; } get #v() { return this.#n; } read() { return this.#v + other?.#n; } }",
        "import base from './base.js'; export class Derived extends base.Cls { #state = import.meta.url; }",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_roundtrip(src, &format!("module/es2020 case {}", i));
    }
}

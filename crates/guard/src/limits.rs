//! Resource budget configuration with per-corpus presets.

use serde::{Deserialize, Serialize};

/// Caps on every resource axis one hostile script can burn.
///
/// All caps are *cooperative*: the analysis layers charge a shared
/// [`crate::Budget`] at their loop heads and bail with a typed
/// [`crate::AnalysisError`] when a cap is hit. A cap of `usize::MAX` /
/// `u64::MAX` / `u32::MAX` disables that axis; `deadline_ms == 0` disables
/// the wall-clock deadline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Limits {
    /// Maximum input size in bytes, checked before any work runs.
    pub max_input_bytes: usize,
    /// Maximum number of tokens the lexer may produce (charged per token,
    /// including re-lexes during parser backtracking).
    pub max_tokens: u64,
    /// Maximum parser recursion depth (the stack-overflow guard).
    pub max_ast_depth: u32,
    /// Maximum AST node count, checked after parse from tree metrics.
    pub max_ast_nodes: u64,
    /// Maximum control-flow edge count, checked after flow construction.
    pub max_cfg_edges: u64,
    /// Wall-clock deadline in milliseconds (fuel-metered, checked roughly
    /// every few thousand budget charges). `0` disables the deadline.
    pub deadline_ms: u64,
}

/// The parser's historical recursion cap; `trusted()` keeps it so legacy
/// entry points behave byte-for-byte as before the sandbox existed.
pub const LEGACY_MAX_DEPTH: u32 = 150;

impl Limits {
    /// Preset for wild-corpus scanning (Alexa/npm/malware scale): generous
    /// enough for any legitimate script, tight enough that one hostile file
    /// costs bounded time and memory.
    pub fn wild() -> Limits {
        Limits {
            max_input_bytes: 10 * 1024 * 1024,
            max_tokens: 2_000_000,
            max_ast_depth: LEGACY_MAX_DEPTH,
            max_ast_nodes: 4_000_000,
            max_cfg_edges: 1_000_000,
            deadline_ms: 10_000,
        }
    }

    /// Preset for trusted inputs (training corpora, fixtures): only the
    /// stack-overflow depth guard stays on, so results are identical to the
    /// pre-sandbox pipeline and deterministic (no wall-clock coupling).
    pub fn trusted() -> Limits {
        Limits {
            max_input_bytes: usize::MAX,
            max_tokens: u64::MAX,
            max_ast_depth: LEGACY_MAX_DEPTH,
            max_ast_nodes: u64::MAX,
            max_cfg_edges: u64::MAX,
            deadline_ms: 0,
        }
    }

    /// Preset for interactive / latency-sensitive use (editor integrations,
    /// spot checks): small inputs, short deadline.
    pub fn interactive() -> Limits {
        Limits {
            max_input_bytes: 1024 * 1024,
            max_tokens: 300_000,
            max_ast_depth: 120,
            max_ast_nodes: 1_000_000,
            max_cfg_edges: 250_000,
            deadline_ms: 2_000,
        }
    }

    /// Every axis disabled, including the depth guard. Internal plumbing
    /// only — never feed untrusted input through unbounded limits.
    pub fn unbounded() -> Limits {
        Limits {
            max_input_bytes: usize::MAX,
            max_tokens: u64::MAX,
            max_ast_depth: u32::MAX,
            max_ast_nodes: u64::MAX,
            max_cfg_edges: u64::MAX,
            deadline_ms: 0,
        }
    }

    /// Looks a preset up by CLI name.
    pub fn from_name(name: &str) -> Option<Limits> {
        match name {
            "wild" => Some(Limits::wild()),
            "trusted" => Some(Limits::trusted()),
            "interactive" => Some(Limits::interactive()),
            _ => None,
        }
    }
}

impl Default for Limits {
    /// Defaults to [`Limits::wild`]: the safe choice when provenance is
    /// unknown.
    fn default() -> Limits {
        Limits::wild()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Limits::from_name("wild"), Some(Limits::wild()));
        assert_eq!(Limits::from_name("trusted"), Some(Limits::trusted()));
        assert_eq!(Limits::from_name("interactive"), Some(Limits::interactive()));
        assert_eq!(Limits::from_name("nope"), None);
        assert_eq!(Limits::default(), Limits::wild());
    }

    #[test]
    fn trusted_keeps_only_the_depth_guard() {
        let t = Limits::trusted();
        assert_eq!(t.max_ast_depth, LEGACY_MAX_DEPTH);
        assert_eq!(t.max_tokens, u64::MAX);
        assert_eq!(t.deadline_ms, 0);
    }
}

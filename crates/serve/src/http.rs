//! The std-only transport: one TCP listener, two protocols.
//!
//! Each connection's first four bytes are sniffed: an ASCII HTTP method
//! prefix (`GET `, `POST`, …) routes to a minimal HTTP/1.1 handler; any
//! other prefix is interpreted as the big-endian length of a JSON frame.
//! Both protocols funnel into the same [`Daemon`] admission path, so the
//! overload contract (429/`overloaded`, never unbounded buffering) is
//! identical regardless of how a client connects.
//!
//! Transport-level robustness lives here: read timeouts drop slow-loris
//! connections, a `Content-Length`/frame-length cap refuses oversized
//! bodies with `413`/`oversized`, and a concurrent-connection cap answers
//! `503` instead of accumulating sockets.

use crate::daemon::Daemon;
use crate::protocol::{
    read_frame, read_frame_after_prefix, write_frame, AnalyzeRequest, AnalyzeResponse,
    BatchRequest, BatchResponse, Status,
};
use crate::signal;
use jsdetect_obs::names;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport sizing and patience knobs.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Per-read socket timeout; a connection that trickles bytes slower
    /// than this is dropped (slow-loris guard).
    pub read_timeout_ms: u64,
    /// Cap on one HTTP body or one frame; beyond it the request is
    /// answered `oversized` (413).
    pub max_request_bytes: usize,
    /// Concurrent connection cap; beyond it new connections get `503`.
    pub max_connections: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            read_timeout_ms: 5_000,
            max_request_bytes: 4 * 1024 * 1024,
            max_connections: 256,
        }
    }
}

/// Cap on the HTTP head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Runs the accept loop until `shutdown` flips, then drains the daemon and
/// returns its final report. The listener is switched to non-blocking so
/// the loop can poll the flag between accepts.
///
/// # Errors
///
/// Returns the error if the listener cannot be switched to non-blocking;
/// per-connection I/O errors are contained per connection.
pub fn serve(
    daemon: Arc<Daemon>,
    listener: TcpListener,
    cfg: TransportConfig,
    shutdown: &'static AtomicBool,
) -> std::io::Result<crate::daemon::ShutdownReport> {
    listener.set_nonblocking(true)?;
    let active = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::Acquire) >= cfg.max_connections {
                    let _ = refuse_busy(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let daemon = Arc::clone(&daemon);
                let cfg = cfg.clone();
                let active = Arc::clone(&active);
                let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
                    let _ = handle_connection(&daemon, stream, &cfg);
                    active.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drain: every accepted request is answered; connection threads write
    // those responses out, then we give them a bounded grace period.
    let report = daemon.shutdown();
    let grace = std::time::Instant::now();
    while active.load(Ordering::Acquire) > 0 && grace.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(report)
}

fn refuse_busy(mut stream: TcpStream) -> std::io::Result<()> {
    let body = br#"{"status":"overloaded","error_kind":"connection_cap","error_msg":"too many connections"}"#;
    write_http(&mut stream, 503, "application/json", body)
}

fn handle_connection(
    daemon: &Arc<Daemon>,
    mut stream: TcpStream,
    cfg: &TransportConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;
    stream.set_write_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;
    let _ = stream.set_nodelay(true);
    let mut prefix = [0u8; 4];
    if let Err(e) = stream.read_exact(&mut prefix) {
        if is_timeout(&e) {
            jsdetect_obs::counter_add(names::CTR_SERVE_SLOW_LORIS_DROPPED, 1);
        }
        return Ok(()); // empty or dribbling connection: just drop it
    }
    if is_http_method_prefix(&prefix) {
        handle_http(daemon, &mut stream, prefix, cfg)
    } else {
        handle_framed(daemon, &mut stream, prefix, cfg)
    }
}

fn is_http_method_prefix(prefix: &[u8; 4]) -> bool {
    matches!(prefix, b"GET " | b"POST" | b"PUT " | b"HEAD" | b"DELE" | b"OPTI" | b"PATC")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

// ---------------------------------------------------------------- framed

fn handle_framed(
    daemon: &Arc<Daemon>,
    stream: &mut TcpStream,
    first_prefix: [u8; 4],
    cfg: &TransportConfig,
) -> std::io::Result<()> {
    let mut first = Some(first_prefix);
    loop {
        let frame = match first.take() {
            Some(p) => read_frame_after_prefix(stream, p, cfg.max_request_bytes),
            None => read_frame(stream, cfg.max_request_bytes),
        };
        let frame = match frame {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized length prefix: answer and drop — there is no
                // way to resync a length-prefixed stream mid-frame.
                jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_OVERSIZED, 1);
                let resp = AnalyzeResponse::refusal(
                    Status::Oversized,
                    "frame_too_large",
                    format!("frame exceeds {} byte cap", cfg.max_request_bytes),
                );
                return send_response_frame(stream, &resp);
            }
            Err(e) => {
                if is_timeout(&e) {
                    jsdetect_obs::counter_add(names::CTR_SERVE_SLOW_LORIS_DROPPED, 1);
                }
                return Ok(());
            }
        };
        let resp = match parse_request(&frame) {
            Ok(req) => daemon.call(req),
            Err(msg) => {
                jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_INVALID, 1);
                AnalyzeResponse::refusal(Status::Invalid, "malformed_request", msg)
            }
        };
        send_response_frame(stream, &resp)?;
    }
}

fn parse_request(bytes: &[u8]) -> Result<AnalyzeRequest, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "request is not UTF-8".to_string())?;
    serde_json::from_str::<AnalyzeRequest>(text).map_err(|e| format!("malformed request: {e}"))
}

fn send_response_frame(stream: &mut TcpStream, resp: &AnalyzeResponse) -> std::io::Result<()> {
    let json = serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, json.as_bytes())
}

// ------------------------------------------------------------------ http

fn handle_http(
    daemon: &Arc<Daemon>,
    stream: &mut TcpStream,
    prefix: [u8; 4],
    cfg: &TransportConfig,
) -> std::io::Result<()> {
    let mut head = prefix.to_vec();
    let header_end = loop {
        if let Some(pos) = find_header_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_OVERSIZED, 1);
            return respond_refusal(
                stream,
                Status::Oversized,
                "headers_too_large",
                "request head exceeds cap",
            );
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer went away mid-head
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                jsdetect_obs::counter_add(names::CTR_SERVE_SLOW_LORIS_DROPPED, 1);
                return respond_refusal(
                    stream,
                    Status::Invalid,
                    "slow_loris",
                    "request head timed out",
                );
            }
            Err(e) => return Err(e),
        }
    };
    let head_text = String::from_utf8_lossy(&head[..header_end]).into_owned();
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > cfg.max_request_bytes {
        jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_OVERSIZED, 1);
        return respond_refusal(
            stream,
            Status::Oversized,
            "body_too_large",
            format!("body of {content_length} bytes exceeds {} byte cap", cfg.max_request_bytes),
        );
    }
    let mut body = head[header_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                jsdetect_obs::counter_add(names::CTR_SERVE_SLOW_LORIS_DROPPED, 1);
                return respond_refusal(
                    stream,
                    Status::Invalid,
                    "slow_loris",
                    "request body timed out",
                );
            }
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    route(daemon, stream, &request_line, &body)
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(
    daemon: &Arc<Daemon>,
    stream: &mut TcpStream,
    request_line: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    match (method, path) {
        ("POST", "/analyze") => match parse_request(body) {
            Ok(req) => {
                let resp = daemon.call(req);
                respond_json(stream, resp.status_tag().http_code(), &to_json(&resp)?)
            }
            Err(msg) => {
                jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_INVALID, 1);
                respond_refusal(stream, Status::Invalid, "malformed_request", msg)
            }
        },
        ("POST", "/batch") => handle_batch(daemon, stream, body),
        ("GET", "/metrics") => {
            let text = jsdetect_obs::render_prometheus(&jsdetect_obs::snapshot());
            write_http(stream, 200, "text/plain; version=0.0.4", text.as_bytes())
        }
        ("GET", "/healthz") => respond_json(stream, 200, &daemon.healthz_json()),
        ("POST", "/shutdown") => {
            signal::request_shutdown();
            respond_json(stream, 200, r#"{"ok":true,"state":"draining"}"#)
        }
        _ => {
            jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_INVALID, 1);
            respond_refusal(
                stream,
                Status::Invalid,
                "no_such_route",
                format!("no route for {method} {path}"),
            )
        }
    }
}

/// `POST /batch`: every script is admitted individually through the same
/// bounded queue — first all submissions (so the batch occupies queue
/// slots concurrently), then all waits. A batch can therefore be partly
/// `ok` and partly `overloaded`, by design.
#[allow(clippy::result_large_err)] // per-script refusals are relayed by value
fn handle_batch(daemon: &Arc<Daemon>, stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    let req = match std::str::from_utf8(body)
        .ok()
        .and_then(|t| serde_json::from_str::<BatchRequest>(t).ok())
    {
        Some(r) => r,
        None => {
            jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_INVALID, 1);
            return respond_refusal(
                stream,
                Status::Invalid,
                "malformed_request",
                "body is not a BatchRequest",
            );
        }
    };
    let pending: Vec<_> = req
        .scripts
        .into_iter()
        .map(|src| {
            daemon.submit(AnalyzeRequest {
                src,
                limits: req.limits.clone(),
                deadline_ms: req.deadline_ms,
                top_k: None,
                threshold: None,
            })
        })
        .collect();
    let wait = daemon.max_wait();
    let results: Vec<AnalyzeResponse> = pending
        .into_iter()
        .map(|p| match p {
            Err(refusal) => refusal,
            Ok(rx) => rx.recv_timeout(wait).unwrap_or_else(|_| {
                AnalyzeResponse::refusal(
                    Status::Timeout,
                    "response_timeout",
                    "no response within the watchdog bound",
                )
            }),
        })
        .collect();
    let out = serde_json::to_string(&BatchResponse { results })
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    respond_json(stream, 200, &out)
}

fn to_json(resp: &AnalyzeResponse) -> std::io::Result<String> {
    serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn respond_refusal(
    stream: &mut TcpStream,
    status: Status,
    kind: &str,
    msg: impl Into<String>,
) -> std::io::Result<()> {
    let resp = AnalyzeResponse::refusal(status, kind, msg);
    respond_json(stream, status.http_code(), &to_json(&resp)?)
}

fn respond_json(stream: &mut TcpStream, code: u16, body: &str) -> std::io::Result<()> {
    write_http(stream, code, "application/json", body.as_bytes())
}

fn write_http(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

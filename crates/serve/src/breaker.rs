//! The circuit breaker: latency/reject pressure flips the daemon into
//! degraded lexer-only mode; half-open probes recover it.
//!
//! State machine:
//!
//! ```text
//! Closed --(p99 > limit or reject-rate > limit over window)--> Open
//! Open --(cooldown elapsed)--> HalfOpen
//! HalfOpen --(all probes fast)--> Closed
//! HalfOpen --(a probe breaches)--> Open (cooldown restarts)
//! ```
//!
//! In `Open` and for non-probe requests in `HalfOpen`, workers skip the
//! parser and serve lexer-only verdicts
//! ([`jsdetect_features::analyze_script_lexer_only`]): the daemon sheds
//! the expensive 90% of per-request work while still answering every
//! request, instead of letting the queue's reject rate climb.

use jsdetect_obs::names;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker thresholds and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Completed/rejected request events evaluated per decision window.
    pub window: usize,
    /// Minimum events in the window before evaluating at all.
    pub min_samples: usize,
    /// Open when the window's p99 end-to-end latency exceeds this.
    pub p99_limit_ms: u64,
    /// Open when the window's admission-reject fraction exceeds this.
    pub reject_rate_limit: f64,
    /// Cooldown before an open breaker lets probes through.
    pub open_ms: u64,
    /// Consecutive fast probes required to close again.
    pub probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            min_samples: 16,
            p99_limit_ms: 2_000,
            reject_rate_limit: 0.5,
            open_ms: 1_000,
            probes: 3,
        }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Full pipeline for everyone.
    Closed,
    /// Degraded lexer-only mode for everyone.
    Open,
    /// Probes run the full pipeline; the rest stay degraded.
    HalfOpen,
}

impl BreakerState {
    /// Stable tag for health endpoints.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// How one request should be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full pipeline.
    Full,
    /// Full pipeline, and its latency decides recovery.
    Probe,
    /// Lexer-only degraded pipeline.
    Degraded,
}

impl Mode {
    /// Whether this request runs lexer-only.
    pub fn is_degraded(self) -> bool {
        matches!(self, Mode::Degraded)
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Completed-request latencies (ms) in the current window.
    latencies: Vec<u64>,
    /// Admission rejects in the current window.
    rejects: usize,
    /// When `Open` may transition to `HalfOpen`.
    reopen_at: Instant,
    /// Probes still to hand out in `HalfOpen`.
    probes_left: usize,
    /// Fast probes observed in `HalfOpen`.
    probe_successes: usize,
}

/// The breaker itself; one per daemon, shared by all workers.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Builds a closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                latencies: Vec::with_capacity(cfg.window),
                rejects: 0,
                reopen_at: Instant::now(),
                probes_left: 0,
                probe_successes: 0,
            }),
            cfg,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Decides how the next request should be served (and performs the
    /// time-based `Open` → `HalfOpen` transition).
    pub fn admit_mode(&self) -> Mode {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Mode::Full,
            BreakerState::Open => {
                if Instant::now() >= inner.reopen_at {
                    inner.state = BreakerState::HalfOpen;
                    inner.probes_left = self.cfg.probes;
                    inner.probe_successes = 0;
                    inner.probes_left -= 1;
                    Mode::Probe
                } else {
                    Mode::Degraded
                }
            }
            BreakerState::HalfOpen => {
                if inner.probes_left > 0 {
                    inner.probes_left -= 1;
                    Mode::Probe
                } else {
                    Mode::Degraded
                }
            }
        }
    }

    /// Records a completed request's end-to-end latency.
    pub fn record_latency(&self, latency_ms: u64, mode: Mode) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.latencies.push(latency_ms);
                self.evaluate(&mut inner);
            }
            BreakerState::HalfOpen if mode == Mode::Probe => {
                if latency_ms <= self.cfg.p99_limit_ms {
                    inner.probe_successes += 1;
                    if inner.probe_successes >= self.cfg.probes {
                        self.close(&mut inner);
                    }
                } else {
                    self.open(&mut inner);
                }
            }
            // Degraded-mode latencies say nothing about full-pipeline
            // health; `Open` ignores everything until the cooldown.
            _ => {}
        }
    }

    /// Records an admission reject (queue full).
    pub fn record_reject(&self) {
        let mut inner = self.lock();
        if inner.state == BreakerState::Closed {
            inner.rejects += 1;
            self.evaluate(&mut inner);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Closed-state evaluation at window boundaries.
    fn evaluate(&self, inner: &mut Inner) {
        let events = inner.latencies.len() + inner.rejects;
        if events < self.cfg.min_samples {
            return;
        }
        let reject_rate = inner.rejects as f64 / events as f64;
        let p99_breach =
            percentile(&inner.latencies, 0.99).map(|p| p > self.cfg.p99_limit_ms).unwrap_or(false);
        if p99_breach || reject_rate > self.cfg.reject_rate_limit {
            self.open(inner);
        } else if events >= self.cfg.window {
            inner.latencies.clear();
            inner.rejects = 0;
        }
    }

    fn open(&self, inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.reopen_at = Instant::now() + Duration::from_millis(self.cfg.open_ms);
        inner.latencies.clear();
        inner.rejects = 0;
        jsdetect_obs::counter_add(names::CTR_SERVE_BREAKER_OPENED, 1);
    }

    fn close(&self, inner: &mut Inner) {
        inner.state = BreakerState::Closed;
        inner.latencies.clear();
        inner.rejects = 0;
        jsdetect_obs::counter_add(names::CTR_SERVE_BREAKER_CLOSED, 1);
    }
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(samples: &[u64], q: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            p99_limit_ms: 100,
            reject_rate_limit: 0.5,
            open_ms: 10,
            probes: 2,
        }
    }

    #[test]
    fn slow_window_opens_then_probes_recover() {
        let b = CircuitBreaker::new(cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..4 {
            b.record_latency(500, Mode::Full);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit_mode(), Mode::Degraded, "open means degraded");

        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit_mode(), Mode::Probe, "cooldown elapsed: probe");
        assert_eq!(b.admit_mode(), Mode::Probe);
        assert_eq!(b.admit_mode(), Mode::Degraded, "probe budget spent");
        b.record_latency(10, Mode::Probe);
        b.record_latency(10, Mode::Probe);
        assert_eq!(b.state(), BreakerState::Closed, "fast probes close");
    }

    #[test]
    fn slow_probe_reopens() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.record_latency(500, Mode::Full);
        }
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit_mode(), Mode::Probe);
        b.record_latency(5_000, Mode::Probe);
        assert_eq!(b.state(), BreakerState::Open, "slow probe reopens");
    }

    #[test]
    fn reject_rate_opens_without_any_latency() {
        let b = CircuitBreaker::new(cfg());
        b.record_latency(5, Mode::Full);
        for _ in 0..4 {
            b.record_reject();
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn healthy_window_stays_closed_and_rolls() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..50 {
            b.record_latency(5, Mode::Full);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}

//! Property test: for *arbitrary synthesized ASTs* (not just parsed
//! sources), pretty and compact printing produce programs that reparse,
//! and printing is a fixpoint. This reaches printer paths that
//! source-derived tests cannot (unusual nestings, holes, empty bodies,
//! keyword-ish names in safe positions).

use jsdetect_ast::builder as b;
use jsdetect_ast::*;
use jsdetect_codegen::{to_minified, to_source};
use jsdetect_parser::parse;
use proptest::prelude::*;

/// Identifier names drawn from a safe pool (plus a few adversarial ones
/// that stress the writer's token-boundary logic).
fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("value".to_string()),
        Just("_private".to_string()),
        Just("$jq".to_string()),
        Just("ifx".to_string()),      // starts like a keyword
        Just("letters".to_string()),  // starts like `let`
        Just("newish".to_string()),   // starts like `new`
        Just("_0x1a2b".to_string()),
        Just("a".to_string()),
    ]
}

fn string_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("hello".to_string()),
        Just("it's".to_string()),
        Just("tab\there".to_string()),
        Just("line\nbreak".to_string()),
        Just("back\\slash".to_string()),
        Just("${not-a-template}".to_string()),
        Just("héllo ünïcode".to_string()),
    ]
}

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u32..1000).prop_map(|n| b::num_lit(n as f64)),
        Just(b::num_lit(0.5)),
        Just(b::num_lit(1e21)),
        any::<bool>().prop_map(b::bool_lit),
        Just(b::null_lit()),
        string_strategy().prop_map(b::str_lit),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy(),
        ident_strategy().prop_map(b::ident),
        Just(Expr::This { span: Span::DUMMY }),
    ];
    leaf.prop_recursive(5, 48, 4, |inner| {
        prop_oneof![
            // Binary with assorted operators.
            (inner.clone(), inner.clone(), 0usize..8).prop_map(|(l, r, op)| {
                let ops = [
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Lt,
                    BinaryOp::EqEqEq,
                    BinaryOp::BitAnd,
                    BinaryOp::Exp,
                ];
                b::binary(ops[op], l, r)
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| b::logical(LogicalOp::And, l, r)),
            (inner.clone(), 0usize..4).prop_map(|(e, op)| {
                let ops = [UnaryOp::Not, UnaryOp::Minus, UnaryOp::TypeOf, UnaryOp::Void];
                b::unary(ops[op], e)
            }),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(t, c, a)| b::conditional(t, c, a)),
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(callee, args)| b::call(callee, args)),
            (inner.clone(), ident_strategy()).prop_map(|(o, p)| b::member(o, p)),
            (inner.clone(), inner.clone()).prop_map(|(o, i)| b::index(o, i)),
            proptest::collection::vec(proptest::option::of(inner.clone()), 0..4).prop_map(
                |elements| Expr::Array { elements, span: Span::DUMMY }
            ),
            (ident_strategy(), inner.clone()).prop_map(|(n, v)| b::assign_ident(n, v)),
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|exprs| Expr::Sequence { exprs, span: Span::DUMMY }),
            // Object literal with identifier keys.
            proptest::collection::vec((ident_strategy(), inner.clone()), 0..3).prop_map(
                |props| Expr::Object {
                    props: props
                        .into_iter()
                        .map(|(k, v)| Property {
                            key: PropKey::Ident(Ident::new(k)),
                            value: v,
                            kind: PropKind::Init,
                            computed: false,
                            shorthand: false,
                            method: false,
                            span: Span::DUMMY,
                        })
                        .collect(),
                    span: Span::DUMMY,
                }
            ),
            // Arrow with expression body.
            (ident_strategy(), inner.clone()).prop_map(|(p, body)| Expr::Arrow {
                params: vec![Pat::Ident(Ident::new(p))],
                body: ArrowBody::Expr(Box::new(body)),
                is_async: false,
                span: Span::DUMMY,
            }),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        expr_strategy().prop_map(b::expr_stmt),
        (ident_strategy(), expr_strategy())
            .prop_map(|(n, e)| b::var_decl(VarKind::Var, n, Some(e))),
        (ident_strategy(), expr_strategy())
            .prop_map(|(n, e)| b::var_decl(VarKind::Const, n, Some(e))),
        expr_strategy().prop_map(|e| b::ret(Some(e))),
        Just(Stmt::Empty { span: Span::DUMMY }),
        Just(Stmt::Debugger { span: Span::DUMMY }),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (expr_strategy(), inner.clone(), proptest::option::of(inner.clone()))
                .prop_map(|(t, c, a)| b::if_stmt(t, c, a)),
            (expr_strategy(), inner.clone()).prop_map(|(t, body)| b::while_stmt(t, body)),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(b::block),
            (ident_strategy(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, body)| b::fn_decl(n, vec!["p", "q"], body)),
            (expr_strategy(), inner.clone()).prop_map(|(obj, body)| Stmt::ForIn {
                target: ForTarget::Var { kind: VarKind::Var, pat: Pat::Ident(Ident::new("k")) },
                object: obj,
                body: Box::new(body),
                span: Span::DUMMY,
            }),
            (inner.clone(), expr_strategy()).prop_map(|(body, t)| Stmt::DoWhile {
                body: Box::new(body),
                test: t,
                span: Span::DUMMY,
            }),
            inner.clone().prop_map(|body| Stmt::Try {
                block: vec![body],
                handler: Some(CatchClause {
                    param: Some(Pat::Ident(Ident::new("e"))),
                    body: vec![],
                    span: Span::DUMMY,
                }),
                finalizer: None,
                span: Span::DUMMY,
            }),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(stmt_strategy(), 0..6).prop_map(b::program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn synthesized_ast_pretty_prints_reparse(prog in program_strategy()) {
        let printed = to_source(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {}\n---\n{}", e, printed));
        let again = to_source(&reparsed);
        prop_assert_eq!(&printed, &again, "pretty print not a fixpoint");
    }

    #[test]
    fn synthesized_ast_minified_prints_reparse(prog in program_strategy()) {
        let printed = to_minified(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("minified output failed to parse: {}\n---\n{}", e, printed));
        let again = to_minified(&reparsed);
        prop_assert_eq!(&printed, &again, "minified print not a fixpoint");
    }

    #[test]
    fn pretty_and_minified_agree_structurally(prog in program_strategy()) {
        let pretty = parse(&to_source(&prog)).unwrap();
        let minified = parse(&to_minified(&prog)).unwrap();
        prop_assert_eq!(kind_stream(&pretty), kind_stream(&minified));
    }
}

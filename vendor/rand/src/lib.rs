//! Deterministic, offline-compatible subset of the `rand 0.8` API.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it actually uses: `StdRng` seeded via `seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom`. The generator
//! is SplitMix64 — not the upstream ChaCha-based `StdRng`, so absolute
//! sequences differ from crates.io `rand`, but every consumer in this
//! workspace only relies on determinism and uniformity, not on matching
//! upstream streams.

#![allow(clippy::all)]

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    pub(crate) fn next_u64_impl(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeding support (`StdRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = StdRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
        // Warm up so small seeds diverge immediately.
        rng.next_u64_impl();
        rng
    }
}

/// Core random-value methods.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in the given range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.unit_f64() < p
    }

    /// Uniform value of the full type domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<T: Rng> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws a uniform value.
    fn gen_standard<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn gen_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: Rng>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over a range. The single blanket
/// `SampleRange` impl below keeps type inference identical to upstream
/// rand (a `{float}` range literal unifies with surrounding arithmetic).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                start + rng.unit_f64() as $t * (end - start)
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                Self::sample_half_open(rng, start, end)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice is
        /// shorter).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots become the sample.
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

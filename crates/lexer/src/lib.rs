//! JavaScript tokenizer for the `jsdetect` reproduction suite.
//!
//! This crate plays the role Esprima's tokenizer plays in the paper: it
//! produces the lexical units ("tokens") the pipeline consumes, handles the
//! regex-vs-division and template-continuation ambiguities, and records
//! comments (whose density is a transformation-sensitive signal).
//!
//! # Examples
//!
//! ```
//! use jsdetect_lexer::{tokenize, TokenKind};
//!
//! let tokens = tokenize("a / b; /regex/g").unwrap();
//! let kinds: Vec<_> = tokens.iter().map(|t| &t.kind).collect();
//! assert!(kinds.iter().any(|k| matches!(k, TokenKind::Regex { .. })));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod reference;
mod scanner;
mod token;

pub use scanner::{
    tokenize, tokenize_lossy, tokenize_with_budget, tokenize_with_comments, LexError, Lexer,
};
pub use token::{Comment, Kw, Punct, Token, TokenKind};

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn nums(src: &str) -> Vec<f64> {
        kinds(src)
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Num(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    fn strs(src: &str) -> Vec<String> {
        kinds(src)
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Str(s) => Some(s.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn empty_source_gives_eof() {
        let toks = tokenize("").unwrap();
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_eof());
    }

    #[test]
    fn idents_and_keywords() {
        let ks = kinds("var foo = bar");
        assert_eq!(ks[0], TokenKind::Keyword(Kw::Var));
        assert_eq!(ks[1], TokenKind::Ident("foo".into()));
        assert_eq!(ks[2], TokenKind::Punct(Punct::Eq));
        assert_eq!(ks[3], TokenKind::Ident("bar".into()));
    }

    #[test]
    fn contextual_keywords_are_idents() {
        let ks = kinds("let of async await static get set");
        for k in &ks[..ks.len() - 1] {
            assert!(matches!(k, TokenKind::Ident(_)), "expected ident, got {:?}", k);
        }
    }

    #[test]
    fn dollar_and_underscore_idents() {
        let ks = kinds("$ _ $x _y a$b");
        assert_eq!(ks[0], TokenKind::Ident("$".into()));
        assert_eq!(ks[1], TokenKind::Ident("_".into()));
        assert_eq!(ks[2], TokenKind::Ident("$x".into()));
    }

    #[test]
    fn unicode_identifier() {
        let ks = kinds("var café = 1");
        assert_eq!(ks[1], TokenKind::Ident("café".into()));
    }

    #[test]
    fn unicode_escape_in_identifier() {
        let ks = kinds(r"abc");
        assert_eq!(ks[0], TokenKind::Ident("abc".into()));
    }

    #[test]
    fn decimal_numbers() {
        assert_eq!(
            nums("0 1 42 3.5 .5 10. 1e3 1.5e-2 1E+2"),
            vec![0.0, 1.0, 42.0, 3.5, 0.5, 10.0, 1000.0, 0.015, 100.0]
        );
    }

    #[test]
    fn radix_numbers() {
        assert_eq!(nums("0xff 0XFF 0o17 0b101 0777"), vec![255.0, 255.0, 15.0, 5.0, 511.0]);
    }

    #[test]
    fn legacy_octal_with_89_is_decimal() {
        assert_eq!(nums("0789"), vec![789.0]);
    }

    #[test]
    fn numeric_separators_and_bigint() {
        // BigInt literals are a distinct token kind carrying the raw digit
        // text (prefix kept, `n` suffix stripped), not lossy f64 `Num`s.
        assert_eq!(nums("1_000_000 12n 0xf_fn"), vec![1_000_000.0]);
        let bigints: Vec<String> = kinds("1_000_000 12n 0xf_fn")
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::BigInt(raw) => Some(raw.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(bigints, vec!["12".to_string(), "0xf_f".to_string()]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            strs(r#"'a\nb' "q\tw" '\x41' 'B' '\u{1F600}' '\q'"#),
            vec![
                "a\nb".to_string(),
                "q\tw".to_string(),
                "A".to_string(),
                "B".to_string(),
                "\u{1F600}".to_string(),
                "q".to_string(),
            ]
        );
    }

    #[test]
    fn octal_escape_and_nul() {
        assert_eq!(strs(r"'\101' '\0'"), vec!["A".to_string(), "\0".to_string()]);
    }

    #[test]
    fn line_continuation_in_string() {
        assert_eq!(strs("'a\\\nb'"), vec!["ab".to_string()]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("'abc\ndef'").is_err());
    }

    #[test]
    fn regex_vs_division() {
        // After an identifier, `/` is division.
        let ks = kinds("a / b");
        assert!(ks.iter().all(|k| !matches!(k, TokenKind::Regex { .. })));
        // At statement start, `/` begins a regex.
        let ks = kinds("/ab+c/gi");
        assert!(matches!(
            &ks[0],
            TokenKind::Regex { pattern, flags } if pattern == "ab+c" && flags == "gi"
        ));
        // After `=`, regex.
        let ks = kinds("x = /y/");
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Regex { .. })));
        // After `)`, division (e.g. `(a)/2`).
        let ks = kinds("(a)/2/1");
        assert!(ks.iter().all(|k| !matches!(k, TokenKind::Regex { .. })));
    }

    #[test]
    fn regex_with_class_containing_slash() {
        let ks = kinds("/[/]/");
        assert!(matches!(&ks[0], TokenKind::Regex { pattern, .. } if pattern == "[/]"));
    }

    #[test]
    fn template_no_substitution() {
        let ks = kinds("`hello`");
        assert!(matches!(&ks[0], TokenKind::TemplateNoSub { cooked, .. } if cooked == "hello"));
    }

    #[test]
    fn template_with_substitutions() {
        let ks = kinds("`a${x}b${y}c`");
        assert!(matches!(&ks[0], TokenKind::TemplateHead { cooked, .. } if cooked == "a"));
        assert!(matches!(&ks[1], TokenKind::Ident(s) if s == "x"));
        assert!(matches!(&ks[2], TokenKind::TemplateMiddle { cooked, .. } if cooked == "b"));
        assert!(matches!(&ks[3], TokenKind::Ident(s) if s == "y"));
        assert!(matches!(&ks[4], TokenKind::TemplateTail { cooked, .. } if cooked == "c"));
    }

    #[test]
    fn nested_template() {
        let ks = kinds("`a${`inner${z}`}b`");
        let tails = ks.iter().filter(|k| matches!(k, TokenKind::TemplateTail { .. })).count();
        assert_eq!(tails, 2);
    }

    #[test]
    fn template_with_object_literal_inside() {
        let ks = kinds("`v=${ {a: 1} }!`");
        assert!(matches!(ks.last().unwrap(), TokenKind::Eof));
        assert!(ks
            .iter()
            .any(|k| matches!(k, TokenKind::TemplateTail { cooked, .. } if cooked == "!")));
    }

    #[test]
    fn comments_are_skipped_and_recorded() {
        let (toks, comments) = tokenize_with_comments("a // line\n/* block */ b").unwrap();
        assert_eq!(toks.len(), 3); // a b EOF
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].block);
        assert!(comments[1].block);
    }

    #[test]
    fn newline_before_flag() {
        let toks = tokenize("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn newline_inside_block_comment_sets_flag() {
        let toks = tokenize("a /* x\ny */ b").unwrap();
        assert!(toks[1].newline_before);
    }

    #[test]
    fn multichar_punctuators_longest_match() {
        let ks = kinds("a >>>= b >>> c >> d !== e === f ** g => h ?? i ?. j ... k");
        use Punct::*;
        let puncts: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                UShrEq,
                UShr,
                Shr,
                NotEqEq,
                EqEqEq,
                StarStar,
                Arrow,
                QuestionQuestion,
                OptionalChain,
                Ellipsis
            ]
        );
    }

    #[test]
    fn question_dot_digit_is_ternary() {
        // `a ? .3 : .5` — the `?.` must not swallow the number.
        let ks = kinds("a ? .3 : .5");
        assert!(ks.contains(&TokenKind::Punct(Punct::Question)));
        assert_eq!(nums("a ? .3 : .5"), vec![0.3, 0.5]);
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let src = "let abc = 42;";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span.slice(src), "let");
        assert_eq!(toks[1].span.slice(src), "abc");
        assert_eq!(toks[3].span.slice(src), "42");
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn unterminated_template_is_error() {
        assert!(tokenize("`abc").is_err());
        assert!(tokenize("`abc${x").is_err());
    }

    #[test]
    fn ie_conditional_compilation_is_a_comment() {
        // Paper §IV-C1: two malicious samples used JScript conditional
        // compilation, "which Esprima parses as a large comment" — ours
        // does the same.
        let (toks, comments) =
            tokenize_with_comments("/*@cc_on @if (@_jscript) document.write('x'); @end @*/ f();")
                .unwrap();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].block);
        assert_eq!(toks.len(), 5); // f ( ) ; EOF
    }

    #[test]
    fn unicode_line_separators_count_as_newline() {
        let toks = tokenize("a\u{2028}b").unwrap();
        assert!(toks[1].newline_before);
    }

    #[test]
    fn token_budget_stops_token_floods() {
        use jsdetect_guard::{AnalysisError, Budget, Limits};
        let src = "1 + 1 + 1 + 1";
        let limits = Limits { max_tokens: 4, ..Limits::unbounded() };
        let budget = Budget::new(&limits);
        assert!(tokenize_with_budget(src, &budget).is_err());
        assert_eq!(budget.take_violation(), Some(AnalysisError::TokenBudgetExceeded { limit: 4 }));
        // Under the cap, budgeted tokenization matches the plain one.
        let budget = Budget::new(&Limits::unbounded());
        let (toks, _) = tokenize_with_budget(src, &budget).unwrap();
        assert_eq!(toks.len(), tokenize(src).unwrap().len());
        assert!(budget.tokens_used() >= toks.len() as u64);
    }

    #[test]
    fn lossy_tokenize_returns_prefix_and_error() {
        let (toks, _, err) = tokenize_lossy("var x = 'abc", None);
        assert!(err.is_some());
        assert!(toks.len() >= 3, "expected the `var x =` prefix, got {:?}", toks);
        let (toks, comments, err) = tokenize_lossy("a /* c */ b", None);
        assert!(err.is_none());
        assert_eq!(toks.len(), 3); // a b EOF
        assert_eq!(comments.len(), 1);
    }
}

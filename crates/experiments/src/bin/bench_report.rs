//! Persisted perf trajectory for the ML hot paths.
//!
//! Measures forest fit (legacy row-major vs columnar presorted), forest
//! inference (serial row-major vs flattened batch), front-end tokenization
//! (zero-copy byte-level scanner vs the preserved char-level reference),
//! and parallel script analysis at a fixed synthetic scale mirroring the
//! default pipeline
//! (level-2 training is ~1300 rows × ~317 features × 32 trees), then
//! appends the numbers to `BENCH_ml.json` so the speedups are tracked
//! across PRs instead of living in commit messages.
//!
//! Flags: `--smoke` (tiny scale, standalone output file for CI),
//! `--out-file <path>` (default `BENCH_ml.json`), `--label <name>`
//! (trajectory entry label; an existing entry with the same label is
//! replaced), `--seed <u64>` (synthetic-data seed, default 42),
//! `--scale <f64>` (multiplier on row/script counts, default 1.0).
//!
//! Each entry also records provenance (seed, scale, git SHA, feature-space
//! version) and a per-stage telemetry breakdown of `analyze_many` captured
//! through `jsdetect-obs`, so trajectory points are attributable and the
//! analysis wall time can be decomposed without a profiler.

use jsdetect::{analyze_many, analyze_many_cached, AnalysisConfig};
use jsdetect_cache::{preset_tag, AnalysisCache, CacheConfig};
use jsdetect_experiments::{or_exit, IoError};
use jsdetect_ml::reference::RowMajorForest;
use jsdetect_ml::{Dataset, ForestParams, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Serialize, Deserialize, Clone)]
struct StageStat {
    name: String,
    median_ms: f64,
    rows_per_sec: f64,
    repeats: usize,
}

/// One span path's share of the telemetry capture run.
#[derive(Serialize, Deserialize, Clone)]
struct TelemetryStage {
    path: String,
    count: u64,
    total_ms: f64,
    /// Interpolated per-call latency median, from the span's log2
    /// histogram (absent in entries written by older tool versions).
    p50_ms: Option<f64>,
    /// Interpolated per-call 99th-percentile latency.
    p99_ms: Option<f64>,
}

/// Cost of the always-on streaming telemetry: the same `analyze_many`
/// batch with recording disabled vs enabled. CI gates `overhead_pct`.
#[derive(Serialize, Deserialize, Clone)]
struct ObsBench {
    n_scripts: usize,
    /// Median batch analysis with telemetry disabled.
    analyze_disabled_ms: f64,
    /// Median batch analysis with streaming telemetry enabled.
    analyze_enabled_ms: f64,
    /// `(enabled − disabled) / disabled × 100` (may be negative: noise).
    overhead_pct: f64,
    /// Trace-ring events retained by the last enabled rep's snapshot.
    trace_events: usize,
    /// Events overwritten before export in that rep (ring overflow).
    trace_dropped: u64,
}

/// Warm-vs-cold comparison of the content-addressed analysis cache over
/// the same synthetic script set: cold scans analyze and publish, warm
/// scans replay verdicts off disk through a fresh handle (the
/// incremental-rescan scenario).
#[derive(Serialize, Deserialize, Clone)]
struct CacheBench {
    n_scripts: usize,
    /// Limits preset the records were keyed under.
    preset: String,
    /// Feature-space version embedded in the records.
    feature_version: u32,
    /// Median cold scan: empty store, full analysis + record publish.
    scan_cold_ms: f64,
    /// Median warm scan: populated store, cold in-memory LRU, disk replay.
    scan_warm_ms: f64,
    /// scan_cold_ms / scan_warm_ms (higher = rescans are cheaper).
    warm_speedup: f64,
}

/// Throughput and effect of the deobfuscation pass suite over an
/// obfuscated copy of the synthetic script set: each rep parses and
/// drives every script to its normalization fixpoint.
#[derive(Serialize, Deserialize, Clone)]
struct NormalizeBench {
    n_scripts: usize,
    /// Median full-suite run (parse + fixpoint) over all scripts.
    normalize_ms: f64,
    /// Total rewrites the suite performed across the script set.
    rewrites_total: u64,
    /// Total fixpoint rounds across the script set.
    rounds_total: u64,
    /// Scripts that ended `ok` (vs degraded) out of `n_scripts`.
    n_ok: usize,
}

/// Syntax-coverage provenance: the guarded wild-preset pipeline over a
/// module-flavoured population (ES-module bundles with import/export
/// declarations, dynamic `import()`, `import.meta`, BigInt literals and
/// private class members). The conformance gate requires `degraded_rate`
/// to be exactly zero — a degraded module-bearing script means the
/// front-end lost syntax coverage.
#[derive(Serialize, Deserialize, Clone)]
struct SyntaxBench {
    n_scripts: usize,
    /// Scripts whose parse carries the module goal (import/export
    /// declarations present) — expected to equal `n_scripts`.
    n_module_goal: usize,
    n_ok: usize,
    n_degraded: usize,
    n_rejected: usize,
    /// `n_degraded / n_scripts`; gated at 0 in CI.
    degraded_rate: f64,
}

/// Front-end tokenization throughput: the zero-copy byte-level scanner
/// against the preserved char-level reference lexer, over a realistic
/// mixed corpus (regular scripts plus one variant per transformation
/// technique).
#[derive(Serialize, Deserialize, Clone)]
struct LexBench {
    n_scripts: usize,
    /// Total source bytes lexed per rep.
    bytes_total: usize,
    /// Total tokens produced per rep.
    tokens_total: u64,
    /// Median full-corpus pass with the current scanner.
    lex_ms: f64,
    /// Source megabytes per second through the current scanner.
    mb_per_sec: f64,
    /// Tokens per second through the current scanner.
    tokens_per_sec: f64,
    /// Median full-corpus pass with the pre-refactor reference scanner.
    reference_ms: f64,
    /// reference_ms / lex_ms (higher = the rewrite is faster).
    speedup_vs_reference: f64,
}

/// Per-stage decomposition of one instrumented `analyze_many` run. The
/// child-span sum is expected to land within ~10% of the parent `analyze`
/// total (the front-end stages cover nearly all of the per-script work).
#[derive(Serialize, Deserialize, Clone)]
struct TelemetryBreakdown {
    stages: Vec<TelemetryStage>,
    /// Total wall time inside `analyze` spans (all scripts, all threads).
    analyze_total_ms: f64,
    /// Sum over the direct `analyze/...` child spans.
    stage_sum_ms: f64,
    /// `stage_sum_ms / analyze_total_ms`.
    stage_sum_ratio: f64,
}

// Provenance and telemetry fields are Options so entries written by older
// versions of this tool still deserialize from the committed trajectory.
#[derive(Serialize, Deserialize, Clone)]
struct BenchEntry {
    label: String,
    smoke: bool,
    n_rows: usize,
    n_features: usize,
    n_trees: usize,
    stages: Vec<StageStat>,
    /// forest_fit_row_major / forest_fit_columnar (higher = faster now).
    fit_speedup: f64,
    /// forest_predict_serial / forest_predict_batch.
    predict_speedup: f64,
    peak_rss_kb: Option<u64>,
    seed: Option<u64>,
    scale: Option<f64>,
    git_sha: Option<String>,
    feature_space_version: Option<u32>,
    telemetry: Option<TelemetryBreakdown>,
    obs: Option<ObsBench>,
    cache: Option<CacheBench>,
    normalize: Option<NormalizeBench>,
    lex: Option<LexBench>,
    syntax: Option<SyntaxBench>,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    description: String,
    trajectory: Vec<BenchEntry>,
    /// Headline numbers merged in by `normalization_study`; carried as
    /// an opaque value so bench_report rewrites preserve it.
    normalize: Option<serde_json::JsonValue>,
    /// Daemon load-study numbers merged in by `load_study`; also opaque.
    serve: Option<serde_json::JsonValue>,
}

/// Synthetic matrix shaped like the default pipeline's level-2 training
/// set: a mix of quantized (tie-heavy) and continuous columns.
fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..d)
            .map(|j| {
                if j % 4 == 0 {
                    rng.gen_range(0..12) as f32
                } else {
                    (rng.gen_range(0..100_000) as f32) / 12_500.0 - 4.0
                }
            })
            .collect();
        let label = (row[0] > 5.0) ^ (row[1] > 0.0) ^ (rng.gen_range(0..10) == 0);
        x.push(row);
        y.push(label);
    }
    (x, y)
}

/// Median wall time of `repeats` runs of `f`, in milliseconds.
fn median_ms<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn stage(name: &str, rows: usize, repeats: usize, f: impl FnMut()) -> StageStat {
    let ms = median_ms(repeats, f);
    let stat = StageStat {
        name: name.to_string(),
        median_ms: ms,
        rows_per_sec: rows as f64 / (ms / 1e3),
        repeats,
    };
    println!("  {:28} {:>10.1} ms   {:>12.0} rows/s", stat.name, stat.median_ms, stat.rows_per_sec);
    stat
}

/// Peak resident set size in kB from /proc/self/status (Linux only).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Short git commit SHA of the working tree, if available.
fn git_sha() -> Option<String> {
    let out = std::process::Command::new("git").args(["rev-parse", "--short", "HEAD"]).output();
    match out {
        Ok(o) if o.status.success() => {
            Some(String::from_utf8_lossy(&o.stdout).trim().to_string()).filter(|s| !s.is_empty())
        }
        _ => None,
    }
}

/// Runs one instrumented `analyze_many` pass and decomposes the `analyze`
/// span into its per-stage children.
fn capture_telemetry(refs: &[&str]) -> TelemetryBreakdown {
    jsdetect_obs::set_enabled(true);
    jsdetect_obs::reset();
    std::hint::black_box(analyze_many(refs));
    let snap = jsdetect_obs::snapshot();
    jsdetect_obs::set_enabled(false);

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut stages = Vec::new();
    let mut analyze_total_ms = 0.0;
    let mut stage_sum_ms = 0.0;
    for s in &snap.spans {
        if s.path == "analyze" {
            analyze_total_ms = ms(s.total_ns);
        }
        if let Some(rest) = s.path.strip_prefix("analyze/") {
            if !rest.contains('/') {
                stage_sum_ms += ms(s.total_ns);
            }
        }
        stages.push(TelemetryStage {
            path: s.path.clone(),
            count: s.count,
            total_ms: ms(s.total_ns),
            p50_ms: Some(s.latency.quantile_interp(0.5) / 1e6),
            p99_ms: Some(s.latency.quantile_interp(0.99) / 1e6),
        });
    }
    let ratio = if analyze_total_ms > 0.0 { stage_sum_ms / analyze_total_ms } else { 0.0 };
    TelemetryBreakdown { stages, analyze_total_ms, stage_sum_ms, stage_sum_ratio: ratio }
}

/// Measures the streaming-telemetry overhead on `analyze_many`. Disabled
/// and enabled reps interleave (ABAB…) so drift — thermal, allocator
/// state, page cache — hits both modes equally, and medians keep a single
/// outlier rep from deciding the CI gate at smoke scale.
fn obs_overhead(refs: &[&str], reps: usize) -> ObsBench {
    let mut disabled = Vec::with_capacity(reps);
    let mut enabled = Vec::with_capacity(reps);
    let (mut trace_events, mut trace_dropped) = (0usize, 0u64);
    for _ in 0..reps {
        jsdetect_obs::set_enabled(false);
        let t0 = Instant::now();
        std::hint::black_box(analyze_many(refs));
        disabled.push(t0.elapsed().as_secs_f64() * 1e3);

        jsdetect_obs::set_enabled(true);
        jsdetect_obs::reset();
        let t0 = Instant::now();
        std::hint::black_box(analyze_many(refs));
        enabled.push(t0.elapsed().as_secs_f64() * 1e3);
        let snap = jsdetect_obs::snapshot();
        trace_events = snap.events.len();
        trace_dropped = snap.dropped_events;
    }
    jsdetect_obs::set_enabled(false);
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let (d, e) = (median(&mut disabled), median(&mut enabled));
    ObsBench {
        n_scripts: refs.len(),
        analyze_disabled_ms: d,
        analyze_enabled_ms: e,
        overhead_pct: (e - d) / d * 100.0,
        trace_events,
        trace_dropped,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| -> Option<String> {
        argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1).cloned())
    };
    let out_file = flag("--out-file").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_ml_smoke.json".to_string()
        } else {
            "BENCH_ml.json".to_string()
        }
    });
    let label = flag("--label").unwrap_or_else(|| {
        if smoke {
            "smoke".to_string()
        } else {
            "current".to_string()
        }
    });

    let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale: f64 = flag("--scale").and_then(|v| v.parse().ok()).unwrap_or(1.0);
    assert!(scale > 0.0, "--scale must be positive");

    // Default pipeline scale: level-2 training is ~1300 samples × ~317
    // features with 32-tree forests.
    let (base_n, d, n_trees, fit_reps, pred_reps) =
        if smoke { (160, 40, 8, 1, 2) } else { (1300, 317, 32, 3, 5) };
    let n = ((base_n as f64 * scale) as usize).max(8);
    let (x, y) = synthetic(n, d, seed);
    let data = Dataset::from_rows(&x).expect("synthetic matrix");
    let params = ForestParams { n_trees, seed, ..Default::default() };

    println!("bench_report: {} rows × {} features, {} trees ({})", n, d, n_trees, label);
    println!("  seed {} scale {} sha {}", seed, scale, git_sha().as_deref().unwrap_or("unknown"));
    let mut stages = Vec::new();

    stages.push(stage("forest_fit_row_major", n, fit_reps, || {
        std::hint::black_box(RowMajorForest::fit(&x, &y, &params));
    }));
    stages.push(stage("forest_fit_columnar", n, fit_reps, || {
        std::hint::black_box(RandomForest::fit_dataset(&data, &y, &params));
    }));

    let legacy = RowMajorForest::fit(&x, &y, &params);
    let forest = RandomForest::fit_dataset(&data, &y, &params);
    stages.push(stage("forest_predict_serial", n, pred_reps, || {
        for row in &x {
            std::hint::black_box(legacy.predict_proba(row));
        }
    }));
    stages.push(stage("forest_predict_batch", n, pred_reps, || {
        std::hint::black_box(forest.predict_proba_batch(&data));
    }));

    // Analysis throughput (work-stealing over uneven script sizes).
    let n_scripts = (((if smoke { 24 } else { 150 }) as f64 * scale) as usize).max(4);
    let scripts: Vec<String> = (0..n_scripts)
        .map(|i| {
            let stmts = 5 + (i * 37) % 120;
            (0..stmts).map(|s| format!("var v{}_{} = {} + f({});", i, s, s, s)).collect::<String>()
        })
        .collect();
    let refs: Vec<&str> = scripts.iter().map(String::as_str).collect();
    stages.push(stage("analyze_many", n_scripts, fit_reps, || {
        std::hint::black_box(analyze_many(&refs));
    }));

    // Incremental-rescan cost: the same scripts through the content-
    // addressed cache. Cold reps each get a fresh empty store (so every
    // rep pays full analysis + publish); the warm stage replays a
    // populated store through a fresh handle per rep, so the in-memory
    // LRU starts cold and the replay comes off disk.
    let config = AnalysisConfig::default();
    let cache_base =
        std::env::temp_dir().join(format!("jsdetect-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_base);
    let open_cache = |dir: &std::path::Path| {
        AnalysisCache::open(CacheConfig::new(dir, &config.limits)).expect("open bench cache")
    };
    let mut cold_rep = 0u32;
    stages.push(stage("scan_cold", n_scripts, fit_reps, || {
        cold_rep += 1;
        let cache = open_cache(&cache_base.join(format!("cold-{}", cold_rep)));
        std::hint::black_box(analyze_many_cached(&refs, &config, &cache));
    }));
    let warm_dir = cache_base.join("warm");
    analyze_many_cached(&refs, &config, &open_cache(&warm_dir)); // populate, untimed
    stages.push(stage("scan_warm", n_scripts, pred_reps, || {
        let cache = open_cache(&warm_dir);
        std::hint::black_box(analyze_many_cached(&refs, &config, &cache));
    }));
    let _ = std::fs::remove_dir_all(&cache_base);

    // Deobfuscation throughput: each rep parses an obfuscated script set
    // and drives every script to its fixpoint. The analyze-stage scripts
    // above carry no string literals or adjacent expression statements,
    // so the transforms would no-op on them; this set is built to give
    // the string-pool and sequence transforms something to chew on.
    let obfuscated: Vec<String> = (0..n_scripts)
        .map(|i| {
            let stmts = 5 + (i * 37) % 120;
            let decls: String =
                (0..stmts).map(|s| format!("var a{}_{} = 'payload {} {}';", i, s, i, s)).collect();
            let calls: String =
                (0..stmts).map(|s| format!("use(a{}_{}, 'key {}');", i, s, s)).collect();
            let src = decls + &calls;
            let t = if i % 2 == 0 {
                jsdetect::Technique::GlobalArray
            } else {
                jsdetect::Technique::MinificationAdvanced
            };
            jsdetect_transform::apply(&src, &[t], seed + i as u64).unwrap_or_else(|_| src)
        })
        .collect();
    let norm_opts = jsdetect_normalize::NormalizeOptions::wild();
    let (mut rewrites_total, mut rounds_total, mut norm_ok) = (0u64, 0u64, 0usize);
    stages.push(stage("normalize", n_scripts, fit_reps, || {
        rewrites_total = 0;
        rounds_total = 0;
        norm_ok = 0;
        for src in &obfuscated {
            if let Ok(mut program) = jsdetect_parser::parse(src) {
                let report = jsdetect_normalize::normalize_program(&mut program, &norm_opts);
                rewrites_total += report.total_rewrites();
                rounds_total += u64::from(report.rounds);
                if report.outcome == jsdetect_guard::OutcomeKind::Ok {
                    norm_ok += 1;
                }
                std::hint::black_box(&program);
            }
        }
    }));

    // Tokenization throughput, current scanner vs the preserved reference.
    // The corpus mixes plain generated scripts with one variant per
    // transformation technique so literal-heavy and minified shapes are
    // both represented.
    let lex_corpus: Vec<String> = {
        let mut v = jsdetect_corpus::regular_corpus(if smoke { 6 } else { 48 }, seed);
        let base_len = v.len();
        for (i, t) in jsdetect::Technique::ALL.iter().enumerate() {
            let base = v[i % base_len].clone();
            if let Ok(obf) = jsdetect_transform::apply(&base, &[*t], seed + i as u64) {
                v.push(obf);
            }
        }
        v
    };
    let lex_bytes: usize = lex_corpus.iter().map(String::len).sum();
    let mut lex_tokens = 0u64;
    stages.push(stage("lex_throughput", lex_corpus.len(), pred_reps, || {
        lex_tokens = 0;
        for src in &lex_corpus {
            let toks = jsdetect_lexer::tokenize(src).expect("lex corpus tokenizes");
            lex_tokens += toks.len() as u64;
            std::hint::black_box(&toks);
        }
    }));
    stages.push(stage("lex_reference", lex_corpus.len(), pred_reps, || {
        for src in &lex_corpus {
            let toks = jsdetect_lexer::reference::tokenize_reference(src)
                .expect("lex corpus tokenizes (reference)");
            std::hint::black_box(&toks);
        }
    }));

    // Syntax coverage: a module-flavoured wild population through the
    // guarded wild-preset pipeline. Any degraded module script means the
    // front-end lost ES-module coverage; CI gates the rate at zero.
    let module_pop = jsdetect_corpus::module_population(if smoke { 12 } else { 60 }, seed);
    let module_refs: Vec<&str> = module_pop.iter().map(|s| s.src.as_str()).collect();
    let module_results = jsdetect::analyze_many_guarded(&module_refs, &AnalysisConfig::wild());
    let n_module_goal = module_pop
        .iter()
        .filter(|s| jsdetect_parser::parse(&s.src).map(|p| p.module_goal()).unwrap_or(false))
        .count();
    let count_outcome =
        |k: jsdetect::OutcomeKind| module_results.iter().filter(|r| r.outcome == k).count();
    let syntax_bench = SyntaxBench {
        n_scripts: module_pop.len(),
        n_module_goal,
        n_ok: count_outcome(jsdetect::OutcomeKind::Ok),
        n_degraded: count_outcome(jsdetect::OutcomeKind::Degraded),
        n_rejected: count_outcome(jsdetect::OutcomeKind::Rejected),
        degraded_rate: count_outcome(jsdetect::OutcomeKind::Degraded) as f64
            / module_pop.len().max(1) as f64,
    };

    // One extra instrumented pass decomposes the analysis wall time into
    // per-stage spans (the timed stage above ran with telemetry off).
    let telemetry = capture_telemetry(&refs);

    // Streaming-telemetry cost on the same batch; CI gates the result.
    let obs_bench = obs_overhead(&refs, 7);

    let ms_of = |name: &str| stages.iter().find(|s| s.name == name).map(|s| s.median_ms).unwrap();
    let cache_bench = CacheBench {
        n_scripts,
        preset: preset_tag(&config.limits),
        feature_version: jsdetect_features::FEATURE_SPACE_VERSION,
        scan_cold_ms: ms_of("scan_cold"),
        scan_warm_ms: ms_of("scan_warm"),
        warm_speedup: ms_of("scan_cold") / ms_of("scan_warm"),
    };
    let normalize_bench = NormalizeBench {
        n_scripts,
        normalize_ms: ms_of("normalize"),
        rewrites_total,
        rounds_total,
        n_ok: norm_ok,
    };
    let lex_ms = ms_of("lex_throughput");
    let lex_bench = LexBench {
        n_scripts: lex_corpus.len(),
        bytes_total: lex_bytes,
        tokens_total: lex_tokens,
        lex_ms,
        mb_per_sec: lex_bytes as f64 / 1e6 / (lex_ms / 1e3),
        tokens_per_sec: lex_tokens as f64 / (lex_ms / 1e3),
        reference_ms: ms_of("lex_reference"),
        speedup_vs_reference: ms_of("lex_reference") / lex_ms,
    };
    let entry = BenchEntry {
        label,
        smoke,
        n_rows: n,
        n_features: d,
        n_trees,
        fit_speedup: ms_of("forest_fit_row_major") / ms_of("forest_fit_columnar"),
        predict_speedup: ms_of("forest_predict_serial") / ms_of("forest_predict_batch"),
        stages,
        peak_rss_kb: peak_rss_kb(),
        seed: Some(seed),
        scale: Some(scale),
        git_sha: git_sha(),
        feature_space_version: Some(jsdetect_features::FEATURE_SPACE_VERSION),
        telemetry: Some(telemetry),
        obs: Some(obs_bench),
        cache: Some(cache_bench),
        normalize: Some(normalize_bench),
        lex: Some(lex_bench),
        syntax: Some(syntax_bench),
    };
    println!(
        "\n  fit speedup    {:.2}x (row-major → columnar)\n  predict speedup {:.2}x (serial → batch)",
        entry.fit_speedup, entry.predict_speedup
    );
    if let Some(o) = &entry.obs {
        println!(
            "  obs overhead   {:+.1}% (disabled {:.2} ms → enabled {:.2} ms; {} trace events, {} dropped)",
            o.overhead_pct, o.analyze_disabled_ms, o.analyze_enabled_ms, o.trace_events, o.trace_dropped
        );
    }
    if let Some(c) = &entry.cache {
        println!(
            "  warm rescan    {:.2}x (cold {:.1} ms → warm {:.1} ms, preset {}, fv {})",
            c.warm_speedup, c.scan_cold_ms, c.scan_warm_ms, c.preset, c.feature_version
        );
    }
    if let Some(nb) = &entry.normalize {
        println!(
            "  normalize      {:.1} ms for {} scripts ({} rewrites, {} rounds, {} ok)",
            nb.normalize_ms, nb.n_scripts, nb.rewrites_total, nb.rounds_total, nb.n_ok
        );
    }
    if let Some(l) = &entry.lex {
        println!(
            "  lex throughput {:.1} MB/s, {:.2}M tokens/s ({:.2}x vs reference: {:.1} ms → {:.1} ms over {:.2} MB)",
            l.mb_per_sec,
            l.tokens_per_sec / 1e6,
            l.speedup_vs_reference,
            l.reference_ms,
            l.lex_ms,
            l.bytes_total as f64 / 1e6
        );
    }
    if let Some(s) = &entry.syntax {
        println!(
            "  module syntax  {} scripts ({} module-goal): {} ok, {} degraded, {} rejected (degraded rate {:.4})",
            s.n_scripts, s.n_module_goal, s.n_ok, s.n_degraded, s.n_rejected, s.degraded_rate
        );
    }
    if let Some(t) = &entry.telemetry {
        println!("\n  analyze stage breakdown (one instrumented pass):");
        for s in &t.stages {
            if s.path.starts_with("analyze/") {
                println!(
                    "    {:24} {:>9.2} ms  ({} spans, p50 {:.3} ms, p99 {:.3} ms)",
                    s.path,
                    s.total_ms,
                    s.count,
                    s.p50_ms.unwrap_or(0.0),
                    s.p99_ms.unwrap_or(0.0)
                );
            }
        }
        println!(
            "    stage sum {:.2} ms / analyze total {:.2} ms = {:.1}%",
            t.stage_sum_ms,
            t.analyze_total_ms,
            t.stage_sum_ratio * 100.0
        );
    }

    // Append to (or start) the persisted trajectory; same-label entries
    // are replaced so re-runs stay idempotent. Smoke runs write a
    // standalone file and never touch the committed trajectory.
    let mut file = if smoke {
        BenchFile {
            description: smoke_description(),
            trajectory: Vec::new(),
            normalize: None,
            serve: None,
        }
    } else {
        std::fs::read_to_string(&out_file)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_else(|| BenchFile {
                description: description(),
                trajectory: Vec::new(),
                normalize: None,
                serve: None,
            })
    };
    file.trajectory.retain(|e| e.label != entry.label);
    file.trajectory.push(entry);
    if let Some(dir) = std::path::Path::new(&out_file).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    let json = or_exit(serde_json::to_string_pretty(&file).map_err(|e| IoError {
        op: "serialize",
        path: out_file.clone().into(),
        msg: e.to_string(),
    }));
    or_exit(std::fs::write(&out_file, json).map_err(|e| IoError {
        op: "write",
        path: out_file.clone().into(),
        msg: e.to_string(),
    }));
    println!("\nwrote {}", out_file);
}

fn description() -> String {
    "ML hot-path perf trajectory: forest fit/predict and parallel analysis, \
     measured by crates/experiments/src/bin/bench_report.rs at the default \
     pipeline scale. One entry per tracked change; medians in milliseconds."
        .to_string()
}

fn smoke_description() -> String {
    "Smoke-scale bench_report output (CI bitrot check only — numbers are not \
     meaningful at this scale)."
        .to_string()
}

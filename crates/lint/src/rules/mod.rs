//! The built-in rule set.
//!
//! One module per rule; [`default_rules`] instantiates them in
//! [`crate::RULE_NAMES`] order.

mod comma_sequence;
mod debugger;
mod decoder;
mod density;
mod flattening;
mod global_array;
mod self_defending;
mod unreachable;
mod unused;

pub use comma_sequence::CommaSequenceDensity;
pub use debugger::DebuggerInLoop;
pub use decoder::StringDecoderCall;
pub use density::NonAlphanumericDensity;
pub use flattening::FlatteningDispatcher;
pub use global_array::GlobalStringArray;
pub use self_defending::SelfDefendingToString;
pub use unreachable::UnreachableCode;
pub use unused::UnusedBinding;

use crate::Rule;

/// All built-in rules, in [`crate::RULE_NAMES`] order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnreachableCode),
        Box::new(UnusedBinding),
        Box::new(FlatteningDispatcher),
        Box::new(GlobalStringArray),
        Box::new(StringDecoderCall),
        Box::new(DebuggerInLoop),
        Box::new(SelfDefendingToString),
        Box::new(NonAlphanumericDensity),
        Box::new(CommaSequenceDensity),
    ]
}

//! Freezes front-end behavior into `tests/fixtures/frontend_golden.json`.
//!
//! The fixture embeds a deterministic script set (regular corpus samples,
//! one variant per transform technique, and literal-heavy edge cases) plus
//! the bit patterns of their full feature vectors under a freshly fitted
//! [`VectorSpace`]. `tests/frontend_differential.rs` re-derives the vectors
//! with the current front end and asserts bit identity, so lexer/parser
//! refactors (e.g. the zero-copy atom front end) are pinned against the
//! behavior of the code that generated the fixture.
//!
//! Regenerate (only when the feature space changes *intentionally*):
//! `cargo run --release -p jsdetect-experiments --bin golden_frontend`

use jsdetect_corpus::regular_corpus;
use jsdetect_features::{analyze_script, FeatureConfig, VectorSpace};
use jsdetect_transform::{apply, Technique};
use serde::{Deserialize, Serialize};

/// Fixture schema shared with `tests/frontend_differential.rs`.
#[derive(Serialize, Deserialize)]
pub struct FrontendGolden {
    /// Vector dimensionality of the fitted space.
    pub dim: usize,
    /// Max n-grams the space was fitted with.
    pub max_ngrams: usize,
    /// Scripts, embedded verbatim so the fixture is self-contained.
    pub scripts: Vec<GoldenScript>,
}

/// One pinned script with its feature vector.
#[derive(Serialize, Deserialize)]
pub struct GoldenScript {
    /// Label for diagnostics (`regular:3`, `technique:global_array`, ...).
    pub label: String,
    /// Source text.
    pub src: String,
    /// Feature vector as f32 bit patterns (exact, no decimal round-trip).
    pub vector_bits: Vec<u32>,
}

/// Builds the deterministic script set the fixture pins.
pub fn golden_scripts() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let regular = regular_corpus(12, 42);
    for (i, src) in regular.iter().enumerate() {
        out.push((format!("regular:{}", i), src.clone()));
    }
    for (i, t) in Technique::ALL.iter().enumerate() {
        let base = &regular[i % regular.len()];
        match apply(base, &[*t], 1000 + i as u64) {
            Ok(obf) => out.push((format!("technique:{}", t.as_str()), obf)),
            Err(e) => panic!("transform {} failed on regular:{}: {:?}", t, i, e),
        }
    }
    let edge_cases: &[(&str, &str)] = &[
        ("edge:numeric", "var a = 0x1F + 0b1010 + 0o17 + 012 + 089 + 1_000_000 + 1e3 + .5 + 5. + 0.25e-2 + 42n + 0xFFn;"),
        ("edge:strings", r#"var s = 'a\nb\tc\x41B\u{1F600}\0\101' + "q\
w" + '\8';"#),
        ("edge:templates", "var t = `a${1 + `inner${x}tail`}b${`${y}`}c`;"),
        ("edge:regex", "var r = /a[/]b\\/c/gi; var d = x / y / z; if (1) /re(?:x)*/.test(s);"),
        ("edge:idents", "var $_a1 = 1; var \\u0061bc = 2; var _0x3fa2 = $_a1 + \u{3b1}\u{3b2};"),
        ("edge:punct", "a??=b; c||=d; e&&=f; g**=2; h>>>=1; i?.j; k?.['l']; m ?? n; o=>o;"),
        ("edge:empty", ""),
        ("edge:comments", "// line\nvar x = 1; /* block\nmulti */ x++; // tail"),
    ];
    for (label, src) in edge_cases {
        out.push((label.to_string(), src.to_string()));
    }
    out
}

fn main() {
    let max_ngrams = 200;
    let scripts = golden_scripts();
    let analyses: Vec<_> = scripts
        .iter()
        .map(|(label, src)| {
            analyze_script(src).unwrap_or_else(|e| panic!("{} failed to parse: {}", label, e))
        })
        .collect();
    let space = VectorSpace::fit(analyses.iter(), max_ngrams, FeatureConfig::default());
    let golden = FrontendGolden {
        dim: space.dim(),
        max_ngrams,
        scripts: scripts
            .iter()
            .zip(&analyses)
            .map(|((label, src), a)| GoldenScript {
                label: label.clone(),
                src: src.clone(),
                vector_bits: space.vectorize(a).iter().map(|v| v.to_bits()).collect(),
            })
            .collect(),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/frontend_golden.json");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, serde_json::to_string(&golden).unwrap()).unwrap();
    println!("wrote {} scripts x {} dims to {}", golden.scripts.len(), golden.dim, path);
}

//! The paper's training protocol (§III-D) at configurable scale.
//!
//! The paper collects 21,000 regular scripts, transforms each with all ten
//! techniques, and carves out disjoint training / validation / test sets.
//! [`train_pipeline`] reproduces that protocol over the synthetic corpus:
//! source scripts are partitioned by index (train / test / validation), so
//! every derived sample in one split comes from source scripts never seen
//! by another split.

use crate::config::DetectorConfig;
use crate::level1::{Level1Detector, Level1Truth};
use crate::level2::Level2Detector;
use jsdetect_corpus::{GroundTruth, LabeledSample};
use jsdetect_obs::names;
use jsdetect_transform::Technique;
use serde::{Deserialize, Serialize};

/// Both trained detectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedDetectors {
    /// Level 1: regular / minified / obfuscated.
    pub level1: Level1Detector,
    /// Level 2: the ten techniques.
    pub level2: Level2Detector,
}

impl TrainedDetectors {
    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error (e.g. a non-finite float
    /// in a trained model) instead of panicking.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON and rebuilds internal indexes.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut d: TrainedDetectors = serde_json::from_str(json)?;
        d.level1.rebuild_index();
        d.level2.rebuild_index();
        Ok(d)
    }
}

/// Everything the evaluation experiments need: trained detectors plus the
/// held-out test pools.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The trained detectors.
    pub detectors: TrainedDetectors,
    /// Held-out regular samples.
    pub test_regular: Vec<LabeledSample>,
    /// Held-out minified samples (simple + advanced).
    pub test_minified: Vec<LabeledSample>,
    /// Held-out obfuscated samples (all eight techniques).
    pub test_obfuscated: Vec<LabeledSample>,
    /// Held-out per-technique samples for level 2.
    pub test_level2: Vec<LabeledSample>,
    /// Validation regular samples (model-selection experiments).
    pub validation_regular: Vec<LabeledSample>,
}

/// Index split mirroring §III-D2 at scale `n`.
#[derive(Debug, Clone, Copy)]
struct Split {
    train_end: usize,
    test_end: usize,
}

fn split(n: usize) -> Split {
    // 1/2 train, 1/4 test, 1/4 validation.
    Split { train_end: n / 2, test_end: n / 2 + n / 4 }
}

const OBFUSCATIONS: [Technique; 8] = [
    Technique::IdentifierObfuscation,
    Technique::StringObfuscation,
    Technique::GlobalArray,
    Technique::NoAlphanumeric,
    Technique::DeadCodeInjection,
    Technique::ControlFlowFlattening,
    Technique::SelfDefending,
    Technique::DebugProtection,
];

/// Runs the full training protocol on `n_regular` generated scripts.
pub fn train_pipeline(n_regular: usize, seed: u64, cfg: &DetectorConfig) -> PipelineOutput {
    let _t = jsdetect_obs::span(names::SPAN_TRAIN_PIPELINE);
    let gt = GroundTruth::generate(n_regular, seed);
    let sp = split(n_regular);

    // Analyze every training-partition sample exactly once; both detectors
    // train from these shared analyses.
    let mut train_samples: Vec<&LabeledSample> = Vec::new();
    let mut l1_quota: Vec<bool> = Vec::new(); // participate in level-1 set
    for s in &gt.regular[..sp.train_end] {
        train_samples.push(s);
        l1_quota.push(true);
    }
    for t in [Technique::MinificationSimple, Technique::MinificationAdvanced] {
        for s in pool_slice(&gt, t, 0, sp.train_end) {
            train_samples.push(s);
            l1_quota.push(true);
        }
    }
    for t in OBFUSCATIONS {
        // Level 1 takes n/8 per obfuscation technique so the obfuscated
        // class is the same size as the regular class; level 2 uses the
        // whole pool.
        let quota = (sp.train_end / OBFUSCATIONS.len()).max(1);
        for (i, s) in pool_slice(&gt, t, 0, sp.train_end).iter().enumerate() {
            train_samples.push(s);
            l1_quota.push(i < quota);
        }
    }
    // Partially transformed samples (§III-C): both regular and minified.
    let partials: Vec<jsdetect_corpus::LabeledSample> = (0..(n_regular / 3).max(4))
        .filter_map(|i| jsdetect_corpus::dataset::partial_sample(seed ^ ((i as u64) << 33)))
        .collect();

    let srcs: Vec<&str> = train_samples.iter().map(|s| s.src.as_str()).collect();
    let analyses = crate::vectorize::analyze_many(&srcs);
    let partial_srcs: Vec<&str> = partials.iter().map(|s| s.src.as_str()).collect();
    let partial_analyses = crate::vectorize::analyze_many(&partial_srcs);

    let mut l1_set = Vec::new();
    let mut l2_set = Vec::new();
    for ((sample, analysis), in_l1) in train_samples.iter().zip(&analyses).zip(&l1_quota) {
        if let Some(a) = analysis {
            if *in_l1 {
                l1_set.push((a, Level1Truth::from_techniques(&sample.techniques)));
            }
            if sample.is_transformed() {
                l2_set.push((a, sample.label_vector()));
            }
        }
    }
    for (sample, analysis) in partials.iter().zip(&partial_analyses) {
        if let Some(a) = analysis {
            let mut truth = Level1Truth::from_techniques(&sample.techniques);
            truth.regular = true; // the page part is regular code
            l1_set.push((a, truth));
            l2_set.push((a, sample.label_vector()));
        }
    }
    let level1 = Level1Detector::train_from_analyses(&l1_set, cfg);
    let level2 = Level2Detector::train_from_analyses(&l2_set, cfg);

    // ---- held-out pools ------------------------------------------------------
    let test_regular = gt.regular[sp.train_end..sp.test_end].to_vec();
    let validation_regular = gt.regular[sp.test_end..].to_vec();
    let mut test_minified = Vec::new();
    for t in [Technique::MinificationSimple, Technique::MinificationAdvanced] {
        test_minified.extend(pool_slice(&gt, t, sp.train_end, sp.test_end).to_vec());
    }
    let mut test_obfuscated = Vec::new();
    for t in OBFUSCATIONS {
        test_obfuscated.extend(pool_slice(&gt, t, sp.train_end, sp.test_end).to_vec());
    }
    let mut test_level2 = Vec::new();
    for t in Technique::ALL {
        test_level2.extend(pool_slice(&gt, t, sp.train_end, sp.test_end).to_vec());
    }

    PipelineOutput {
        detectors: TrainedDetectors { level1, level2 },
        test_regular,
        test_minified,
        test_obfuscated,
        test_level2,
        validation_regular,
    }
}

/// Slice of a technique pool corresponding to source-script indices
/// `[lo, hi)`. Pools can be shorter than the regular corpus when a
/// transform failed; indices are clamped.
fn pool_slice(gt: &GroundTruth, t: Technique, lo: usize, hi: usize) -> &[LabeledSample] {
    let pool = gt.pool(t);
    let lo = lo.min(pool.len());
    let hi = hi.min(pool.len());
    &pool[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_fractions() {
        let sp = split(100);
        assert_eq!(sp.train_end, 50);
        assert_eq!(sp.test_end, 75);
    }

    #[test]
    fn obfuscation_list_excludes_minification() {
        assert_eq!(OBFUSCATIONS.len(), 8);
        assert!(OBFUSCATIONS.iter().all(|t| !t.is_minification()));
    }
}

//! The level-1 detector: regular vs. minified vs. obfuscated
//! (paper §III-C).

use crate::config::DetectorConfig;
use crate::vectorize::{analyze_many, vectorize_dataset};
use jsdetect_features::VectorSpace;
use jsdetect_ml::{Dataset, MultiLabel};
use jsdetect_obs::names;
use jsdetect_parser::ParseError;
use serde::{Deserialize, Serialize};

/// Level-1 class labels (multi-label: a file can be both minified and
/// obfuscated, or partially regular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level1Truth {
    /// The file is (at least partly) regular.
    pub regular: bool,
    /// A minification technique was applied.
    pub minified: bool,
    /// An obfuscation technique was applied.
    pub obfuscated: bool,
}

impl Level1Truth {
    /// Truth for an untransformed file.
    pub fn regular() -> Self {
        Level1Truth { regular: true, minified: false, obfuscated: false }
    }

    /// Truth derived from an applied technique set.
    pub fn from_techniques(techniques: &[jsdetect_transform::Technique]) -> Self {
        let minified = techniques.iter().any(|t| t.is_minification());
        let obfuscated = techniques.iter().any(|t| !t.is_minification());
        Level1Truth { regular: techniques.is_empty(), minified, obfuscated }
    }

    /// Whether the file counts as transformed (obfuscated and/or minified,
    /// §III-E1).
    pub fn is_transformed(&self) -> bool {
        self.minified || self.obfuscated
    }

    /// Multi-label vector `[regular, minified, obfuscated]`.
    pub fn label_vector(&self) -> Vec<bool> {
        vec![self.regular, self.minified, self.obfuscated]
    }
}

/// Level-1 prediction: per-class confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Level1Prediction {
    /// Confidence the file is regular.
    pub regular: f32,
    /// Confidence the file is minified.
    pub minified: f32,
    /// Confidence the file is obfuscated.
    pub obfuscated: f32,
}

impl Level1Prediction {
    /// The paper's decision rule: a file is transformed if flagged
    /// obfuscated and/or minified.
    pub fn is_transformed(&self) -> bool {
        self.minified >= 0.5 || self.obfuscated >= 0.5
    }

    /// Whether the regular flag fires.
    pub fn is_regular(&self) -> bool {
        !self.is_transformed()
    }
}

/// A trained level-1 detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level1Detector {
    space: VectorSpace,
    model: MultiLabel,
}

impl Level1Detector {
    /// Trains on `(source, truth)` pairs. Scripts that fail to parse are
    /// skipped.
    pub fn train(samples: &[(&str, Level1Truth)], cfg: &DetectorConfig) -> Self {
        let srcs: Vec<&str> = samples.iter().map(|(s, _)| *s).collect();
        let analyses = analyze_many(&srcs);
        let kept: Vec<(&jsdetect_features::ScriptAnalysis, Level1Truth)> = analyses
            .iter()
            .zip(samples)
            .filter_map(|(a, (_, truth))| a.as_ref().map(|a| (a, *truth)))
            .collect();
        Self::train_from_analyses(&kept, cfg)
    }

    /// Trains from pre-computed analyses (lets callers share one analysis
    /// pass between the level-1 and level-2 detectors).
    pub fn train_from_analyses(
        samples: &[(&jsdetect_features::ScriptAnalysis, Level1Truth)],
        cfg: &DetectorConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "no training sample parsed");
        let _t = jsdetect_obs::span(names::SPAN_LEVEL1_TRAIN);
        let space = VectorSpace::fit(samples.iter().map(|(a, _)| *a), cfg.max_ngrams, cfg.features);
        // Vectorize straight into the columnar store, reusing one scratch
        // row instead of materializing Vec<Vec<f32>>.
        let mut data = Dataset::zeros(samples.len(), space.dim());
        let mut row = Vec::with_capacity(space.dim());
        for (i, (a, _)) in samples.iter().enumerate() {
            space.vectorize_into(a, &mut row);
            data.fill_row(i, &row);
        }
        let y: Vec<Vec<bool>> = samples.iter().map(|(_, t)| t.label_vector()).collect();
        let model = MultiLabel::fit_dataset(&data, &y, cfg.strategy, &cfg.base);
        Level1Detector { space, model }
    }

    /// Classifies one script.
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid JavaScript.
    pub fn predict(&self, src: &str) -> Result<Level1Prediction, ParseError> {
        let _t = jsdetect_obs::span(names::SPAN_LEVEL1_PREDICT);
        let a = jsdetect_features::analyze_script(src)?;
        let v = self.space.vectorize(&a);
        let p = self.model.predict_proba(&v);
        Ok(Level1Prediction { regular: p[0], minified: p[1], obfuscated: p[2] })
    }

    /// Classifies many scripts in parallel (vectorized into one columnar
    /// batch, predicted with the flattened-forest batch path); unparseable
    /// scripts yield `None`.
    pub fn predict_many(&self, srcs: &[&str]) -> Vec<Option<Level1Prediction>> {
        if srcs.is_empty() {
            return Vec::new();
        }
        let _t = jsdetect_obs::span(names::SPAN_LEVEL1_PREDICT_BATCH);
        let (data, parsed) = vectorize_dataset(&self.space, srcs);
        let probs = self.model.predict_proba_batch(&data);
        parsed
            .into_iter()
            .zip(probs)
            .map(|(ok, p)| {
                ok.then(|| Level1Prediction { regular: p[0], minified: p[1], obfuscated: p[2] })
            })
            .collect()
    }

    /// Classifies one pre-extracted feature payload (the cache/serve path:
    /// no lexing or parsing, just projection and forest inference).
    pub fn predict_payload(&self, payload: &jsdetect_features::FeaturePayload) -> Level1Prediction {
        let _t = jsdetect_obs::span(names::SPAN_LEVEL1_PREDICT);
        let p = self.model.predict_proba(&self.space.vectorize_payload(payload));
        Level1Prediction { regular: p[0], minified: p[1], obfuscated: p[2] }
    }

    /// Batch-classifies pre-extracted payloads; `None` inputs (rejected
    /// scripts) yield `None` outputs.
    pub fn predict_payloads(
        &self,
        payloads: &[Option<&jsdetect_features::FeaturePayload>],
    ) -> Vec<Option<Level1Prediction>> {
        let probs = batch_payload_proba(&self.space, &self.model, payloads, || {
            jsdetect_obs::span(names::SPAN_LEVEL1_PREDICT_BATCH)
        });
        probs
            .into_iter()
            .map(|p| {
                p.map(|p| Level1Prediction { regular: p[0], minified: p[1], obfuscated: p[2] })
            })
            .collect()
    }

    /// The fitted vector space (for inspection).
    pub fn space(&self) -> &VectorSpace {
        &self.space
    }

    /// Named feature importances for one class (0 = regular, 1 = minified,
    /// 2 = obfuscated), most important first. Chained-label inputs are
    /// named `chain:<i>`.
    pub fn feature_importances(&self, class: usize) -> Vec<(String, f64)> {
        named_importances(&self.space, self.model.feature_importances(class))
    }

    /// Restores internal indexes after deserialization and validates the
    /// flattened forest arrays.
    pub fn rebuild_index(&mut self) {
        self.space.rebuild_index();
        self.model.rebuild_index();
    }
}

/// Shared payload-batch inference: vectorizes the `Some` payloads into one
/// columnar dataset, runs the flattened-forest batch path, and scatters
/// the probability rows back to the input positions.
pub(crate) fn batch_payload_proba<S>(
    space: &VectorSpace,
    model: &MultiLabel,
    payloads: &[Option<&jsdetect_features::FeaturePayload>],
    span: impl FnOnce() -> S,
) -> Vec<Option<Vec<f32>>> {
    if payloads.is_empty() {
        return Vec::new();
    }
    let _t = span();
    let present: Vec<usize> =
        payloads.iter().enumerate().filter_map(|(i, p)| p.map(|_| i)).collect();
    let mut data = Dataset::zeros(present.len(), space.dim());
    for (row, &i) in present.iter().enumerate() {
        let p = payloads[i].expect("present index has a payload");
        data.fill_row(row, &space.vectorize_payload(p));
    }
    let probs = model.predict_proba_batch(&data);
    let mut out: Vec<Option<Vec<f32>>> = (0..payloads.len()).map(|_| None).collect();
    for (&i, p) in present.iter().zip(probs) {
        out[i] = Some(p);
    }
    out
}

/// Pairs importances with vector-space dimension names.
pub(crate) fn named_importances(
    space: &VectorSpace,
    importances: Option<Vec<f64>>,
) -> Vec<(String, f64)> {
    let Some(imp) = importances else { return Vec::new() };
    let mut named: Vec<(String, f64)> = imp
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            let name = if i < space.dim() {
                space.dim_name(i)
            } else {
                format!("chain:{}", i - space.dim())
            };
            (name, v)
        })
        .collect();
    named.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    named
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_transform::Technique;

    #[test]
    fn truth_from_techniques() {
        let t = Level1Truth::from_techniques(&[Technique::MinificationSimple]);
        assert!(t.minified && !t.obfuscated && !t.regular);
        let t = Level1Truth::from_techniques(&[Technique::GlobalArray]);
        assert!(!t.minified && t.obfuscated);
        let t = Level1Truth::from_techniques(&[
            Technique::MinificationAdvanced,
            Technique::IdentifierObfuscation,
        ]);
        assert!(t.minified && t.obfuscated && t.is_transformed());
        assert!(Level1Truth::regular().regular);
        assert!(!Level1Truth::regular().is_transformed());
    }

    #[test]
    fn prediction_rule() {
        let p = Level1Prediction { regular: 0.9, minified: 0.1, obfuscated: 0.2 };
        assert!(!p.is_transformed());
        let p = Level1Prediction { regular: 0.4, minified: 0.7, obfuscated: 0.2 };
        assert!(p.is_transformed());
        let p = Level1Prediction { regular: 0.4, minified: 0.3, obfuscated: 0.6 };
        assert!(p.is_transformed());
    }
}

//! A miniature obfuscator.io-style command-line tool built on the
//! transformation passes: reads JavaScript from a file (or uses a built-in
//! demo script), applies the requested techniques, and prints the result.
//!
//! ```sh
//! cargo run --release --example obfuscator_cli -- \
//!     --technique identifier_obfuscation --technique global_array [file.js]
//! ```
//!
//! Available technique names: identifier_obfuscation, string_obfuscation,
//! global_array, no_alphanumeric, dead_code_injection,
//! control_flow_flattening, self_defending, debug_protection,
//! minification_simple, minification_advanced, or `packer` for the Dean
//! Edwards packer.

use jsdetect_suite::transform::{apply, apply_packer, Technique};

const DEMO: &str = r#"
function buildGreeting(name, hour) {
    var prefix;
    if (hour < 12) {
        prefix = 'Good morning';
    } else if (hour < 18) {
        prefix = 'Good afternoon';
    } else {
        prefix = 'Good evening';
    }
    return prefix + ', ' + name + '!';
}
console.log(buildGreeting('world', new Date().getHours()));
"#;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut techniques: Vec<Technique> = Vec::new();
    let mut file: Option<String> = None;
    let mut seed = 42u64;
    let mut packer = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--technique" | "-t" => {
                i += 1;
                let name = argv.get(i).cloned().unwrap_or_default();
                if name == "packer" {
                    packer = true;
                } else {
                    match Technique::ALL.iter().find(|t| t.as_str() == name) {
                        Some(t) => techniques.push(*t),
                        None => {
                            eprintln!("unknown technique: {}", name);
                            eprintln!(
                                "available: {} or packer",
                                Technique::ALL
                                    .iter()
                                    .map(|t| t.as_str())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            );
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--seed" => {
                i += 1;
                seed = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(42);
            }
            other => file = Some(other.to_string()),
        }
        i += 1;
    }

    let src = match &file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {}", path, e);
            std::process::exit(1);
        }),
        None => DEMO.to_string(),
    };
    if techniques.is_empty() && !packer {
        techniques.push(Technique::IdentifierObfuscation);
        techniques.push(Technique::StringObfuscation);
    }

    let result = if packer { apply_packer(&src, seed) } else { apply(&src, &techniques, seed) };
    match result {
        Ok(out) => {
            eprintln!(
                "// applied: {}",
                if packer {
                    "packer".to_string()
                } else {
                    techniques.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(" + ")
                }
            );
            eprintln!("// {} bytes -> {} bytes", src.len(), out.len());
            println!("{}", out);
        }
        Err(e) => {
            eprintln!("transformation failed: {}", e);
            std::process::exit(1);
        }
    }
}

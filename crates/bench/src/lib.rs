//! Benchmark support: shared fixtures for the Criterion benches.

use jsdetect_corpus::RegularJsGenerator;

/// A deterministic medium-sized regular script (~2-4 KB).
pub fn fixture_script() -> String {
    RegularJsGenerator::new(0xBE7C).generate()
}

/// A batch of deterministic regular scripts.
pub fn fixture_corpus(n: usize) -> Vec<String> {
    (0..n).map(|i| RegularJsGenerator::new(0xBE7C + i as u64).generate()).collect()
}

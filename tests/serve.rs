//! Integration tests for the resident daemon's robustness contract:
//!
//! - a full queue answers `overloaded`, it does not hang or buffer;
//! - a poisoned (panicked) worker is replaced and its request answered
//!   `quarantined`;
//! - a SIGTERM-equivalent shutdown drains every accepted request;
//! - the daemon's `accepted / rejected / degraded / drained` accounting
//!   reconciles exactly;
//! - interner exhaustion degrades the *request* (`resource` reject), not
//!   the process;
//! - the full transport stack (HTTP + framed protocol over TCP) routes
//!   through the same admission path.

use jsdetect_suite::detector::{train_pipeline, DetectorConfig, TrainedDetectors};
use jsdetect_suite::serve::{
    read_frame, signal, write_frame, AnalyzeRequest, ChaosConfig, Daemon, ServeConfig,
    TransportConfig,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn detectors() -> Arc<TrainedDetectors> {
    static CELL: OnceLock<Arc<TrainedDetectors>> = OnceLock::new();
    Arc::clone(CELL.get_or_init(|| {
        Arc::new(train_pipeline(32, 4242, &DetectorConfig::fast().with_seed(4242)).detectors)
    }))
}

/// A slow-but-bounded config: one worker with an injected stall on every
/// request, so the queue backs up on demand.
fn congested_config(queue_capacity: usize, delay_ms: u64) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity,
        watchdog_interval_ms: 20,
        chaos: ChaosConfig { delay_every: 1, delay_ms, ..Default::default() },
        ..ServeConfig::default()
    }
}

#[test]
fn full_queue_answers_overloaded_not_hangs() {
    let daemon = Daemon::start(congested_config(2, 200), detectors(), None);
    // One in-flight + two queued fills the system; everything beyond must
    // be refused *immediately*.
    let mut receivers = Vec::new();
    receivers.push(daemon.submit(AnalyzeRequest::new("var a0 = 0;")).expect("within capacity"));
    // Let the lone worker take job 0 off the queue (and hit its injected
    // 200 ms stall) so the next two occupy the whole queue.
    std::thread::sleep(Duration::from_millis(60));
    for i in 1..3 {
        receivers.push(
            daemon
                .submit(AnalyzeRequest::new(format!("var a{i} = {i};")))
                .expect("within capacity"),
        );
    }
    let t0 = std::time::Instant::now();
    let refused = daemon.submit(AnalyzeRequest::new("var late = 1;")).expect_err("queue is full");
    assert!(t0.elapsed() < Duration::from_millis(50), "rejection must not block");
    assert_eq!(refused.status, "overloaded");
    assert_eq!(refused.error_kind, "queue_full");
    // Everything accepted still completes.
    for rx in receivers {
        let resp = rx.recv_timeout(Duration::from_secs(30)).expect("accepted => answered");
        assert_eq!(resp.status, "ok");
    }
    let report = daemon.shutdown();
    assert_eq!(report.stats.accepted, 3);
    assert_eq!(report.stats.responses, 3);
    assert_eq!(report.stats.rejected, 1);
}

#[test]
fn poisoned_worker_is_replaced_and_request_quarantined() {
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        watchdog_interval_ms: 10,
        chaos: ChaosConfig { panic_every: 3, ..Default::default() },
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(cfg, detectors(), None);
    let mut quarantined = 0;
    for i in 0..9 {
        let resp = daemon.call(AnalyzeRequest::new(format!("var q{i} = {i};")));
        assert!(
            resp.status == "ok" || resp.status == "quarantined",
            "every request is answered, got {}",
            resp.status
        );
        if resp.status == "quarantined" {
            quarantined += 1;
        }
        // Give the watchdog room to reseat poisoned workers under this
        // deliberately tiny pool.
        std::thread::sleep(Duration::from_millis(15));
    }
    assert_eq!(quarantined, 3, "every 3rd request hits the injected panic");
    assert_eq!(daemon.chaos().injected_panics(), 3);
    assert_eq!(daemon.workers_alive(), 2, "watchdog reseated every poisoned worker");
    let report = daemon.shutdown();
    assert_eq!(report.stats.accepted, 9);
    assert_eq!(report.stats.responses, 9, "no request lost to a panic");
    assert_eq!(report.stats.quarantined, 3);
    assert!(report.stats.worker_replaced >= 3);
}

#[test]
fn shutdown_drains_every_accepted_request_and_counters_reconcile() {
    let daemon = Arc::new(Daemon::start(congested_config(8, 40), detectors(), None));
    // Fill the queue, then shut down while everything is still pending.
    let mut receivers = Vec::new();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..12 {
        match daemon.submit(AnalyzeRequest::new(format!("var d{i} = {i};"))) {
            Ok(rx) => {
                accepted += 1;
                receivers.push(rx);
            }
            Err(resp) => {
                rejected += 1;
                assert_eq!(resp.status, "overloaded");
            }
        }
    }
    assert!(accepted >= 8, "queue plus in-flight should admit at least capacity");
    // SIGTERM-equivalent: drain (shutdown() is exactly what the signal
    // path invokes after the accept loop observes the flag).
    let report = daemon.shutdown();
    assert_eq!(report.stats.accepted, accepted);
    assert_eq!(report.stats.rejected, rejected);
    assert_eq!(report.stats.responses, accepted, "drain answers every accepted request");
    assert_eq!(
        report.stats.drained,
        report.stats.accepted - report.responded_before_shutdown,
        "drained == accepted − responded-before-shutdown"
    );
    assert!(report.stats.drained > 0, "shutdown raced ahead of a congested queue");
    // Every receiver got its response, even though the daemon is gone.
    for rx in receivers {
        let resp = rx.recv_timeout(Duration::from_secs(5)).expect("drained response");
        assert_eq!(resp.status, "ok");
    }
    // Post-drain admissions are refused, not queued.
    let late = daemon.submit(AnalyzeRequest::new("var z = 0;")).expect_err("draining");
    assert_eq!(late.status, "draining");
    assert!(!report.final_telemetry_jsonl.is_empty(), "final snapshot emitted");
}

#[test]
fn interner_exhaustion_degrades_the_request_not_the_process() {
    // An absurdly large reserve makes the headroom check fail for any
    // real interner state — the admission path must answer `resource`.
    let cfg = ServeConfig { interner_reserve: u32::MAX, ..ServeConfig::default() };
    let daemon = Daemon::start(cfg, detectors(), None);
    let resp = daemon.call(AnalyzeRequest::new("var x = 1;"));
    assert_eq!(resp.status, "resource");
    assert_eq!(resp.error_kind, "interner_exhausted");
    let report = daemon.shutdown();
    assert_eq!(report.stats.accepted, 0);
    assert_eq!(report.stats.rejected, 1);
    // The process (and a sanely-configured daemon) is entirely unharmed.
    let healthy = Daemon::start(ServeConfig::default(), detectors(), None);
    let resp = healthy.call(AnalyzeRequest::new("var y = 2;"));
    assert_eq!(resp.status, "ok");
    healthy.shutdown();
}

fn http_request(addr: &std::net::SocketAddr, req: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(req.as_bytes()).expect("write");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

#[test]
fn transport_speaks_http_and_frames_on_one_socket() {
    static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let daemon = Arc::new(Daemon::start(ServeConfig::default(), detectors(), None));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || {
            jsdetect_suite::serve::serve(daemon, listener, TransportConfig::default(), &FLAG)
        })
    };

    // HTTP: a clean analyze round-trip...
    let body = r#"{"src":"function f(n){return n+1;} f(1);"}"#;
    let resp = http_request(
        &addr,
        &format!(
            "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "got: {resp}");
    assert!(resp.contains(r#""status":"ok""#), "got: {resp}");

    // ... malformed JSON is 400/invalid ...
    let resp = http_request(
        &addr,
        "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nnot json!",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "got: {resp}");
    assert!(resp.contains(r#""status":"invalid""#), "got: {resp}");

    // ... an oversized Content-Length is 413/oversized before any read ...
    let resp = http_request(
        &addr,
        "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "got: {resp}");

    // ... health and metrics answer.
    let health = http_request(&addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(health.contains(r#""state":"serving""#), "got: {health}");
    let metrics = http_request(&addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(metrics.contains("serve_accepted"), "got: {}", &metrics[..metrics.len().min(400)]);

    // Framed protocol on the same port: two frames on one connection.
    let mut stream = TcpStream::connect(addr).expect("connect framed");
    for src in ["var a = 1;", "var b = 2;"] {
        let req = serde_json_request(src);
        write_frame(&mut stream, req.as_bytes()).expect("write frame");
        let frame = read_frame(&mut stream, 1 << 20).expect("read frame").expect("one response");
        let text = String::from_utf8(frame).expect("utf8");
        assert!(text.contains(r#""status":"ok""#), "got: {text}");
    }
    drop(stream);

    // SIGTERM-equivalent via the transport: flip the flag the signal
    // handler would set; the accept loop drains and returns the report.
    FLAG.store(true, std::sync::atomic::Ordering::Release);
    let report = server.join().expect("server thread").expect("serve result");
    assert_eq!(report.stats.accepted, report.stats.responses, "100% response accounting");
    assert!(report.stats.accepted >= 3, "analyze + 2 framed requests were accepted");
}

/// Hand-rolled request JSON (the vendored serde also works, but this keeps
/// the frame bytes visible in the test).
fn serde_json_request(src: &str) -> String {
    format!(r#"{{"src":"{src}"}}"#)
}

#[test]
fn programmatic_sigterm_flag_is_wired() {
    let flag = signal::install();
    signal::request_shutdown();
    assert!(flag.load(std::sync::atomic::Ordering::Acquire));
    assert!(signal::shutdown_requested());
}

//! Control- and data-flow enrichment of the JavaScript AST.
//!
//! This crate reproduces the JSTAP-style graph layer the paper builds on
//! top of Esprima's AST (§III-A): scope-aware identifier resolution,
//! control-flow edges restricted to statement-level nodes (plus
//! `CatchClause`, `SwitchCase`, and `ConditionalExpression`), and def→use
//! data-flow edges between `Identifier` nodes. The paper's two-minute
//! data-flow timeout is mirrored by a deterministic node budget.
//!
//! # Examples
//!
//! ```
//! use jsdetect_parser::parse;
//! use jsdetect_flow::analyze;
//!
//! let prog = parse("var x = 1; if (x) f(x);").unwrap();
//! let graph = analyze(&prog);
//! assert!(graph.dataflow.complete);
//! assert_eq!(graph.dataflow.edges.len(), 2); // x flows to `if (x)` and `f(x)`
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cfg;
mod dataflow;
mod scope;

pub use cfg::{build_cfg, CfEdge, CfEdgeKind, CfNode, ControlFlow};
pub use dataflow::{build_dataflow, DataFlow, DataFlowOptions, DfEdge};
pub use scope::{
    analyze_scopes, classify_def_value, Binding, BindingId, BindingKind, DefValueKind, RefKind,
    Reference, Scope, ScopeId, ScopeKind, ScopeTree,
};

use jsdetect_ast::Program;

/// The fully enriched program graph: scopes + control flow + data flow.
#[derive(Debug, Clone)]
pub struct ProgramGraph {
    /// Scope tree with bindings and references.
    pub scopes: ScopeTree,
    /// Control-flow edges.
    pub control_flow: ControlFlow,
    /// Data-flow (def→use) edges.
    pub dataflow: DataFlow,
}

/// Analyzes a program with default options.
pub fn analyze(program: &Program) -> ProgramGraph {
    analyze_with(program, &DataFlowOptions::default())
}

/// Analyzes a program with explicit data-flow budgets.
pub fn analyze_with(program: &Program, opts: &DataFlowOptions) -> ProgramGraph {
    let scopes = analyze_scopes(program);
    let control_flow = build_cfg(program);
    let dataflow = build_dataflow(&scopes, opts);
    ProgramGraph { scopes, control_flow, dataflow }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    #[test]
    fn analyze_with_zero_budget_is_partial() {
        let prog = parse("var x = 1; f(x);").unwrap();
        let g = analyze_with(&prog, &DataFlowOptions { max_refs: 0, max_pairs_per_binding: 1 });
        assert!(!g.dataflow.complete);
        // Control flow and scopes are still available (the paper's
        // two-minute-timeout fallback keeps the CF-enhanced AST).
        assert!(!g.scopes.bindings().is_empty());
    }

    #[test]
    fn program_graph_is_cloneable_and_debuggable() {
        let prog = parse("if (a) { b(); } else { c(); }").unwrap();
        let g = analyze(&prog);
        let g2 = g.clone();
        assert_eq!(
            format!("{:?}", g.control_flow.node_count),
            format!("{:?}", g2.control_flow.node_count)
        );
    }
}

//! `jsdetect-normalize`: a static deobfuscation pass suite over the shared
//! AST.
//!
//! The detector reads features off source *as shipped*; this crate attacks
//! the same corpus from the inverse direction (compiler-style
//! simplification, cf. "Optimizing Away JavaScript Obfuscation") and undoes
//! the mechanical layers our own `transform` crate models: constant
//! folding with single-assignment propagation, string-concat collapsing,
//! global-string-array inlining, dead-branch elimination, and comma
//! sequence unflattening.
//!
//! Passes are driven to a fixpoint: each round runs every enabled pass
//! once, and rounds repeat until no pass rewrites anything or a bound
//! trips. Three bounds keep hostile input from looping the normalizer:
//!
//! - a **round cap** ([`NormalizeOptions::max_rounds`]),
//! - a **rewrite fuel** shared by all passes
//!   ([`NormalizeOptions::max_rewrites`]), and
//! - the usual [`jsdetect_guard::Budget`] wall-clock deadline from
//!   [`NormalizeOptions::limits`].
//!
//! Every pass runs inside [`jsdetect_guard::isolate`], so a panic in one
//! pass rolls the program back to the last round snapshot and degrades the
//! outcome instead of tearing down the caller. Rewrites preserve the spans
//! of the nodes they replace, so downstream diagnostics still point into
//! the original source.
//!
//! # Examples
//!
//! ```
//! use jsdetect_normalize::{normalize_program, NormalizeOptions};
//! # use jsdetect_ast::*;
//! # fn parse_fixture() -> Program { Program { body: vec![], span: Span::DUMMY } }
//!
//! let mut program = parse_fixture();
//! let report = normalize_program(&mut program, &NormalizeOptions::default());
//! assert_eq!(report.outcome, jsdetect_guard::OutcomeKind::Ok);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod array_inline;
mod concat;
mod constants;
mod dead_branch;
mod eval;
mod sequence;

use jsdetect_ast::Program;
use jsdetect_guard::{isolate, AnalysisError, Budget, Limits, OutcomeKind};
use jsdetect_obs::names;
use std::cell::{Cell, RefCell};

/// The individual passes, in their canonical execution order.
///
/// Order matters within a round: propagation and folding
/// ([`PassKind::Constants`]) expose literals that concat collapsing and
/// dead-branch elimination consume, and array inlining produces string
/// literals the next round's constant pass can propagate further.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Constant folding plus single-assignment constant propagation.
    Constants,
    /// String concatenation / decoder-chain collapsing.
    StringConcat,
    /// Global string array inlining (undoes `transform::global_array`).
    ArrayInline,
    /// Dead-branch elimination on constant conditions.
    DeadBranch,
    /// Comma-sequence unflattening in statement position.
    Sequence,
}

impl PassKind {
    /// All passes in canonical order.
    pub const ALL: [PassKind; 5] = [
        PassKind::Constants,
        PassKind::StringConcat,
        PassKind::ArrayInline,
        PassKind::DeadBranch,
        PassKind::Sequence,
    ];

    /// Stable machine name (used by `--passes` on the CLI).
    pub fn as_str(self) -> &'static str {
        match self {
            PassKind::Constants => "constants",
            PassKind::StringConcat => "string-concat",
            PassKind::ArrayInline => "array-inline",
            PassKind::DeadBranch => "dead-branch",
            PassKind::Sequence => "sequence",
        }
    }

    /// Parses a machine name back into a pass kind.
    pub fn from_name(name: &str) -> Option<PassKind> {
        PassKind::ALL.into_iter().find(|p| p.as_str() == name)
    }

    /// The shared static pass instance.
    pub fn pass(self) -> &'static dyn Pass {
        match self {
            PassKind::Constants => &constants::ConstantsPass,
            PassKind::StringConcat => &concat::StringConcatPass,
            PassKind::ArrayInline => &array_inline::ArrayInlinePass,
            PassKind::DeadBranch => &dead_branch::DeadBranchPass,
            PassKind::Sequence => &sequence::SequencePass,
        }
    }
}

/// One rewrite pass over the program.
///
/// A pass mutates the program in place and returns how many rewrites it
/// performed. Passes must be *reducing*: a rewrite may enable another pass
/// but must never reintroduce the shape it removed, so the fixpoint loop
/// terminates. Each rewrite is paid for through [`PassCx::spend`], which
/// enforces the shared rewrite fuel.
pub trait Pass: Sync {
    /// Short stable name (also the `isolate` stage label).
    fn name(&self) -> &'static str;
    /// Telemetry counter receiving this pass's rewrite count.
    fn counter(&self) -> &'static str;
    /// Runs the pass once; returns the number of rewrites performed.
    fn run(&self, program: &mut Program, cx: &PassCx) -> u64;
}

/// Shared per-run context threaded through every pass: the guard budget
/// (deadline) and the rewrite fuel.
pub struct PassCx<'a> {
    budget: &'a Budget,
    fuel: Cell<u64>,
    fuel_exhausted: Cell<bool>,
    error: RefCell<Option<AnalysisError>>,
}

impl PassCx<'_> {
    /// Pays for one rewrite. Returns `false` once the fuel is exhausted or
    /// a budget violation occurred; passes must then stop rewriting (they
    /// may keep traversing — traversal itself is bounded by the AST).
    pub fn spend(&self) -> bool {
        if self.error.borrow().is_some() {
            return false;
        }
        let fuel = self.fuel.get();
        if fuel == 0 {
            self.fuel_exhausted.set(true);
            return false;
        }
        self.fuel.set(fuel - 1);
        true
    }

    /// Ticks the guard deadline clock; call at traversal loop heads. The
    /// violation (if any) is latched and surfaces in the report.
    pub fn tick(&self, cost: u64) {
        if let Err(e) = self.budget.tick(cost) {
            let mut slot = self.error.borrow_mut();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }

    /// Whether the run is still healthy (no fuel exhaustion, no violation).
    pub fn healthy(&self) -> bool {
        !self.fuel_exhausted.get() && self.error.borrow().is_none()
    }
}

/// Options controlling a normalization run.
#[derive(Debug, Clone)]
pub struct NormalizeOptions {
    /// Passes to run, in order, each round.
    pub passes: Vec<PassKind>,
    /// Maximum fixpoint rounds before giving up (not a degradation: the
    /// program is simply normalized as far as the cap allows).
    pub max_rounds: u32,
    /// Total rewrite fuel shared by all passes across all rounds; running
    /// out degrades the outcome.
    pub max_rewrites: u64,
    /// Guard limits; only the deadline axis is charged by the normalizer
    /// itself (structural axes were already enforced at parse time).
    pub limits: Limits,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            passes: PassKind::ALL.to_vec(),
            max_rounds: 8,
            max_rewrites: 100_000,
            limits: Limits::trusted(),
        }
    }
}

impl NormalizeOptions {
    /// Options for untrusted input: wild guard limits, same pass suite.
    pub fn wild() -> Self {
        NormalizeOptions { limits: Limits::wild(), ..NormalizeOptions::default() }
    }
}

/// What a normalization run did.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizeReport {
    /// Fixpoint rounds executed (the last round performed zero rewrites
    /// unless a bound tripped first).
    pub rounds: u32,
    /// Per-pass rewrite totals, in pass order.
    pub rewrites: Vec<(&'static str, u64)>,
    /// Whether the shared rewrite fuel ran out.
    pub fuel_exhausted: bool,
    /// `Ok` for a clean fixpoint (or round-cap) run, `Degraded` when fuel,
    /// deadline, or a pass panic cut the run short. Never `Rejected`: the
    /// input program was already accepted by the parser.
    pub outcome: OutcomeKind,
    /// The violation or panic that degraded the run, if any.
    pub error: Option<AnalysisError>,
}

impl NormalizeReport {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.rewrites.iter().map(|(_, n)| n).sum()
    }

    /// Rewrites performed by one pass (0 if the pass did not run).
    pub fn rewrites_for(&self, pass: PassKind) -> u64 {
        self.rewrites.iter().find(|(name, _)| *name == pass.as_str()).map(|(_, n)| *n).unwrap_or(0)
    }
}

/// Drives the enabled passes to a fixpoint over `program`, in place.
///
/// On a degraded outcome the program still holds a *valid* AST: a budget
/// violation keeps the partial rewrite (every individual rewrite is
/// atomic), while a pass panic rolls back to the snapshot taken at the
/// start of the failing round.
pub fn normalize_program(program: &mut Program, opts: &NormalizeOptions) -> NormalizeReport {
    let _span = jsdetect_obs::span(names::SPAN_NORMALIZE);
    let budget = Budget::new(&opts.limits);
    let cx = PassCx {
        budget: &budget,
        fuel: Cell::new(opts.max_rewrites),
        fuel_exhausted: Cell::new(false),
        error: RefCell::new(None),
    };
    let mut report = NormalizeReport {
        rounds: 0,
        rewrites: opts.passes.iter().map(|p| (p.as_str(), 0u64)).collect(),
        fuel_exhausted: false,
        outcome: OutcomeKind::Ok,
        error: None,
    };

    'rounds: for _ in 0..opts.max_rounds {
        report.rounds += 1;
        let snapshot = program.clone();
        let mut round_rewrites = 0u64;
        for (i, kind) in opts.passes.iter().enumerate() {
            let pass = kind.pass();
            match isolate(pass.name(), || pass.run(program, &cx)) {
                Ok(n) => {
                    jsdetect_obs::counter_add(pass.counter(), n);
                    report.rewrites[i].1 += n;
                    round_rewrites += n;
                }
                Err(e) => {
                    // A panicking pass may have left the program half
                    // rewritten; roll back to the round snapshot.
                    *program = snapshot;
                    report.outcome = OutcomeKind::Degraded;
                    report.error = Some(e);
                    break 'rounds;
                }
            }
            if !cx.healthy() {
                break 'rounds;
            }
        }
        if round_rewrites == 0 {
            break;
        }
    }

    report.fuel_exhausted = cx.fuel_exhausted.get();
    if report.fuel_exhausted {
        jsdetect_obs::counter_add(names::CTR_NORMALIZE_FUEL_EXHAUSTED, 1);
        report.outcome = OutcomeKind::Degraded;
    }
    if let Some(e) = cx.error.borrow_mut().take() {
        report.outcome = OutcomeKind::Degraded;
        report.error.get_or_insert(e);
    }
    jsdetect_obs::counter_add(names::CTR_NORMALIZE_FIXPOINT_ROUNDS, u64::from(report.rounds));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn norm(src: &str) -> (String, NormalizeReport) {
        let mut p = parse(src).unwrap();
        let report = normalize_program(&mut p, &NormalizeOptions::default());
        (to_minified(&p), report)
    }

    #[test]
    fn pass_names_roundtrip() {
        for p in PassKind::ALL {
            assert_eq!(PassKind::from_name(p.as_str()), Some(p));
            assert_eq!(p.pass().name(), p.as_str());
            assert!(p.pass().counter().starts_with("normalize/"));
        }
        assert_eq!(PassKind::from_name("nope"), None);
    }

    #[test]
    fn trivial_program_reaches_fixpoint_in_one_round() {
        let (out, report) = norm("var x = f(1);");
        assert_eq!(out, "var x=f(1);");
        assert_eq!(report.rounds, 1);
        assert_eq!(report.total_rewrites(), 0);
        assert_eq!(report.outcome, OutcomeKind::Ok);
    }

    #[test]
    fn passes_cascade_across_rounds() {
        // Propagation feeds folding feeds dead-branch elimination.
        let src = "var k = 'a'; if (k === 'b') { evil(); } else { good(); }";
        let (out, report) = norm(src);
        assert!(!out.contains("evil"), "{}", out);
        assert!(out.contains("good()"), "{}", out);
        assert_eq!(report.outcome, OutcomeKind::Ok);
        assert!(report.rounds >= 2, "cascade requires at least two rounds");
    }

    #[test]
    fn fuel_exhaustion_degrades_instead_of_looping() {
        let src = "var a = 1 + 2; var b = 3 + 4; var c = 5 + 6; var d = 'x' + 'y';";
        let mut p = parse(src).unwrap();
        let opts = NormalizeOptions { max_rewrites: 2, ..NormalizeOptions::default() };
        let report = normalize_program(&mut p, &opts);
        assert!(report.fuel_exhausted);
        assert_eq!(report.outcome, OutcomeKind::Degraded);
        assert!(report.total_rewrites() <= 2);
        // The partially rewritten program still prints and reparses.
        let printed = to_minified(&p);
        assert!(parse(&printed).is_ok(), "{}", printed);
    }

    #[test]
    fn report_counts_match_selected_passes() {
        let src = "x = (1, 2, f());";
        let mut p = parse(src).unwrap();
        let opts =
            NormalizeOptions { passes: vec![PassKind::Sequence], ..NormalizeOptions::default() };
        let report = normalize_program(&mut p, &opts);
        assert_eq!(report.rewrites.len(), 1);
        assert_eq!(report.rewrites_for(PassKind::Constants), 0);
    }
}

//! CART decision trees with Gini impurity (binary classification).
//!
//! Trees grow over a columnar [`Dataset`] plus a `&[u32]` row-index set
//! (bootstrap resampling is index resampling — no feature row is ever
//! cloned). Exact split search sweeps each candidate column in value
//! order, obtained adaptively: per-column order arrays sorted once per
//! tree and stably partitioned down the recursion (classic
//! presorted-CART) when most features are examined per split, or cheap
//! per-node packed-integer sorts of just the sampled features in the
//! subsampled √d regime. Histogram-binned search is available for large
//! corpora. Fitted trees are stored in a flattened struct-of-arrays node
//! layout traversed without pointer chasing.

use crate::dataset::{Dataset, DatasetError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features.
    All,
    /// `sqrt(n_features)` (the random-forest default).
    Sqrt,
    /// A fixed number.
    Fixed(usize),
}

impl MaxFeatures {
    fn resolve(self, n_features: usize) -> usize {
        match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Fixed(k) => k.min(n_features),
        }
        .max(1)
    }
}

/// Split-search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SplitMode {
    /// Exact search over value-sorted column views: every distinct
    /// adjacent value pair is a candidate threshold (bit-identical to the
    /// row-major implementation this replaced).
    #[default]
    Exact,
    /// Histogram-binned search: node values are bucketed into `bins`
    /// equal-width bins per candidate feature and only bin edges are
    /// candidate thresholds. Approximate, but O(n) per feature with no
    /// presorting — intended for very large corpora.
    Histogram {
        /// Number of value bins per feature (≥ 2).
        bins: u16,
    },
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Split-search strategy. Skipped by serde (older serialized params
    /// lack the field; it defaults to [`SplitMode::Exact`] on load).
    #[serde(skip)]
    pub split_mode: SplitMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            split_mode: SplitMode::Exact,
        }
    }
}

/// Leaf sentinel in the flattened `feature` array.
const LEAF: u16 = u16::MAX;

/// Flattened struct-of-arrays node storage shared by trees and forests.
///
/// Nodes are laid out in pre-order: the left child of split `i` is always
/// `i + 1`, so only the right child needs storing. `feature[i]` is the
/// split feature (or [`LEAF`]), `threshold[i]` the split threshold — or,
/// for leaves, the positive-class probability held inline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FlatNodes {
    pub(crate) feature: Vec<u16>,
    pub(crate) threshold: Vec<f32>,
    pub(crate) children: Vec<u32>,
}

impl FlatNodes {
    pub(crate) fn new() -> Self {
        FlatNodes { feature: Vec::new(), threshold: Vec::new(), children: Vec::new() }
    }

    pub(crate) fn len(&self) -> usize {
        self.feature.len()
    }

    fn push_leaf(&mut self, prob: f32) -> u32 {
        self.feature.push(LEAF);
        self.threshold.push(prob);
        self.children.push(0);
        (self.feature.len() - 1) as u32
    }

    fn set_split(&mut self, i: u32, feature: u16, threshold: f32, right: u32) {
        let i = i as usize;
        self.feature[i] = feature;
        self.threshold[i] = threshold;
        self.children[i] = right;
    }

    /// Appends another node block, returning the id offset its nodes got.
    pub(crate) fn append(&mut self, other: &FlatNodes) -> u32 {
        let offset = self.len() as u32;
        self.feature.extend_from_slice(&other.feature);
        self.threshold.extend_from_slice(&other.threshold);
        self.children.extend(other.children.iter().map(|&c| {
            if c == 0 {
                0 // leaf placeholder; never followed
            } else {
                c + offset
            }
        }));
        offset
    }

    /// Walks the tree rooted at `root` for one row-major sample.
    #[inline]
    pub(crate) fn predict_row(&self, root: u32, row: &[f32]) -> f32 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            i = if row[f as usize] <= self.threshold[i] {
                i + 1
            } else {
                self.children[i] as usize
            };
        }
    }

    /// Walks the tree rooted at `root` for row `r` of a columnar dataset.
    #[inline]
    pub(crate) fn predict_dataset_row(&self, root: u32, data: &Dataset, r: usize) -> f32 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            i = if data.get(r, f as usize) <= self.threshold[i] {
                i + 1
            } else {
                self.children[i] as usize
            };
        }
    }

    pub(crate) fn accumulate_split_counts(&self, counts: &mut [u32]) {
        for &f in &self.feature {
            if f != LEAF {
                if let Some(c) = counts.get_mut(f as usize) {
                    *c += 1;
                }
            }
        }
    }

    pub(crate) fn depth_from(&self, i: u32) -> usize {
        let i = i as usize;
        if self.feature[i] == LEAF {
            0
        } else {
            1 + self.depth_from(i as u32 + 1).max(self.depth_from(self.children[i]))
        }
    }

    /// Bounds-checks child and feature ids after deserialization; returns
    /// the first violation as a message.
    pub(crate) fn check_invariants(&self, n_features_upper: usize) -> Result<(), String> {
        let n = self.len();
        if self.threshold.len() != n || self.children.len() != n {
            return Err(format!(
                "flat node arrays disagree: {} features, {} thresholds, {} children",
                n,
                self.threshold.len(),
                self.children.len()
            ));
        }
        for i in 0..n {
            if self.feature[i] == LEAF {
                continue;
            }
            if (self.feature[i] as usize) >= n_features_upper {
                return Err(format!(
                    "node {} splits on out-of-range feature {}",
                    i, self.feature[i]
                ));
            }
            if i + 1 >= n || (self.children[i] as usize) >= n {
                return Err(format!("node {} has out-of-range children", i));
            }
        }
        Ok(())
    }
}

/// A fitted binary decision tree; [`DecisionTree::predict_proba`] returns
/// the positive-class probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: FlatNodes,
}

impl DecisionTree {
    /// Fits a tree on row-major samples (convenience wrapper that builds a
    /// columnar [`Dataset`] once and delegates to
    /// [`DecisionTree::fit_dataset`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, ragged, or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &TreeParams, rng: &mut StdRng) -> Self {
        let data = match Dataset::from_rows(x) {
            Ok(d) => d,
            Err(DatasetError::Empty) => panic!("cannot fit a tree on an empty dataset"),
            Err(e) => panic!("invalid training matrix: {}", e),
        };
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        Self::fit_dataset(&data, &idx, y, params, rng)
    }

    /// Fits a tree over the row multiset `idx` of a columnar dataset.
    /// `y[r]` labels dataset row `r`; `idx` may repeat rows (bootstrap).
    /// `rng` drives the per-split feature subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty, `y.len() != data.n_rows()`, or the
    /// feature count exceeds `u16::MAX - 1`.
    pub fn fit_dataset(
        data: &Dataset,
        idx: &[u32],
        y: &[bool],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        Self::fit_dataset_with_ranks(data, idx, y, params, rng, None)
    }

    /// [`DecisionTree::fit_dataset`] with optional forest-shared
    /// [`ValueRanks`]; forests pass them so nodes counting-sort
    /// low-cardinality columns instead of comparison-sorting them.
    pub(crate) fn fit_dataset_with_ranks(
        data: &Dataset,
        idx: &[u32],
        y: &[bool],
        params: &TreeParams,
        rng: &mut StdRng,
        ranks: Option<&ValueRanks>,
    ) -> Self {
        assert!(!idx.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(y.len(), data.n_rows(), "feature/label length mismatch");
        assert!(data.n_cols() < LEAF as usize, "feature count exceeds the u16 node layout");
        let n = idx.len();
        let n_features = data.n_cols();

        // Presorted order arrays cost one sort per column per tree plus a
        // stable partition of every column at every split — profitable
        // only when most columns are actually examined per node
        // (MaxFeatures::All and friends). In the subsampled √d regime,
        // sorting just the k sampled features at each node (packed-u64
        // sorts over contiguous column gathers) is strictly less work, so
        // Exact mode picks whichever costs less. All variants scan the
        // same candidate thresholds and are bit-identical.
        let use_presort = matches!(params.split_mode, SplitMode::Exact)
            && presort_profitable(params.max_features.resolve(n_features), n, n_features);
        let order = if use_presort { presort_columns(data, idx) } else { Vec::new() };
        let ranks = if use_presort { None } else { ranks };
        let n_hist = ranks.map_or(0, |r| r.max_distinct);
        let mut grower = Grower {
            data,
            y,
            params,
            rng,
            n_features,
            use_presort,
            idx: idx.to_vec(),
            order,
            mask: vec![false; data.n_rows()],
            scratch: Vec::with_capacity(n),
            feat_buf: Vec::with_capacity(n_features),
            keyed: if use_presort { Vec::new() } else { Vec::with_capacity(n) },
            ranks,
            hist: vec![0; n_hist],
            pos_hist: vec![0; n_hist],
            rank_buf: if ranks.is_some() { Vec::with_capacity(n) } else { Vec::new() },
            regime_cols: [0; 5],
        };
        let mut nodes = FlatNodes::new();
        grower.grow(&mut nodes, 0, n, 0);
        for (name, &c) in REGIME_COUNTERS.iter().zip(&grower.regime_cols) {
            jsdetect_obs::counter_add(name, c);
        }
        DecisionTree { nodes }
    }

    /// Probability that `row` belongs to the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        self.nodes.predict_row(0, row)
    }

    /// Positive-class probability for every row of a columnar dataset.
    pub fn predict_proba_batch(&self, data: &Dataset) -> Vec<f32> {
        (0..data.n_rows()).map(|r| self.nodes.predict_dataset_row(0, data, r)).collect()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates the number of split nodes per feature into `counts`
    /// (features beyond `counts.len()` are ignored).
    pub fn accumulate_split_counts(&self, counts: &mut [u32]) {
        self.nodes.accumulate_split_counts(counts);
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        if self.nodes.len() == 0 {
            0
        } else {
            self.nodes.depth_from(0)
        }
    }

    pub(crate) fn nodes(&self) -> &FlatNodes {
        &self.nodes
    }
}

/// Monotonic total-order key for an f32 (sign-flip trick): `a <= b` for
/// non-NaN floats iff `sort_key(a) <= sort_key(b)`, with `-0.0` ordered
/// just below `+0.0` (harmless: the split sweep compares values with `==`,
/// which treats them as the tie they are).
#[inline]
fn sort_key(v: f32) -> u32 {
    let b = v.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Whether maintained presorted order arrays beat per-node sorts: the
/// per-node alternative costs ~`k · log2(n)` work units per row per
/// split level, the presort alternative `d` (one partition pass over
/// every column).
pub(crate) fn presort_profitable(k: usize, n: usize, d: usize) -> bool {
    k * (usize::BITS - n.leading_zeros()).max(1) as usize >= d
}

/// Whether a forest should build shared [`ValueRanks`] for this matrix:
/// only useful in the per-node-sort regime, where nodes can counting-sort
/// low-cardinality columns instead of comparison-sorting them.
pub(crate) fn wants_value_ranks(params: &TreeParams, n: usize, d: usize) -> bool {
    matches!(params.split_mode, SplitMode::Exact)
        && !presort_profitable(params.max_features.resolve(d), n, d)
}

/// Per-column distinct-value tables: for every column, its sorted distinct
/// values and each row's rank among them. Independent of any bootstrap
/// index set, so a forest builds this once and shares it read-only across
/// all trees and threads; a node then derives a column's value-ordered
/// view by counting over ranks (O(rows + distinct)) instead of sorting
/// whenever the column's cardinality is small relative to the node.
pub(crate) struct ValueRanks {
    /// `ranks[f * n_rows + r]`: rank of row `r`'s value in column `f`.
    ranks: Vec<u16>,
    /// Flattened per-column sorted distinct values.
    values: Vec<f32>,
    /// Column `f`'s distinct values live at `offsets[f]..offsets[f + 1]`.
    offsets: Vec<u32>,
    /// Largest per-column distinct count (sizes the counting buffers).
    max_distinct: usize,
}

impl ValueRanks {
    /// Builds the tables; `None` when a rank could overflow `u16`.
    pub(crate) fn build(data: &Dataset) -> Option<ValueRanks> {
        let n = data.n_rows();
        if n > u16::MAX as usize {
            return None;
        }
        let d = data.n_cols();
        let mut ranks = vec![0u16; d * n];
        let mut values = Vec::new();
        let mut offsets = Vec::with_capacity(d + 1);
        offsets.push(0u32);
        let mut max_distinct = 0usize;
        let mut keyed: Vec<u64> = Vec::with_capacity(n);
        for f in 0..d {
            let col = data.column(f);
            keyed.clear();
            keyed.extend(
                col.iter().enumerate().map(|(r, &v)| ((sort_key(v) as u64) << 32) | r as u64),
            );
            keyed.sort_unstable();
            // Assign ranks by f32 equality (merging -0.0 with +0.0, whose
            // sort keys differ) so equal values never form a boundary.
            let mut prev: Option<f32> = None;
            for &e in &keyed {
                let v = decode_key((e >> 32) as u32);
                if prev != Some(v) {
                    values.push(v);
                    prev = Some(v);
                }
                ranks[f * n + e as u32 as usize] = (values.len() - 1 - offsets[f] as usize) as u16;
            }
            max_distinct = max_distinct.max(values.len() - offsets[f] as usize);
            offsets.push(values.len() as u32);
        }
        Some(ValueRanks { ranks, values, offsets, max_distinct })
    }

    /// Column `f`'s `(sorted distinct values, per-row ranks)`.
    fn column(&self, f: usize, n_rows: usize) -> (&[f32], &[u16]) {
        let vals = &self.values[self.offsets[f] as usize..self.offsets[f + 1] as usize];
        (vals, &self.ranks[f * n_rows..(f + 1) * n_rows])
    }
}

/// Sorts each feature column's view of the sample multiset once per tree:
/// `order[f * n + j]` is the dataset row holding the `j`-th smallest value
/// of feature `f` among `idx`. Keys are packed into one `u64` so the sort
/// is branch-cheap and allocation-free per column.
fn presort_columns(data: &Dataset, idx: &[u32]) -> Vec<u32> {
    let n = idx.len();
    let d = data.n_cols();
    let mut order = vec![0u32; d * n];
    let mut keyed: Vec<u64> = Vec::with_capacity(n);
    for f in 0..d {
        let col = data.column(f);
        keyed.clear();
        keyed.extend(idx.iter().map(|&r| ((sort_key(col[r as usize]) as u64) << 32) | r as u64));
        keyed.sort_unstable();
        for (j, k) in keyed.iter().enumerate() {
            order[f * n + j] = *k as u32;
        }
    }
    order
}

/// Inverse of [`sort_key`]: recovers the exact f32 a key was built from.
#[inline]
fn decode_key(k: u32) -> f32 {
    if k & 0x8000_0000 != 0 {
        f32::from_bits(k ^ 0x8000_0000)
    } else {
        f32::from_bits(!k)
    }
}

/// Sweeps packed `(sort_key << 32) | row` entries in sorted order,
/// decoding values straight from the keys (no column reads).
fn sweep_keyed(
    keyed: &[u64],
    y: &[bool],
    f: u16,
    n: f64,
    total_pos: f64,
    best: &mut Option<(u16, f32, f64)>,
) {
    let mut left_n = 0f64;
    let mut left_pos = 0f64;
    for w in 0..keyed.len() - 1 {
        let e = keyed[w];
        left_n += 1.0;
        if y[e as u32 as usize] {
            left_pos += 1.0;
        }
        let v = decode_key((e >> 32) as u32);
        let v_next = decode_key((keyed[w + 1] >> 32) as u32);
        if v == v_next {
            continue;
        }
        let right_n = n - left_n;
        let right_pos = total_pos - left_pos;
        let weighted = (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / n;
        if best.is_none_or(|(_, _, b)| weighted < b) {
            *best = Some((f, midpoint(v, v_next), weighted));
        }
    }
}

/// Sweeps sorted packed `(rank << 1) | label` entries; ranks merge equal
/// values, so the integer rank comparison is exactly the `v != v_next`
/// boundary predicate, and values are only looked up at boundaries.
fn sweep_ranked(
    seg: &[u32],
    vals: &[f32],
    f: u16,
    n: f64,
    total_pos: f64,
    best: &mut Option<(u16, f32, f64)>,
) {
    let mut left_n = 0f64;
    let mut left_pos = 0f64;
    for w in 0..seg.len() - 1 {
        let e = seg[w];
        left_n += 1.0;
        left_pos += (e & 1) as f64;
        let rk = e >> 1;
        let rk_next = seg[w + 1] >> 1;
        if rk == rk_next {
            continue;
        }
        let right_n = n - left_n;
        let right_pos = total_pos - left_pos;
        let weighted = (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / n;
        if best.is_none_or(|(_, _, b)| weighted < b) {
            *best = Some((f, midpoint(vals[rk as usize], vals[rk_next as usize]), weighted));
        }
    }
}

/// Sweeps a column's per-rank `(count, positives)` histogram in ascending
/// value order. A boundary is evaluated between consecutive *occupied*
/// ranks, with the left sums covering everything at or below the lower
/// value — exactly the states the sorted-multiset sweep evaluates, with
/// the same integer-valued f64 sums.
fn sweep_hist(
    vals: &[f32],
    hist: &[u32],
    pos_hist: &[u32],
    f: u16,
    n: f64,
    total_pos: f64,
    best: &mut Option<(u16, f32, f64)>,
) {
    let mut left_n = 0f64;
    let mut left_pos = 0f64;
    let mut prev: Option<f32> = None;
    for rk in 0..vals.len() {
        let c = hist[rk];
        if c == 0 {
            continue;
        }
        let v = vals[rk];
        if let Some(pv) = prev {
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let weighted =
                (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / n;
            if best.is_none_or(|(_, _, b)| weighted < b) {
                *best = Some((f, midpoint(pv, v), weighted));
            }
        }
        left_n += c as f64;
        left_pos += pos_hist[rk] as f64;
        prev = Some(v);
    }
}

/// Sweeps one feature's rows in value order, proposing a candidate
/// threshold between every distinct adjacent value pair and keeping the
/// lowest weighted Gini in `best`.
fn sweep_sorted(
    col: &[f32],
    y: &[bool],
    seg: &[u32],
    f: u16,
    n: f64,
    total_pos: f64,
    best: &mut Option<(u16, f32, f64)>,
) {
    let mut left_n = 0f64;
    let mut left_pos = 0f64;
    for w in 0..seg.len() - 1 {
        let r = seg[w] as usize;
        left_n += 1.0;
        if y[r] {
            left_pos += 1.0;
        }
        let v = col[r];
        let v_next = col[seg[w + 1] as usize];
        if v == v_next {
            continue;
        }
        let right_n = n - left_n;
        let right_pos = total_pos - left_pos;
        let weighted = (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / n;
        if best.is_none_or(|(_, _, b)| weighted < b) {
            *best = Some((f, midpoint(v, v_next), weighted));
        }
    }
}

/// Stable in-place partition of `seg` by `mask[row]` (left = `true`),
/// using `scratch` as the spill buffer. Returns the left-side size.
fn stable_partition(seg: &mut [u32], mask: &[bool], scratch: &mut Vec<u32>) -> usize {
    scratch.clear();
    let mut w = 0;
    for j in 0..seg.len() {
        let r = seg[j];
        if mask[r as usize] {
            seg[w] = r;
            w += 1;
        } else {
            scratch.push(r);
        }
    }
    seg[w..].copy_from_slice(scratch);
    w
}

struct Grower<'a> {
    data: &'a Dataset,
    y: &'a [bool],
    params: &'a TreeParams,
    rng: &'a mut StdRng,
    n_features: usize,
    /// Exact mode flavour: `true` maintains presorted order arrays down
    /// the recursion, `false` sorts only the sampled features per node.
    use_presort: bool,
    /// The row multiset, partitioned in place down the recursion.
    idx: Vec<u32>,
    /// Presort flavour only: per-feature presorted views of `idx`
    /// (column-major, `n_features × idx.len()`), partitioned in lockstep
    /// with `idx`. Empty otherwise.
    order: Vec<u32>,
    /// Per-dataset-row side mask for the current split.
    mask: Vec<bool>,
    scratch: Vec<u32>,
    feat_buf: Vec<u16>,
    /// Per-node sort flavour: reusable packed `(sort_key << 32) | row`
    /// buffer.
    keyed: Vec<u64>,
    /// Forest-shared per-column distinct-value tables; when a column's
    /// cardinality is small relative to the node, its value-ordered view
    /// is derived by counting over ranks instead of sorting.
    ranks: Option<&'a ValueRanks>,
    /// Counting buffers (sized `max_distinct`): per-rank row count and
    /// positive-label count for the current node.
    hist: Vec<u32>,
    pos_hist: Vec<u32>,
    /// Reusable packed `(rank << 1) | label` sort buffer for
    /// high-cardinality columns when ranks are available.
    rank_buf: Vec<u32>,
    /// Column-sweep counts per split regime, indexed like
    /// [`REGIME_COUNTERS`]; accumulated locally (the hot loop never takes
    /// the telemetry lock) and flushed once per tree.
    regime_cols: [u64; 5],
}

/// Telemetry counter names for the five split regimes, index-aligned with
/// `Grower::regime_cols`: presorted order arrays, counting-sort over value
/// ranks, rank-u32 per-node sort, key-u64 per-node sort, histogram bins.
const REGIME_COUNTERS: [&str; 5] = [
    jsdetect_obs::names::CTR_SPLIT_PRESORT_COLS,
    jsdetect_obs::names::CTR_SPLIT_COUNTING_COLS,
    jsdetect_obs::names::CTR_SPLIT_RANKED_COLS,
    jsdetect_obs::names::CTR_SPLIT_KEYED_COLS,
    jsdetect_obs::names::CTR_SPLIT_HIST_COLS,
];

impl Grower<'_> {
    /// Grows the subtree over `idx[lo..hi]`; returns the node id.
    fn grow(&mut self, nodes: &mut FlatNodes, lo: usize, hi: usize, depth: usize) -> u32 {
        let n_node = hi - lo;
        let positives = self.idx[lo..hi].iter().filter(|&&r| self.y[r as usize]).count();
        let prob = positives as f32 / n_node as f32;

        let perfect = positives == 0 || positives == n_node;
        if perfect || depth >= self.params.max_depth || n_node < self.params.min_samples_split {
            return nodes.push_leaf(prob);
        }

        let split = match self.params.split_mode {
            SplitMode::Exact => self.best_split_exact(lo, hi, positives as f64),
            SplitMode::Histogram { bins } => {
                self.best_split_hist(lo, hi, positives as f64, bins.max(2) as usize)
            }
        };
        match split {
            Some((feature, threshold)) => {
                let left_n = self.partition(lo, hi, feature, threshold);
                if left_n < self.params.min_samples_leaf
                    || n_node - left_n < self.params.min_samples_leaf
                    || left_n == 0
                    || left_n == n_node
                {
                    return nodes.push_leaf(prob);
                }
                let me = nodes.push_leaf(prob); // placeholder
                let left = self.grow(nodes, lo, lo + left_n, depth + 1);
                debug_assert_eq!(left, me + 1, "pre-order layout violated");
                let right = self.grow(nodes, lo + left_n, hi, depth + 1);
                nodes.set_split(me, feature, threshold, right);
                me
            }
            None => nodes.push_leaf(prob),
        }
    }

    /// Draws the per-split feature subset (same RNG consumption as the
    /// legacy row-major path: one full shuffle, then truncate).
    fn sample_features(&mut self) -> usize {
        let k = self.params.max_features.resolve(self.n_features);
        self.feat_buf.clear();
        self.feat_buf.extend(0..self.n_features as u16);
        self.feat_buf.shuffle(self.rng);
        self.feat_buf.truncate(k);
        k
    }

    /// Finds the Gini-optimal split over a random feature subset by
    /// sweeping each candidate column in value order — either a presorted
    /// view maintained down the recursion, or a per-node packed-u64 sort
    /// of just this node's rows. The sweep (and hence the chosen split)
    /// is identical either way; only how the sorted view is obtained
    /// differs, and neither consumes RNG state.
    fn best_split_exact(&mut self, lo: usize, hi: usize, total_pos: f64) -> Option<(u16, f32)> {
        self.sample_features();
        let n_total = self.idx.len();
        let n_rows = self.data.n_rows();
        let n_node = hi - lo;
        let n = n_node as f64;
        let feat_buf = std::mem::take(&mut self.feat_buf);

        let mut best: Option<(u16, f32, f64)> = None;
        for &f in &feat_buf {
            if self.use_presort {
                self.regime_cols[0] += 1;
                let col = self.data.column(f as usize);
                let seg = &self.order[f as usize * n_total + lo..f as usize * n_total + hi];
                sweep_sorted(col, self.y, seg, f, n, total_pos, &mut best);
                continue;
            }
            // Counting-sort the column by precomputed value ranks when its
            // cardinality is small relative to the node (O(m + distinct)
            // beats O(m log m)); the per-rank sums are integer-valued f64
            // accumulations, so the sweep is bit-identical to sweeping the
            // sorted multiset.
            let counting = self.ranks.and_then(|vr| {
                let (vals, rks) = vr.column(f as usize, n_rows);
                (vals.len() <= 2 * n_node).then_some((vals, rks))
            });
            if let Some((vals, rks)) = counting {
                self.regime_cols[1] += 1;
                let vc = vals.len();
                self.hist[..vc].fill(0);
                self.pos_hist[..vc].fill(0);
                for &r in &self.idx[lo..hi] {
                    let r = r as usize;
                    let rk = rks[r] as usize;
                    self.hist[rk] += 1;
                    self.pos_hist[rk] += self.y[r] as u32;
                }
                sweep_hist(
                    vals,
                    &self.hist[..vc],
                    &self.pos_hist[..vc],
                    f,
                    n,
                    total_pos,
                    &mut best,
                );
            } else if let Some(vr) = self.ranks {
                // High-cardinality column: sort packed `(rank << 1) | label`
                // u32s — half the bandwidth of value/row keys, and the
                // sweep compares integer ranks instead of floats.
                self.regime_cols[2] += 1;
                let (vals, rks) = vr.column(f as usize, n_rows);
                self.rank_buf.clear();
                self.rank_buf.extend(
                    self.idx[lo..hi]
                        .iter()
                        .map(|&r| ((rks[r as usize] as u32) << 1) | self.y[r as usize] as u32),
                );
                self.rank_buf.sort_unstable();
                sweep_ranked(&self.rank_buf, vals, f, n, total_pos, &mut best);
            } else {
                self.regime_cols[3] += 1;
                let col = self.data.column(f as usize);
                self.keyed.clear();
                self.keyed.extend(
                    self.idx[lo..hi]
                        .iter()
                        .map(|&r| ((sort_key(col[r as usize]) as u64) << 32) | r as u64),
                );
                self.keyed.sort_unstable();
                sweep_keyed(&self.keyed, self.y, f, n, total_pos, &mut best);
            }
        }
        self.feat_buf = feat_buf;
        // Split whenever weighted child impurity does not exceed the
        // parent's (zero-improvement splits are allowed, as in sklearn —
        // they are what lets greedy CART stack splits to solve XOR).
        let parent_gini = gini(total_pos, n);
        match best {
            Some((f, t, g)) if g <= parent_gini + 1e-12 => Some((f, t)),
            _ => None,
        }
    }

    /// Histogram-binned split search: O(n) per candidate feature, no
    /// presorted arrays. Thresholds are equal-width bin edges.
    fn best_split_hist(
        &mut self,
        lo: usize,
        hi: usize,
        total_pos: f64,
        bins: usize,
    ) -> Option<(u16, f32)> {
        self.sample_features();
        self.regime_cols[4] += self.feat_buf.len() as u64;
        let n = (hi - lo) as f64;
        let mut bin_n = vec![0u32; bins];
        let mut bin_pos = vec![0u32; bins];

        let mut best: Option<(u16, f32, f64)> = None;
        for &f in &self.feat_buf {
            let col = self.data.column(f as usize);
            let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
            for &r in &self.idx[lo..hi] {
                let v = col[r as usize];
                min = min.min(v);
                max = max.max(v);
            }
            // f32::min/max skip NaN operands, so min/max are never NaN.
            if min >= max {
                continue; // constant (or non-finite) feature: no split
            }
            bin_n.iter_mut().for_each(|c| *c = 0);
            bin_pos.iter_mut().for_each(|c| *c = 0);
            let scale = bins as f32 / (max - min);
            for &r in &self.idx[lo..hi] {
                let r = r as usize;
                let b = (((col[r] - min) * scale) as usize).min(bins - 1);
                bin_n[b] += 1;
                if self.y[r] {
                    bin_pos[b] += 1;
                }
            }
            let mut left_n = 0f64;
            let mut left_pos = 0f64;
            let width = (max - min) / bins as f32;
            for b in 0..bins - 1 {
                left_n += bin_n[b] as f64;
                left_pos += bin_pos[b] as f64;
                if left_n == 0.0 || left_n == n {
                    continue;
                }
                let right_n = n - left_n;
                let right_pos = total_pos - left_pos;
                let weighted =
                    (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / n;
                if best.is_none_or(|(_, _, bst)| weighted < bst) {
                    best = Some((f, min + width * (b + 1) as f32, weighted));
                }
            }
        }
        let parent_gini = gini(total_pos, n);
        match best {
            Some((f, t, g)) if g <= parent_gini + 1e-12 => Some((f, t)),
            _ => None,
        }
    }

    /// Routes the node's rows by the chosen split and stably partitions
    /// `idx` (and, in the presort flavour, every presorted column) in
    /// place. Returns the left-side size.
    fn partition(&mut self, lo: usize, hi: usize, feature: u16, threshold: f32) -> usize {
        let col = self.data.column(feature as usize);
        for &r in &self.idx[lo..hi] {
            self.mask[r as usize] = col[r as usize] <= threshold;
        }
        let left_n = stable_partition(&mut self.idx[lo..hi], &self.mask, &mut self.scratch);
        if self.use_presort {
            let n_total = self.idx.len();
            for f in 0..self.n_features {
                let seg = &mut self.order[f * n_total + lo..f * n_total + hi];
                let left = stable_partition(seg, &self.mask, &mut self.scratch);
                debug_assert_eq!(left, left_n, "order column diverged from idx partition");
            }
        }
        left_n
    }
}

fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

fn midpoint(a: f32, b: f32) -> f32 {
    let m = a + (b - a) / 2.0;
    // Guard against midpoint rounding to b (then `<=` would misroute).
    if m >= b {
        a
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn fit(x: &[Vec<f32>], y: &[bool]) -> DecisionTree {
        DecisionTree::fit(
            x,
            y,
            &TreeParams { max_features: MaxFeatures::All, ..Default::default() },
            &mut rng(),
        )
    }

    #[test]
    fn separable_1d() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = fit(&x, &y);
        assert!(tree.predict_proba(&[2.0]) < 0.5);
        assert!(tree.predict_proba(&[17.0]) > 0.5);
    }

    #[test]
    fn xor_needs_depth() {
        let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let y = vec![false, true, true, false];
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeParams {
                max_features: MaxFeatures::All,
                min_samples_split: 2,
                ..Default::default()
            },
            &mut rng(),
        );
        for (xi, yi) in x.iter().zip(&y) {
            let p = tree.predict_proba(xi);
            assert_eq!(p > 0.5, *yi, "row {:?} p={}", xi, p);
        }
    }

    #[test]
    fn pure_labels_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let tree = fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeParams { max_depth: 3, max_features: MaxFeatures::All, ..Default::default() },
            &mut rng(),
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let y = vec![true, false, true, false];
        let tree = fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_proba(&[5.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f32>> = (0..50).map(|i| vec![(i % 7) as f32, (i % 3) as f32]).collect();
        let y: Vec<bool> = (0..50).map(|i| i % 7 > 3).collect();
        let params = TreeParams::default();
        let a = DecisionTree::fit(&x, &y, &params, &mut rng());
        let b = DecisionTree::fit(&x, &y, &params, &mut rng());
        assert_eq!(a.predict_proba(&[4.0, 1.0]), b.predict_proba(&[4.0, 1.0]));
    }

    #[test]
    fn serde_roundtrip() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = fit(&x, &y);
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&[3.0]), tree.predict_proba(&[3.0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = fit(&[], &[]);
    }

    #[test]
    fn bootstrap_index_multiset_weights_duplicates() {
        // Row 1 repeated three times dominates the leaf probability.
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![false, true];
        let data = Dataset::from_rows(&x).unwrap();
        let params =
            TreeParams { max_features: MaxFeatures::All, max_depth: 0, ..Default::default() };
        let tree = DecisionTree::fit_dataset(&data, &[0, 1, 1, 1], &y, &params, &mut rng());
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_proba(&[0.5]) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn batch_matches_serial() {
        let x: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 11) as f32, (i % 5) as f32]).collect();
        let y: Vec<bool> = (0..40).map(|i| (i % 11) > 5).collect();
        let tree = fit(&x, &y);
        let data = Dataset::from_rows(&x).unwrap();
        let batch = tree.predict_proba_batch(&data);
        for (row, b) in x.iter().zip(&batch) {
            assert_eq!(*b, tree.predict_proba(row));
        }
    }

    #[test]
    fn histogram_mode_learns_separable_data() {
        let x: Vec<Vec<f32>> = (0..80).map(|i| vec![i as f32, (i % 3) as f32]).collect();
        let y: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let params = TreeParams {
            max_features: MaxFeatures::All,
            split_mode: SplitMode::Histogram { bins: 16 },
            ..Default::default()
        };
        let a = DecisionTree::fit(&x, &y, &params, &mut rng());
        let b = DecisionTree::fit(&x, &y, &params, &mut rng());
        assert!(a.predict_proba(&[5.0, 0.0]) < 0.5);
        assert!(a.predict_proba(&[70.0, 1.0]) > 0.5);
        // Deterministic for a fixed seed.
        assert_eq!(a.predict_proba(&[39.0, 2.0]), b.predict_proba(&[39.0, 2.0]));
    }

    #[test]
    fn sort_key_is_monotonic() {
        let vals = [-f32::INFINITY, -3.5, -0.0, 0.0, 1e-9, 2.0, f32::INFINITY];
        for w in vals.windows(2) {
            assert!(sort_key(w[0]) <= sort_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(sort_key(-0.0) < sort_key(0.0));
    }
}

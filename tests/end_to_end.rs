//! End-to-end integration: the full paper pipeline at a small scale —
//! generate corpus → transform → train both detectors → evaluate on
//! held-out pools → serialize/deserialize → generalize to the held-out
//! packer.

use jsdetect_suite::corpus::{packer_set, LabeledSample};
use jsdetect_suite::detector::{
    train_pipeline, DetectorConfig, Technique, TrainedDetectors, DEFAULT_THRESHOLD,
};

/// One shared training run for the whole file (training dominates cost).
fn trained() -> &'static (TrainedDetectors, TestPools) {
    use std::sync::OnceLock;
    static CELL: OnceLock<(TrainedDetectors, TestPools)> = OnceLock::new();
    CELL.get_or_init(|| {
        let out = train_pipeline(64, 1234, &DetectorConfig::fast().with_seed(1234));
        (
            out.detectors,
            TestPools {
                regular: out.test_regular,
                minified: out.test_minified,
                obfuscated: out.test_obfuscated,
                level2: out.test_level2,
            },
        )
    })
}

struct TestPools {
    regular: Vec<LabeledSample>,
    minified: Vec<LabeledSample>,
    obfuscated: Vec<LabeledSample>,
    level2: Vec<LabeledSample>,
}

fn accuracy(
    detectors: &TrainedDetectors,
    samples: &[LabeledSample],
    check: impl Fn(&jsdetect_suite::detector::Level1Prediction) -> bool,
) -> f64 {
    let srcs: Vec<&str> = samples.iter().map(|s| s.src.as_str()).collect();
    let preds = detectors.level1.predict_many(&srcs);
    let mut ok = 0usize;
    let mut n = 0usize;
    for p in preds.iter().flatten() {
        n += 1;
        if check(p) {
            ok += 1;
        }
    }
    ok as f64 / n.max(1) as f64
}

#[test]
fn level1_separates_held_out_classes() {
    let (detectors, pools) = trained();
    let reg = accuracy(detectors, &pools.regular, |p| !p.is_transformed());
    let min = accuracy(detectors, &pools.minified, |p| p.minified >= 0.5);
    let obf = accuracy(detectors, &pools.obfuscated, |p| p.obfuscated >= 0.5);
    assert!(reg >= 0.85, "regular accuracy too low: {}", reg);
    assert!(min >= 0.85, "minified accuracy too low: {}", min);
    assert!(obf >= 0.75, "obfuscated accuracy too low: {}", obf);
}

#[test]
fn level2_top1_identifies_techniques() {
    let (detectors, pools) = trained();
    let srcs: Vec<&str> = pools.level2.iter().map(|s| s.src.as_str()).collect();
    let probs = detectors.level2.predict_proba_many(&srcs);
    let mut ok = 0usize;
    let mut n = 0usize;
    for (p, s) in probs.into_iter().zip(&pools.level2) {
        if let Some(p) = p {
            n += 1;
            let truth = s.label_vector();
            if jsdetect_suite::ml::metrics::top_k_correct(&p, &truth, 1) {
                ok += 1;
            }
        }
    }
    let acc = ok as f64 / n.max(1) as f64;
    assert!(acc >= 0.85, "level-2 top-1 accuracy too low: {} ({}/{})", acc, ok, n);
}

#[test]
fn detectors_roundtrip_through_json() {
    let (detectors, pools) = trained();
    let json = detectors.to_json().expect("serialization");
    let restored = TrainedDetectors::from_json(&json).expect("deserialization");
    let sample = &pools.level2[0].src;
    assert_eq!(
        detectors.level2.predict_proba(sample).unwrap(),
        restored.level2.predict_proba(sample).unwrap()
    );
    let p1 = detectors.level1.predict(sample).unwrap();
    let p2 = restored.level1.predict(sample).unwrap();
    assert_eq!(p1.minified, p2.minified);
}

#[test]
fn packer_generalization() {
    // The packer is never in the training set; level 1 must still flag its
    // output as transformed (paper §III-E3: 99.52%).
    let (detectors, _) = trained();
    let samples = packer_set(12, 777);
    let srcs: Vec<&str> = samples.iter().map(|s| s.src.as_str()).collect();
    let preds = detectors.level1.predict_many(&srcs);
    let flagged = preds.iter().flatten().filter(|p| p.is_transformed()).count();
    assert!(
        flagged as f64 / samples.len() as f64 >= 0.8,
        "only {}/{} packed samples flagged",
        flagged,
        samples.len()
    );
}

#[test]
fn fresh_regular_scripts_stay_regular() {
    let (detectors, _) = trained();
    let fresh = jsdetect_suite::corpus::regular_corpus(24, 0xFEED_F00D);
    let srcs: Vec<&str> = fresh.iter().map(|s| s.as_str()).collect();
    let preds = detectors.level1.predict_many(&srcs);
    let regular = preds.iter().flatten().filter(|p| !p.is_transformed()).count();
    assert!(
        regular as f64 / fresh.len() as f64 >= 0.85,
        "{}/{} fresh regular scripts classified regular",
        regular,
        fresh.len()
    );
}

#[test]
fn unmonitored_technique_still_flagged_transformed() {
    // Paper §II-C / §V-A: level 1 recognizes samples as transformed even
    // when the technique is not among the ten monitored ones — e.g.
    // obfuscated field reference (all dot accesses rewritten to brackets).
    // At this tiny training scale we assert the *directional* signal: the
    // obfuscated-class confidence must rise after the rewrite (the paper's
    // full-scale model turns that signal into a hard flag).
    let (detectors, _) = trained();
    let base = jsdetect_suite::corpus::regular_corpus(12, 0xF1E1D);
    let mut before = 0f64;
    let mut after = 0f64;
    let mut total = 0usize;
    for src in &base {
        let obf = jsdetect_suite::transform::presets::obfuscate_field_references(src).unwrap();
        if obf == *src {
            continue; // no member accesses to rewrite
        }
        let (Ok(p0), Ok(p1)) = (detectors.level1.predict(src), detectors.level1.predict(&obf))
        else {
            continue;
        };
        before += p0.obfuscated as f64;
        after += p1.obfuscated as f64;
        total += 1;
    }
    assert!(total >= 6, "not enough rewritable samples ({})", total);
    assert!(
        after > before,
        "field-reference rewriting must raise obfuscated confidence ({:.3} -> {:.3})",
        before / total as f64,
        after / total as f64
    );
}

#[test]
fn tool_presets_detectable() {
    use jsdetect_suite::transform::presets::Tool;
    let (detectors, _) = trained();
    let base = jsdetect_suite::corpus::regular_corpus(4, 0x9001);
    for tool in [Tool::ObfuscatorIo, Tool::JsFuck, Tool::ClosureCompiler] {
        let mut flagged = 0usize;
        let mut total = 0usize;
        for (i, src) in base.iter().enumerate() {
            if let Ok(out) = tool.apply(src, i as u64) {
                if let Ok(p) = detectors.level1.predict(&out) {
                    total += 1;
                    if p.is_transformed() {
                        flagged += 1;
                    }
                }
            }
        }
        assert!(flagged * 4 >= total * 3, "{}: only {}/{} flagged", tool.as_str(), flagged, total);
    }
}

#[test]
fn wild_population_shapes() {
    // The comparative shapes of §IV on tiny populations: Alexa is far more
    // transformed than npm, and malware leads with identifier obfuscation.
    let (detectors, _) = trained();

    let alexa = jsdetect_suite::corpus::alexa_population(64, 12, 0, 5);
    let npm = jsdetect_suite::corpus::npm_population(64, 16, 2500, 5);
    let rate = |pop: &[jsdetect_suite::corpus::WildScript]| {
        let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
        let preds = detectors.level1.predict_many(&srcs);
        let t = preds.iter().flatten().filter(|p| p.is_transformed()).count();
        t as f64 / pop.len().max(1) as f64
    };
    let alexa_rate = rate(&alexa);
    let npm_rate = rate(&npm);
    assert!(
        alexa_rate > npm_rate + 0.2,
        "alexa {:.2} should far exceed npm {:.2}",
        alexa_rate,
        npm_rate
    );
}

#[test]
fn thresholded_topk_reports_applied_technique() {
    let (detectors, _) = trained();
    let src = r#"
        function transfer(amount, account) {
            var fee = amount * 0.01;
            var total = amount + fee;
            log('transferring ' + total + ' to ' + account);
            return total;
        }
        transfer(100, 'ACC-1');
    "#;
    let obf = jsdetect_suite::transform::apply(
        src,
        &[Technique::GlobalArray, Technique::IdentifierObfuscation],
        9,
    )
    .unwrap();
    let report = detectors.level2.predict_techniques(&obf, 4, DEFAULT_THRESHOLD).unwrap();
    assert!(
        report.contains(&Technique::IdentifierObfuscation)
            || report.contains(&Technique::GlobalArray),
        "report {:?} misses both applied techniques",
        report
    );
}

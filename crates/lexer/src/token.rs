//! Token definitions.

use jsdetect_ast::{Atom, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reserved keywords (contextual keywords such as `let`, `of`, `async`,
/// `get`, `set`, and `static` are lexed as identifiers and resolved by the
/// parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Kw {
    Var,
    Const,
    Function,
    Return,
    If,
    Else,
    For,
    While,
    Do,
    Break,
    Continue,
    New,
    Delete,
    Typeof,
    Instanceof,
    In,
    This,
    Null,
    True,
    False,
    Switch,
    Case,
    Default,
    Try,
    Catch,
    Finally,
    Throw,
    Void,
    Class,
    Extends,
    Super,
    Debugger,
    With,
    Yield,
}

impl Kw {
    /// Looks up a keyword from its source text.
    pub fn lookup(s: &str) -> Option<Kw> {
        use Kw::*;
        Some(match s {
            "var" => Var,
            "const" => Const,
            "function" => Function,
            "return" => Return,
            "if" => If,
            "else" => Else,
            "for" => For,
            "while" => While,
            "do" => Do,
            "break" => Break,
            "continue" => Continue,
            "new" => New,
            "delete" => Delete,
            "typeof" => Typeof,
            "instanceof" => Instanceof,
            "in" => In,
            "this" => This,
            "null" => Null,
            "true" => True,
            "false" => False,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "try" => Try,
            "catch" => Catch,
            "finally" => Finally,
            "throw" => Throw,
            "void" => Void,
            "class" => Class,
            "extends" => Extends,
            "super" => Super,
            "debugger" => Debugger,
            "with" => With,
            "yield" => Yield,
            _ => return None,
        })
    }

    /// Source text of the keyword.
    pub fn as_str(self) -> &'static str {
        use Kw::*;
        match self {
            Var => "var",
            Const => "const",
            Function => "function",
            Return => "return",
            If => "if",
            Else => "else",
            For => "for",
            While => "while",
            Do => "do",
            Break => "break",
            Continue => "continue",
            New => "new",
            Delete => "delete",
            Typeof => "typeof",
            Instanceof => "instanceof",
            In => "in",
            This => "this",
            Null => "null",
            True => "true",
            False => "false",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Try => "try",
            Catch => "catch",
            Finally => "finally",
            Throw => "throw",
            Void => "void",
            Class => "class",
            Extends => "extends",
            Super => "super",
            Debugger => "debugger",
            With => "with",
            Yield => "yield",
        }
    }

    /// The keyword's text as an interned atom (used when a keyword is
    /// accepted in identifier position, e.g. `obj.delete`).
    pub fn atom(self) -> Atom {
        Atom::new(self.as_str())
    }
}

/// Punctuators and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Ellipsis,
    OptionalChain, // ?.
    Colon,
    Question,
    Arrow, // =>
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    StarStar,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    UShr,
    Lt,
    Gt,
    LtEq,
    GtEq,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Amp,
    Pipe,
    Caret,
    Bang,
    Tilde,
    AmpAmp,
    PipePipe,
    QuestionQuestion,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    StarStarEq,
    ShlEq,
    ShrEq,
    UShrEq,
    AmpEq,
    PipeEq,
    CaretEq,
    AmpAmpEq,
    PipePipeEq,
    QuestionQuestionEq,
}

impl Punct {
    /// Source text of the punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Ellipsis => "...",
            OptionalChain => "?.",
            Colon => ":",
            Question => "?",
            Arrow => "=>",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            StarStar => "**",
            PlusPlus => "++",
            MinusMinus => "--",
            Shl => "<<",
            Shr => ">>",
            UShr => ">>>",
            Lt => "<",
            Gt => ">",
            LtEq => "<=",
            GtEq => ">=",
            EqEq => "==",
            NotEq => "!=",
            EqEqEq => "===",
            NotEqEq => "!==",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Bang => "!",
            Tilde => "~",
            AmpAmp => "&&",
            PipePipe => "||",
            QuestionQuestion => "??",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            StarStarEq => "**=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            UShrEq => ">>>=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            AmpAmpEq => "&&=",
            PipePipeEq => "||=",
            QuestionQuestionEq => "??=",
        }
    }
}

/// The payload of a token.
///
/// All text payloads are interned [`Atom`]s, so `TokenKind` (and [`Token`])
/// is `Copy`: producing, buffering, and re-lexing tokens never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier or contextual keyword.
    Ident(Atom),
    /// Reserved keyword.
    Keyword(Kw),
    /// Numeric literal (decoded value).
    Num(f64),
    /// BigInt literal: the raw digit text (radix prefix included, `n`
    /// suffix excluded), kept exact so printing round-trips.
    BigInt(Atom),
    /// String literal (cooked value).
    Str(Atom),
    /// Private name (`#field`): the identifier after the `#`.
    PrivateName(Atom),
    /// Regular expression literal.
    Regex {
        /// Pattern between the slashes.
        pattern: Atom,
        /// Flag characters.
        flags: Atom,
    },
    /// `` `text` `` — template with no substitution.
    TemplateNoSub {
        /// Decoded text.
        cooked: Atom,
        /// Raw text between the backticks.
        raw: Atom,
    },
    /// `` `text${ `` — head of a substituted template.
    TemplateHead {
        /// Decoded text.
        cooked: Atom,
        /// Raw text.
        raw: Atom,
    },
    /// `}text${` — middle chunk of a substituted template.
    TemplateMiddle {
        /// Decoded text.
        cooked: Atom,
        /// Raw text.
        raw: Atom,
    },
    /// `` }text` `` — tail chunk of a substituted template.
    TemplateTail {
        /// Decoded text.
        cooked: Atom,
        /// Raw text.
        raw: Atom,
    },
    /// Punctuator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Whether this token may legally precede a regex literal (used for the
    /// slash-disambiguation heuristic).
    pub fn allows_regex_after(&self) -> bool {
        match self {
            TokenKind::Ident(_)
            | TokenKind::Num(_)
            | TokenKind::BigInt(_)
            | TokenKind::Str(_)
            | TokenKind::PrivateName(_)
            | TokenKind::Regex { .. }
            | TokenKind::TemplateNoSub { .. }
            | TokenKind::TemplateTail { .. } => false,
            TokenKind::Keyword(kw) => {
                !matches!(kw, Kw::This | Kw::Super | Kw::Null | Kw::True | Kw::False)
            }
            TokenKind::Punct(p) => {
                !matches!(p, Punct::RParen | Punct::RBracket | Punct::PlusPlus | Punct::MinusMinus)
            }
            _ => true,
        }
    }
}

/// A lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
    /// Whether a line terminator occurred between the previous token and
    /// this one (drives automatic semicolon insertion).
    pub newline_before: bool,
}

impl Token {
    /// Returns the identifier text if this token is an identifier.
    pub fn ident_name(&self) -> Option<&str> {
        self.ident_atom().map(Atom::as_str)
    }

    /// Returns the identifier atom if this token is an identifier.
    pub fn ident_atom(&self) -> Option<Atom> {
        match &self.kind {
            TokenKind::Ident(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether the token is the given punctuator.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }

    /// Whether the token is the given keyword.
    pub fn is_kw(&self, kw: Kw) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }

    /// Whether the token is EOF.
    pub fn is_eof(&self) -> bool {
        matches!(self.kind, TokenKind::Eof)
    }
}

/// A comment encountered while lexing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comment {
    /// Byte range including delimiters.
    pub span: Span,
    /// `true` for `/* */`, `false` for `//`.
    pub block: bool,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{}`", s),
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Num(n) => write!(f, "number `{}`", n),
            TokenKind::BigInt(d) => write!(f, "bigint `{}n`", d),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::PrivateName(s) => write!(f, "private name `#{}`", s),
            TokenKind::Regex { .. } => write!(f, "regex literal"),
            TokenKind::TemplateNoSub { .. }
            | TokenKind::TemplateHead { .. }
            | TokenKind::TemplateMiddle { .. }
            | TokenKind::TemplateTail { .. } => write!(f, "template literal"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [Kw::Var, Kw::Function, Kw::Instanceof, Kw::Debugger, Kw::Yield] {
            assert_eq!(Kw::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Kw::lookup("let"), None, "`let` must be contextual");
        assert_eq!(Kw::lookup("async"), None, "`async` must be contextual");
        assert_eq!(Kw::lookup("of"), None, "`of` must be contextual");
    }

    #[test]
    fn regex_context() {
        assert!(TokenKind::Punct(Punct::LParen).allows_regex_after());
        assert!(TokenKind::Punct(Punct::Eq).allows_regex_after());
        assert!(!TokenKind::Punct(Punct::RParen).allows_regex_after());
        assert!(!TokenKind::Ident("x".into()).allows_regex_after());
        assert!(!TokenKind::Num(1.0).allows_regex_after());
        assert!(TokenKind::Keyword(Kw::Return).allows_regex_after());
        assert!(!TokenKind::Keyword(Kw::This).allows_regex_after());
    }

    #[test]
    fn token_helpers() {
        let t = Token {
            kind: TokenKind::Ident("foo".into()),
            span: Span::new(0, 3),
            newline_before: false,
        };
        assert_eq!(t.ident_name(), Some("foo"));
        assert!(!t.is_eof());
        assert!(!t.is_punct(Punct::Semi));
    }
}

//! AST → JavaScript source printer.

use crate::writer::Writer;
use jsdetect_ast::*;

/// Output style options.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Emit no whitespace beyond what token boundaries require.
    pub minify: bool,
    /// Indentation unit for pretty output.
    pub indent: String,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions { minify: false, indent: "    ".into() }
    }
}

impl CodegenOptions {
    /// Options for compact (whitespace-free) output.
    pub fn minified() -> Self {
        CodegenOptions { minify: true, indent: String::new() }
    }
}

/// Prints a program with the given options.
pub fn generate(program: &Program, opts: &CodegenOptions) -> String {
    let mut g = Gen { w: Writer::new(opts.minify, &opts.indent) };
    for s in &program.body {
        g.stmt(s);
    }
    let mut out = g.w.finish();
    if !opts.minify && !out.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Prints a program in readable, indented form.
///
/// # Examples
///
/// ```
/// use jsdetect_parser::parse;
/// use jsdetect_codegen::to_source;
/// let prog = parse("var x=1;if(x)f(x);").unwrap();
/// assert_eq!(to_source(&prog), "var x = 1;\nif (x) f(x);\n");
/// ```
pub fn to_source(program: &Program) -> String {
    generate(program, &CodegenOptions::default())
}

/// Prints a program in compact form (whitespace-stripped).
///
/// # Examples
///
/// ```
/// use jsdetect_parser::parse;
/// use jsdetect_codegen::to_minified;
/// let prog = parse("var x = 1;\nif (x) { f(x); }").unwrap();
/// assert_eq!(to_minified(&prog), "var x=1;if(x){f(x);}");
/// ```
pub fn to_minified(program: &Program) -> String {
    generate(program, &CodegenOptions::minified())
}

// Expression precedence levels used for parenthesization decisions.
const PREC_SEQ: u8 = 1;
const PREC_ASSIGN: u8 = 2;
const PREC_COND: u8 = 3;
const PREC_UNARY: u8 = 15;
const PREC_POSTFIX: u8 = 16;
const PREC_NEW_NO_ARGS: u8 = 17;
const PREC_CALL: u8 = 18;
const PREC_MEMBER: u8 = 19;
const PREC_PRIMARY: u8 = 20;

fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Sequence { .. } => PREC_SEQ,
        Expr::Assign { .. } | Expr::Arrow { .. } | Expr::Yield { .. } => PREC_ASSIGN,
        Expr::Conditional { .. } => PREC_COND,
        Expr::Logical { op, .. } => op.precedence(),
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary { .. } | Expr::Await { .. } => PREC_UNARY,
        Expr::Update { prefix, .. } => {
            if *prefix {
                PREC_UNARY
            } else {
                PREC_POSTFIX
            }
        }
        Expr::New { args, .. } if args.is_empty() => PREC_NEW_NO_ARGS,
        Expr::Call { .. } | Expr::ImportCall { .. } => PREC_CALL,
        Expr::Member { .. } | Expr::TaggedTemplate { .. } | Expr::New { .. } => PREC_MEMBER,
        _ => PREC_PRIMARY,
    }
}

/// Whether the leftmost token of `e` would be `{`, `function`, or `class`
/// (which must be parenthesized in expression-statement / arrow-body
/// position).
fn starts_ambiguously(e: &Expr) -> bool {
    match e {
        Expr::Object { .. } | Expr::Function(_) | Expr::Class(_) => true,
        Expr::Binary { left, .. } | Expr::Logical { left, .. } => starts_ambiguously(left),
        Expr::Conditional { test, .. } => starts_ambiguously(test),
        Expr::Assign { target, .. } => pat_starts_ambiguously(target),
        Expr::Member { object, .. } => starts_ambiguously(object),
        Expr::Call { callee, .. } => starts_ambiguously(callee),
        Expr::TaggedTemplate { tag, .. } => starts_ambiguously(tag),
        Expr::Sequence { exprs, .. } => exprs.first().is_some_and(starts_ambiguously),
        Expr::Update { prefix: false, arg, .. } => starts_ambiguously(arg),
        _ => false,
    }
}

fn pat_starts_ambiguously(p: &Pat) -> bool {
    match p {
        Pat::Object { .. } => true,
        Pat::Member(e) => starts_ambiguously(e),
        _ => false,
    }
}

/// Whether `e` contains a top-level (unparenthesized) `in` operator, which
/// must be wrapped when printed inside a classic `for` initializer.
fn contains_top_level_in(e: &Expr) -> bool {
    match e {
        Expr::Binary { op: BinaryOp::In, .. } => true,
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            contains_top_level_in(left) || contains_top_level_in(right)
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            contains_top_level_in(test)
                || contains_top_level_in(consequent)
                || contains_top_level_in(alternate)
        }
        Expr::Assign { value, .. } => contains_top_level_in(value),
        Expr::Sequence { exprs, .. } => exprs.iter().any(contains_top_level_in),
        Expr::Unary { arg, .. } => contains_top_level_in(arg),
        _ => false,
    }
}

/// Whether a statement ends with an `if` lacking an `else` (the dangling-
/// else hazard when this statement is an `if` consequent).
fn ends_with_open_if(s: &Stmt) -> bool {
    match s {
        Stmt::If { alternate: None, .. } => true,
        Stmt::If { alternate: Some(alt), .. } => ends_with_open_if(alt),
        Stmt::Labeled { body, .. }
        | Stmt::While { body, .. }
        | Stmt::With { body, .. }
        | Stmt::For { body, .. }
        | Stmt::ForIn { body, .. }
        | Stmt::ForOf { body, .. } => ends_with_open_if(body),
        _ => false,
    }
}

struct Gen {
    w: Writer,
}

impl Gen {
    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr { expr, .. } => {
                if starts_ambiguously(expr) {
                    self.w.token("(");
                    self.expr(expr, PREC_SEQ);
                    self.w.token(")");
                } else {
                    self.expr(expr, PREC_SEQ);
                }
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Block { body, .. } => {
                self.block(body);
                self.w.newline();
            }
            Stmt::VarDecl { kind, decls, .. } => {
                self.var_decl(*kind, decls, true);
                self.w.newline();
            }
            Stmt::FunctionDecl(f) => {
                self.function(f, true);
                self.w.newline();
            }
            Stmt::ClassDecl(c) => {
                self.class(c);
                self.w.newline();
            }
            Stmt::If { test, consequent, alternate, .. } => {
                self.w.token("if");
                self.w.space();
                self.w.token("(");
                self.expr(test, PREC_SEQ);
                self.w.token(")");
                let needs_brace = alternate.is_some() && ends_with_open_if(consequent);
                if needs_brace {
                    self.w.space();
                    self.w.token("{");
                    self.w.newline();
                    self.w.indent_inc();
                    self.stmt(consequent);
                    self.w.indent_dec();
                    self.w.token("}");
                } else {
                    self.nested(consequent);
                }
                if let Some(alt) = alternate {
                    if self.w.last_char() == Some('}') {
                        self.w.space();
                    }
                    self.w.token("else");
                    if matches!(**alt, Stmt::If { .. }) {
                        self.w.space();
                        self.stmt(alt);
                        return;
                    }
                    self.nested(alt);
                }
                self.w.newline();
            }
            Stmt::For { init, test, update, .. } => {
                self.w.token("for");
                self.w.space();
                self.w.token("(");
                match init {
                    Some(ForInit::Var { kind, decls }) => self.var_decl(*kind, decls, false),
                    Some(ForInit::Expr(e)) => {
                        if contains_top_level_in(e) {
                            self.w.token("(");
                            self.expr(e, PREC_SEQ);
                            self.w.token(")");
                        } else {
                            self.expr(e, PREC_SEQ);
                        }
                    }
                    None => {}
                }
                self.w.token(";");
                if let Some(t) = test {
                    self.w.space();
                    self.expr(t, PREC_SEQ);
                }
                self.w.token(";");
                if let Some(u) = update {
                    self.w.space();
                    self.expr(u, PREC_SEQ);
                }
                self.w.token(")");
                self.loop_body(s);
            }
            Stmt::ForIn { target, object, .. } => {
                self.w.token("for");
                self.w.space();
                self.w.token("(");
                self.for_target(target);
                self.w.token("in");
                self.expr(object, PREC_SEQ);
                self.w.token(")");
                self.loop_body(s);
            }
            Stmt::ForOf { target, iterable, .. } => {
                self.w.token("for");
                self.w.space();
                self.w.token("(");
                self.for_target(target);
                self.w.token("of");
                self.expr(iterable, PREC_ASSIGN);
                self.w.token(")");
                self.loop_body(s);
            }
            Stmt::While { test, body, .. } => {
                self.w.token("while");
                self.w.space();
                self.w.token("(");
                self.expr(test, PREC_SEQ);
                self.w.token(")");
                self.nested(body);
                self.w.newline();
            }
            Stmt::DoWhile { body, test, .. } => {
                self.w.token("do");
                self.nested(body);
                if self.w.last_char() == Some('}') {
                    self.w.space();
                }
                self.w.token("while");
                self.w.space();
                self.w.token("(");
                self.expr(test, PREC_SEQ);
                self.w.token(")");
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Switch { discriminant, cases, .. } => {
                self.w.token("switch");
                self.w.space();
                self.w.token("(");
                self.expr(discriminant, PREC_SEQ);
                self.w.token(")");
                self.w.space();
                self.w.token("{");
                self.w.newline();
                self.w.indent_inc();
                for case in cases {
                    match &case.test {
                        Some(t) => {
                            self.w.token("case");
                            self.expr(t, PREC_SEQ);
                            self.w.token(":");
                        }
                        None => {
                            self.w.token("default");
                            self.w.token(":");
                        }
                    }
                    self.w.newline();
                    self.w.indent_inc();
                    for st in &case.body {
                        self.stmt(st);
                    }
                    self.w.indent_dec();
                }
                self.w.indent_dec();
                self.w.token("}");
                self.w.newline();
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                self.w.token("try");
                self.w.space();
                self.block(block);
                if let Some(h) = handler {
                    self.w.space();
                    self.w.token("catch");
                    if let Some(p) = &h.param {
                        self.w.space();
                        self.w.token("(");
                        self.pat(p);
                        self.w.token(")");
                    }
                    self.w.space();
                    self.block(&h.body);
                }
                if let Some(fin) = finalizer {
                    self.w.space();
                    self.w.token("finally");
                    self.w.space();
                    self.block(fin);
                }
                self.w.newline();
            }
            Stmt::Throw { arg, .. } => {
                self.w.token("throw");
                self.expr(arg, PREC_SEQ);
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Return { arg, .. } => {
                self.w.token("return");
                if let Some(a) = arg {
                    if starts_ambiguously(a) {
                        self.w.token("(");
                        self.expr(a, PREC_SEQ);
                        self.w.token(")");
                    } else {
                        self.expr(a, PREC_SEQ);
                    }
                }
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Break { label, .. } => {
                self.w.token("break");
                if let Some(l) = label {
                    self.w.token(&l.name);
                }
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Continue { label, .. } => {
                self.w.token("continue");
                if let Some(l) = label {
                    self.w.token(&l.name);
                }
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Labeled { label, body, .. } => {
                self.w.token(&label.name);
                self.w.token(":");
                self.w.space();
                self.stmt(body);
            }
            Stmt::Empty { .. } => {
                self.w.token(";");
                self.w.newline();
            }
            Stmt::Debugger { .. } => {
                self.w.token("debugger");
                self.w.token(";");
                self.w.newline();
            }
            Stmt::With { object, body, .. } => {
                self.w.token("with");
                self.w.space();
                self.w.token("(");
                self.expr(object, PREC_SEQ);
                self.w.token(")");
                self.nested(body);
                self.w.newline();
            }
            Stmt::Import { specifiers, source, .. } => {
                self.w.token("import");
                if !specifiers.is_empty() {
                    self.w.space();
                    self.import_specifiers(specifiers);
                    self.w.space();
                    self.w.token("from");
                }
                self.w.space();
                self.lit(source);
                self.w.token(";");
                self.w.newline();
            }
            Stmt::ExportNamed { decl, specifiers, source, .. } => {
                self.w.token("export");
                if let Some(decl) = decl {
                    // The declaration prints its own terminator/newline.
                    self.stmt(decl);
                } else {
                    self.w.space();
                    self.w.token("{");
                    for (i, sp) in specifiers.iter().enumerate() {
                        if i > 0 {
                            self.w.token(",");
                            self.w.space();
                        }
                        self.w.token(&sp.local.name);
                        if sp.exported != sp.local.name {
                            self.w.space();
                            self.w.token("as");
                            self.w.token(sp.exported.as_str());
                        }
                    }
                    self.w.token("}");
                    if let Some(src) = source {
                        self.w.space();
                        self.w.token("from");
                        self.w.space();
                        self.lit(src);
                    }
                    self.w.token(";");
                    self.w.newline();
                }
            }
            Stmt::ExportDefault { expr, .. } => {
                self.w.token("export");
                self.w.token("default");
                self.w.space();
                self.expr(expr, PREC_ASSIGN);
                // Function/class forms are declarations: a trailing `;`
                // would reparse as an extra EmptyStatement.
                if !matches!(expr, Expr::Function(_) | Expr::Class(_)) {
                    self.w.token(";");
                }
                self.w.newline();
            }
            Stmt::ExportAll { exported, source, .. } => {
                self.w.token("export");
                self.w.space();
                self.w.token("*");
                if let Some(ns) = exported {
                    self.w.space();
                    self.w.token("as");
                    self.w.token(&ns.name);
                }
                self.w.space();
                self.w.token("from");
                self.w.space();
                self.lit(source);
                self.w.token(";");
                self.w.newline();
            }
        }
    }

    /// Prints an import clause in canonical order: default, namespace,
    /// then the named group.
    fn import_specifiers(&mut self, specifiers: &[ImportSpecifier]) {
        let mut first = true;
        for sp in specifiers {
            if let ImportSpecifier::Default { local } = sp {
                if !first {
                    self.w.token(",");
                    self.w.space();
                }
                self.w.token(&local.name);
                first = false;
            }
        }
        for sp in specifiers {
            if let ImportSpecifier::Namespace { local } = sp {
                if !first {
                    self.w.token(",");
                    self.w.space();
                }
                self.w.token("*");
                self.w.space();
                self.w.token("as");
                self.w.token(&local.name);
                first = false;
            }
        }
        let named: Vec<_> = specifiers
            .iter()
            .filter_map(|sp| match sp {
                ImportSpecifier::Named { imported, local } => Some((*imported, local)),
                _ => None,
            })
            .collect();
        if !named.is_empty() {
            if !first {
                self.w.token(",");
                self.w.space();
            }
            self.w.token("{");
            for (i, (imported, local)) in named.iter().enumerate() {
                if i > 0 {
                    self.w.token(",");
                    self.w.space();
                }
                if *imported == local.name {
                    self.w.token(&local.name);
                } else {
                    self.w.token(imported.as_str());
                    self.w.token("as");
                    self.w.token(&local.name);
                }
            }
            self.w.token("}");
        }
    }

    fn loop_body(&mut self, s: &Stmt) {
        let body = match s {
            Stmt::For { body, .. } | Stmt::ForIn { body, .. } | Stmt::ForOf { body, .. } => body,
            _ => unreachable!(),
        };
        self.nested(body);
        self.w.newline();
    }

    /// Prints a nested statement (loop/if body): blocks inline, single
    /// statements on an indented line in pretty mode.
    fn nested(&mut self, s: &Stmt) {
        match s {
            Stmt::Block { body, .. } => {
                self.w.space();
                self.block(body);
            }
            _ => {
                if self.w.minify {
                    self.stmt(s);
                } else {
                    self.w.space();
                    self.stmt(s);
                }
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        self.w.token("{");
        if body.is_empty() {
            self.w.token("}");
            return;
        }
        self.w.newline();
        self.w.indent_inc();
        for s in body {
            self.stmt(s);
        }
        self.w.indent_dec();
        self.w.token("}");
    }

    fn var_decl(&mut self, kind: VarKind, decls: &[VarDeclarator], semi: bool) {
        self.w.token(kind.as_str());
        for (i, d) in decls.iter().enumerate() {
            if i > 0 {
                self.w.token(",");
                self.w.space();
            }
            self.pat(&d.id);
            if let Some(init) = &d.init {
                self.w.space();
                self.w.token("=");
                self.w.space();
                self.expr(init, PREC_ASSIGN);
            }
        }
        if semi {
            self.w.token(";");
        }
    }

    fn for_target(&mut self, t: &ForTarget) {
        match t {
            ForTarget::Var { kind, pat } => {
                self.w.token(kind.as_str());
                self.pat(pat);
            }
            ForTarget::Pat(p) => self.pat(p),
        }
    }

    // ---- functions / classes ----------------------------------------------

    fn function(&mut self, f: &Function, _decl: bool) {
        if f.is_async {
            self.w.token("async");
        }
        self.w.token("function");
        if f.is_generator {
            self.w.token("*");
        }
        if let Some(id) = &f.id {
            self.w.token(&id.name);
        }
        self.params(&f.params);
        self.w.space();
        self.block(&f.body);
    }

    fn params(&mut self, params: &[Pat]) {
        self.w.token("(");
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.w.token(",");
                self.w.space();
            }
            self.pat(p);
        }
        self.w.token(")");
    }

    fn class(&mut self, c: &Class) {
        self.w.token("class");
        if let Some(id) = &c.id {
            self.w.token(&id.name);
        }
        if let Some(sup) = &c.super_class {
            self.w.token("extends");
            self.expr(sup, PREC_MEMBER);
        }
        self.w.space();
        self.w.token("{");
        self.w.newline();
        self.w.indent_inc();
        for m in &c.body {
            self.class_member(m);
        }
        self.w.indent_dec();
        self.w.token("}");
    }

    fn class_member(&mut self, m: &ClassMember) {
        if m.is_static {
            self.w.token("static");
        }
        match &m.value {
            ClassMemberValue::Method(f) => {
                if f.is_async {
                    self.w.token("async");
                }
                if f.is_generator {
                    self.w.token("*");
                }
                match m.kind {
                    MethodKind::Get => self.w.token("get"),
                    MethodKind::Set => self.w.token("set"),
                    _ => {}
                }
                self.prop_key(&m.key, m.computed);
                self.params(&f.params);
                self.w.space();
                self.block(&f.body);
                self.w.newline();
            }
            ClassMemberValue::Field(value) => {
                self.prop_key(&m.key, m.computed);
                if let Some(v) = value {
                    self.w.space();
                    self.w.token("=");
                    self.w.space();
                    self.expr(v, PREC_ASSIGN);
                }
                self.w.token(";");
                self.w.newline();
            }
        }
    }

    fn prop_key(&mut self, k: &PropKey, computed: bool) {
        if computed {
            self.w.token("[");
            match k {
                PropKey::Computed(e) => self.expr(e, PREC_ASSIGN),
                PropKey::Ident(i) => self.w.token(&i.name),
                PropKey::Lit(l) => self.lit(l),
                PropKey::Private(p) => self.private_name(p),
            }
            self.w.token("]");
            return;
        }
        match k {
            PropKey::Ident(i) => self.w.token(&i.name),
            PropKey::Lit(l) => self.lit(l),
            PropKey::Computed(e) => {
                self.w.token("[");
                self.expr(e, PREC_ASSIGN);
                self.w.token("]");
            }
            PropKey::Private(p) => self.private_name(p),
        }
    }

    fn private_name(&mut self, p: &Ident) {
        self.w.token(&format!("#{}", p.name));
    }

    // ---- patterns -----------------------------------------------------------

    fn pat(&mut self, p: &Pat) {
        match p {
            Pat::Ident(i) => self.w.token(&i.name),
            Pat::Array { elements, .. } => {
                self.w.token("[");
                for (i, el) in elements.iter().enumerate() {
                    if i > 0 {
                        self.w.token(",");
                        self.w.space();
                    }
                    if let Some(p) = el {
                        self.pat(p);
                    }
                }
                self.w.token("]");
            }
            Pat::Object { props, .. } => {
                self.w.token("{");
                for (i, prop) in props.iter().enumerate() {
                    if i > 0 {
                        self.w.token(",");
                        self.w.space();
                    }
                    if matches!(prop.value, Pat::Rest { .. }) {
                        self.pat(&prop.value);
                        continue;
                    }
                    let shorthand_ok = prop.shorthand
                        && match (&prop.key, &prop.value) {
                            (PropKey::Ident(k), Pat::Ident(v)) => k.name == v.name,
                            (PropKey::Ident(k), Pat::Assign { target, .. }) => {
                                matches!(&**target, Pat::Ident(v) if v.name == k.name)
                            }
                            _ => false,
                        };
                    if shorthand_ok {
                        self.pat(&prop.value);
                    } else {
                        self.prop_key(&prop.key, prop.computed);
                        self.w.token(":");
                        self.w.space();
                        self.pat(&prop.value);
                    }
                }
                self.w.token("}");
            }
            Pat::Assign { target, value, .. } => {
                self.pat(target);
                self.w.space();
                self.w.token("=");
                self.w.space();
                self.expr(value, PREC_ASSIGN);
            }
            Pat::Rest { arg, .. } => {
                self.w.token("...");
                self.pat(arg);
            }
            Pat::Member(e) => self.expr(e, PREC_MEMBER),
        }
    }

    // ---- expressions ----------------------------------------------------------

    fn expr(&mut self, e: &Expr, min_prec: u8) {
        if expr_prec(e) < min_prec {
            self.w.token("(");
            self.expr_inner(e);
            self.w.token(")");
        } else {
            self.expr_inner(e);
        }
    }

    fn expr_inner(&mut self, e: &Expr) {
        match e {
            Expr::Ident(i) => self.w.token(&i.name),
            Expr::Lit(l) => self.lit(l),
            Expr::This { .. } => self.w.token("this"),
            Expr::Super { .. } => self.w.token("super"),
            Expr::Array { elements, .. } => {
                self.w.token("[");
                for (i, el) in elements.iter().enumerate() {
                    if i > 0 {
                        self.w.token(",");
                        self.w.space();
                    }
                    if let Some(el) = el {
                        self.expr(el, PREC_ASSIGN);
                    }
                }
                // A trailing hole needs an extra comma: `[1,,]`.
                if matches!(elements.last(), Some(None)) {
                    self.w.token(",");
                }
                self.w.token("]");
            }
            Expr::Object { props, .. } => {
                self.w.token("{");
                for (i, p) in props.iter().enumerate() {
                    if i > 0 {
                        self.w.token(",");
                        self.w.space();
                    }
                    self.property(p);
                }
                self.w.token("}");
            }
            Expr::Function(f) => self.function(f, false),
            Expr::Arrow { params, body, is_async, .. } => {
                if *is_async {
                    self.w.token("async");
                }
                // Single plain identifier param may omit parentheses.
                match params.as_slice() {
                    [Pat::Ident(i)] => self.w.token(&i.name),
                    _ => self.params(params),
                }
                self.w.space();
                self.w.token("=>");
                self.w.space();
                match body {
                    ArrowBody::Expr(e) => {
                        if starts_ambiguously(e) {
                            self.w.token("(");
                            self.expr(e, PREC_SEQ);
                            self.w.token(")");
                        } else {
                            self.expr(e, PREC_ASSIGN);
                        }
                    }
                    ArrowBody::Block(stmts) => self.block(stmts),
                }
            }
            Expr::Class(c) => self.class(c),
            Expr::Template { quasis, exprs, .. } => self.template(quasis, exprs),
            Expr::TaggedTemplate { tag, quasis, exprs, .. } => {
                self.expr(tag, PREC_MEMBER);
                self.template(quasis, exprs);
            }
            Expr::Unary { op, arg, .. } => {
                self.w.token(op.as_str());
                self.expr(arg, PREC_UNARY);
            }
            Expr::Update { op, prefix, arg, .. } => {
                if *prefix {
                    self.w.token(op.as_str());
                    self.expr(arg, PREC_UNARY);
                } else {
                    self.expr(arg, PREC_POSTFIX);
                    self.w.token(op.as_str());
                }
            }
            Expr::Binary { op, left, right, .. } => {
                let prec = op.precedence();
                let (lmin, rmin) = if *op == BinaryOp::Exp {
                    // Right-associative; unary left operand must be wrapped.
                    (PREC_POSTFIX, prec)
                } else {
                    (prec, prec + 1)
                };
                self.expr(left, lmin);
                self.w.space();
                self.w.token(op.as_str());
                self.w.space();
                self.expr(right, rmin);
            }
            Expr::Logical { op, left, right, .. } => {
                let prec = op.precedence();
                // `??` must not mix unparenthesized with `&&`/`||`.
                let mixes = |child: &Expr| {
                    matches!(
                        (op, child),
                        (
                            LogicalOp::NullishCoalescing,
                            Expr::Logical { op: LogicalOp::And | LogicalOp::Or, .. }
                        ) | (
                            LogicalOp::Or | LogicalOp::And,
                            Expr::Logical { op: LogicalOp::NullishCoalescing, .. }
                        )
                    )
                };
                let lmin = if mixes(left) { prec + 1 } else { prec };
                let rmin = prec + 1;
                self.expr(left, lmin);
                self.w.space();
                self.w.token(op.as_str());
                self.w.space();
                self.expr(right, rmin);
            }
            Expr::Assign { op, target, value, .. } => {
                self.pat(target);
                self.w.space();
                self.w.token(op.as_str());
                self.w.space();
                self.expr(value, PREC_ASSIGN);
            }
            Expr::Conditional { test, consequent, alternate, .. } => {
                self.expr(test, PREC_COND + 1);
                self.w.space();
                self.w.token("?");
                self.w.space();
                self.expr(consequent, PREC_ASSIGN);
                self.w.space();
                self.w.token(":");
                self.w.space();
                self.expr(alternate, PREC_ASSIGN);
            }
            Expr::Call { callee, args, .. } => {
                self.expr(callee, PREC_CALL);
                self.args(args);
            }
            Expr::New { callee, args, .. } => {
                self.w.token("new");
                // The callee of `new` must not contain a top-level call.
                let callee_prec = expr_prec(callee);
                if callee_prec < PREC_MEMBER || contains_call(callee) {
                    self.w.token("(");
                    self.expr(callee, PREC_SEQ);
                    self.w.token(")");
                } else {
                    self.expr(callee, PREC_MEMBER);
                }
                if !args.is_empty() {
                    self.args(args);
                } else {
                    self.w.token("(");
                    self.w.token(")");
                }
            }
            Expr::Member { object, property, optional, .. } => {
                // Numeric literal objects need parens: `(1).toString()`.
                let needs_parens =
                    matches!(&**object, Expr::Lit(Lit { value: LitValue::Num(_), .. }))
                        || expr_prec(object) < PREC_CALL;
                if needs_parens {
                    self.w.token("(");
                    self.expr(object, PREC_SEQ);
                    self.w.token(")");
                } else {
                    self.expr(object, PREC_CALL);
                }
                match property {
                    MemberProp::Ident(i) => {
                        self.w.token(if *optional { "?." } else { "." });
                        self.w.token(&i.name);
                    }
                    MemberProp::Computed(p) => {
                        if *optional {
                            self.w.token("?.");
                        }
                        self.w.token("[");
                        self.expr(p, PREC_SEQ);
                        self.w.token("]");
                    }
                    MemberProp::Private(p) => {
                        self.w.token(if *optional { "?." } else { "." });
                        self.private_name(p);
                    }
                }
            }
            Expr::Sequence { exprs, .. } => {
                for (i, ex) in exprs.iter().enumerate() {
                    if i > 0 {
                        self.w.token(",");
                        self.w.space();
                    }
                    self.expr(ex, PREC_ASSIGN);
                }
            }
            Expr::Spread { arg, .. } => {
                self.w.token("...");
                self.expr(arg, PREC_ASSIGN);
            }
            Expr::Yield { arg, delegate, .. } => {
                self.w.token("yield");
                if *delegate {
                    self.w.token("*");
                }
                if let Some(a) = arg {
                    self.w.space();
                    self.expr(a, PREC_ASSIGN);
                }
            }
            Expr::Await { arg, .. } => {
                self.w.token("await");
                self.expr(arg, PREC_UNARY);
            }
            Expr::MetaProperty { meta, property, .. } => {
                self.w.token(&meta.name);
                self.w.token(".");
                self.w.token(&property.name);
            }
            Expr::ImportCall { arg, .. } => {
                self.w.token("import");
                self.w.token("(");
                self.expr(arg, PREC_ASSIGN);
                self.w.token(")");
            }
        }
    }

    fn args(&mut self, args: &[Expr]) {
        self.w.token("(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.w.token(",");
                self.w.space();
            }
            self.expr(a, PREC_ASSIGN);
        }
        self.w.token(")");
    }

    fn property(&mut self, p: &Property) {
        // Spread property.
        if let Expr::Spread { .. } = &p.value {
            self.expr(&p.value, PREC_SEQ);
            return;
        }
        match p.kind {
            PropKind::Get | PropKind::Set => {
                self.w.token(if p.kind == PropKind::Get { "get" } else { "set" });
                self.prop_key(&p.key, p.computed);
                if let Expr::Function(f) = &p.value {
                    self.params(&f.params);
                    self.w.space();
                    self.block(&f.body);
                }
                return;
            }
            PropKind::Init => {}
        }
        if p.method {
            if let Expr::Function(f) = &p.value {
                if f.is_async {
                    self.w.token("async");
                }
                if f.is_generator {
                    self.w.token("*");
                }
                self.prop_key(&p.key, p.computed);
                self.params(&f.params);
                self.w.space();
                self.block(&f.body);
                return;
            }
        }
        let shorthand_ok = p.shorthand
            && matches!((&p.key, &p.value), (PropKey::Ident(k), Expr::Ident(v)) if k.name == v.name);
        if shorthand_ok {
            self.expr(&p.value, PREC_PRIMARY);
            return;
        }
        self.prop_key(&p.key, p.computed);
        self.w.token(":");
        self.w.space();
        self.expr(&p.value, PREC_ASSIGN);
    }

    fn template(&mut self, quasis: &[TemplateElement], exprs: &[Expr]) {
        let mut out = String::from("`");
        for (i, q) in quasis.iter().enumerate() {
            if !q.raw.is_empty() {
                out.push_str(&q.raw);
            } else {
                out.push_str(&escape_template(&q.cooked));
            }
            if i < exprs.len() {
                out.push_str("${");
                // Flush accumulated text and print the expression.
                self.w.token(&out);
                out.clear();
                self.expr(&exprs[i], PREC_SEQ);
                out.push('}');
            }
        }
        out.push('`');
        self.w.token(&out);
    }

    fn lit(&mut self, l: &Lit) {
        match &l.value {
            LitValue::Str(s) => {
                let escaped = escape_string(s);
                self.w.token(&escaped);
            }
            LitValue::Num(n) => self.w.token(&format_number(*n)),
            LitValue::BigInt(d) => self.w.token(&format!("{}n", d)),
            LitValue::Bool(b) => self.w.token(if *b { "true" } else { "false" }),
            LitValue::Null => self.w.token("null"),
            LitValue::Regex { pattern, flags } => {
                let pat = if pattern.is_empty() { "(?:)" } else { pattern };
                self.w.token(&format!("/{}/{}", pat, flags));
            }
        }
    }
}

fn contains_call(e: &Expr) -> bool {
    match e {
        Expr::Call { .. } => true,
        Expr::Member { object, .. } => contains_call(object),
        Expr::TaggedTemplate { tag, .. } => contains_call(tag),
        Expr::New { callee, .. } => contains_call(callee),
        _ => false,
    }
}

/// Formats a number the way JavaScript source can express it.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        return "NaN".into();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity".into() } else { "-Infinity".into() };
    }
    if n == 0.0 && n.is_sign_negative() {
        return "-0".into();
    }
    format!("{}", n)
}

/// Escapes a cooked string value as a single-quoted JavaScript literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\0' => out.push_str("\\0"),
            '\u{8}' => out.push_str("\\b"),
            '\u{b}' => out.push_str("\\v"),
            '\u{c}' => out.push_str("\\f"),
            '\u{2028}' => out.push_str("\\u2028"),
            '\u{2029}' => out.push_str("\\u2029"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\x{:02x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('\'');
    out
}

fn escape_template(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '`' => out.push_str("\\`"),
            '\\' => out.push_str("\\\\"),
            '$' if chars.peek() == Some(&'{') => out.push_str("\\$"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    #[test]
    fn custom_indent_is_honoured() {
        let prog = parse("if(x){f();}").unwrap();
        let out = generate(&prog, &CodegenOptions { minify: false, indent: "\t".into() });
        assert!(out.contains("\tf();"), "{:?}", out);
    }

    #[test]
    fn minified_options_constructor() {
        let o = CodegenOptions::minified();
        assert!(o.minify);
        let prog = parse("a();").unwrap();
        assert_eq!(generate(&prog, &o), "a();");
    }

    #[test]
    fn empty_program_prints_empty() {
        let prog = parse("").unwrap();
        assert_eq!(to_source(&prog), "");
        assert_eq!(to_minified(&prog), "");
    }

    #[test]
    fn starts_ambiguously_cases() {
        let obj = parse("x = {a: 1};").unwrap();
        if let jsdetect_ast::Stmt::Expr { expr, .. } = &obj.body[0] {
            if let Expr::Assign { value, .. } = expr {
                assert!(starts_ambiguously(value));
            }
        }
        let plain = parse("x = 1 + 2;").unwrap();
        if let jsdetect_ast::Stmt::Expr { expr, .. } = &plain.body[0] {
            assert!(!starts_ambiguously(expr));
        }
    }

    #[test]
    fn contains_top_level_in_detection() {
        let prog = parse("x = ('a' in o);").unwrap();
        if let jsdetect_ast::Stmt::Expr { expr, .. } = &prog.body[0] {
            assert!(contains_top_level_in(expr));
        }
        let prog = parse("x = f(a);").unwrap();
        if let jsdetect_ast::Stmt::Expr { expr, .. } = &prog.body[0] {
            assert!(!contains_top_level_in(expr));
        }
    }
}

//! `unused-binding`: declared names that are never read.

use crate::{Diagnostic, LintContext, Rule, Severity};
use jsdetect_flow::{BindingKind, ScopeKind};

/// Flags bindings with zero read references. Junk declarations from
/// dead-code injection are never read; real code reads almost everything
/// it declares. Parameters and top-level functions/classes are exempt
/// (callers may be external to the script).
pub struct UnusedBinding;

impl Rule for UnusedBinding {
    fn name(&self) -> &'static str {
        "unused-binding"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let scopes = &ctx.graph.scopes;
        for (id, b) in scopes.bindings().iter().enumerate() {
            if matches!(b.kind, BindingKind::Param | BindingKind::CatchParam) {
                continue;
            }
            let top_level = scopes.scopes()[b.scope].kind == ScopeKind::Global;
            if top_level && matches!(b.kind, BindingKind::Function | BindingKind::Class) {
                continue;
            }
            let (reads, _) = scopes.rw_counts(id);
            if reads > 0 {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                span: b.decl_span,
                severity: self.severity(),
                message: format!("'{}' is declared but never read", b.name),
                data: vec![("name", b.name.to_string()), ("kind", format!("{:?}", b.kind))],
            });
        }
    }
}

//! `self-defending-tostring`: the formatting guard's regex pump.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Flags `.search()` / `.test()` calls whose pattern is a nested
/// quantified group like `(((.+)+)+)+` — the catastrophic-backtracking
/// pump a self-defending wrapper runs against its own `toString()` output
/// to punish beautification (paper §II-A).
pub struct SelfDefendingToString;

impl Rule for SelfDefendingToString {
    fn name(&self) -> &'static str {
        "self-defending-tostring"
    }

    fn severity(&self) -> Severity {
        Severity::Signature
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for &span in &ctx.facts.packed_search_calls {
            out.push(Diagnostic {
                rule: self.name(),
                span,
                severity: self.severity(),
                message:
                    "catastrophic-backtracking regex applied to a function's own source (self-defending guard)"
                        .to_string(),
                data: Vec::new(),
            });
        }
    }
}

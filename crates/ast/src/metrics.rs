//! Structural AST metrics.
//!
//! The paper's generic features include the AST depth and breadth divided
//! by the script's number of lines (§III-B). This module computes those
//! plus per-kind node counts, shared by the feature extractor and tests.

use crate::kind::NodeKind;
use crate::nodes::Program;
use crate::visit::walk;

/// Summary of the tree shape of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Total number of AST nodes (including the `Program` root).
    pub node_count: usize,
    /// Maximum node depth (root = 0).
    pub max_depth: usize,
    /// Maximum number of nodes sharing one depth level ("breadth").
    pub max_breadth: usize,
}

/// Computes [`TreeShape`] in a single traversal.
pub fn tree_shape(program: &Program) -> TreeShape {
    let mut per_depth: Vec<usize> = Vec::new();
    let mut node_count = 0usize;
    let mut max_depth = 0usize;
    walk(program, &mut |_, d| {
        node_count += 1;
        max_depth = max_depth.max(d);
        if per_depth.len() <= d {
            per_depth.resize(d + 1, 0);
        }
        per_depth[d] += 1;
    });
    TreeShape { node_count, max_depth, max_breadth: per_depth.into_iter().max().unwrap_or(0) }
}

/// Per-kind node counts, indexable by [`NodeKind::id`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindCounts {
    counts: [usize; NodeKind::COUNT],
    total: usize,
}

impl KindCounts {
    /// Counts all node kinds in `program`.
    pub fn of(program: &Program) -> Self {
        let mut counts = [0usize; NodeKind::COUNT];
        let mut total = 0usize;
        walk(program, &mut |n, _| {
            counts[n.kind().id() as usize] += 1;
            total += 1;
        });
        KindCounts { counts, total }
    }

    /// Number of nodes of the given kind.
    pub fn get(&self, kind: NodeKind) -> usize {
        self.counts[kind.id() as usize]
    }

    /// Total node count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Proportion of nodes of the given kind, in `[0, 1]`.
    pub fn proportion(&self, kind: NodeKind) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(kind) as f64 / self.total as f64
        }
    }

    /// Sum of counts over several kinds.
    pub fn sum(&self, kinds: &[NodeKind]) -> usize {
        kinds.iter().map(|k| self.get(*k)).sum()
    }
}

/// Counts the number of source lines (at least 1 for non-empty source).
pub fn line_count(src: &str) -> usize {
    if src.is_empty() {
        return 0;
    }
    src.lines().count().max(1)
}

/// Average number of characters per line.
pub fn avg_chars_per_line(src: &str) -> f64 {
    let lines = line_count(src);
    if lines == 0 {
        0.0
    } else {
        src.len() as f64 / lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::ops::VarKind;

    #[test]
    fn shape_of_flat_program() {
        // Program > 3 ExpressionStatements > each a Literal.
        let p = program(vec![
            expr_stmt(num_lit(1.0)),
            expr_stmt(num_lit(2.0)),
            expr_stmt(num_lit(3.0)),
        ]);
        let s = tree_shape(&p);
        assert_eq!(s.node_count, 7);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_breadth, 3);
    }

    #[test]
    fn shape_of_nested_program() {
        let p = program(vec![if_stmt(
            bool_lit(true),
            block(vec![if_stmt(bool_lit(false), block(vec![]), None)]),
            None,
        )]);
        let s = tree_shape(&p);
        // Program(0) If(1) Lit(2)/Block(2) If(3) Lit(4)/Block(4)
        assert_eq!(s.max_depth, 4);
    }

    #[test]
    fn kind_counts_and_proportions() {
        let p = program(vec![var_decl(VarKind::Var, "x", Some(num_lit(1.0)))]);
        let c = KindCounts::of(&p);
        assert_eq!(c.get(NodeKind::VariableDeclaration), 1);
        assert_eq!(c.get(NodeKind::VariableDeclarator), 1);
        assert_eq!(c.get(NodeKind::Identifier), 1);
        assert_eq!(c.get(NodeKind::Literal), 1);
        assert_eq!(c.total(), 5);
        assert!((c.proportion(NodeKind::Literal) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_source_metrics() {
        assert_eq!(line_count(""), 0);
        assert_eq!(avg_chars_per_line(""), 0.0);
    }

    #[test]
    fn chars_per_line() {
        let src = "aaaa\nbb\n"; // 8 bytes, 2 lines
        assert_eq!(line_count(src), 2);
        assert!((avg_chars_per_line(src) - 4.0).abs() < 1e-12);
    }
}

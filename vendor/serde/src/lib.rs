//! Minimal, offline-compatible subset of the `serde` data model.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors just enough of serde's surface to support the repository's needs:
//! `#[derive(Serialize, Deserialize)]` on non-generic structs and enums (with
//! serde's external enum tagging), the `#[serde(skip)]` field attribute, and
//! the `serde_json` string round-trip. Instead of serde's visitor machinery,
//! both traits go through an owned [`Value`] tree, which is dramatically
//! simpler and fast enough for model/result (de)serialization.

#![allow(clippy::all)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Owned JSON-shaped value tree: the intermediate data model for both
/// serialization directions.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array elements if the value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Builds an "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {}, found {}", what, found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field by name; missing fields deserialize from `Null`
/// (so `Option<T>` fields default to `None` and required fields report a
/// useful error). Used by the derive macro.
pub fn from_field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("field `{}`: {}", name, e)))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{}`", name))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(irrefutable_let_patterns)]
            fn to_value(&self) -> Value {
                if let Ok(i) = i64::try_from(*self) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected("integer", v)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Float(f) => Ok(*f),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of {}, found {}", N, len)))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                let items = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                if items.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected tuple of {}, found array of {}", LEN, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys that serialize to JSON object keys.
pub trait SerKey {
    /// Renders the key as an object-key string.
    fn ser_key(&self) -> String;
}

/// Map keys that parse back from JSON object keys.
pub trait DeKey: Sized {
    /// Parses the key from an object-key string.
    fn de_key(key: &str) -> Result<Self, DeError>;
}

impl SerKey for String {
    fn ser_key(&self) -> String {
        self.clone()
    }
}

impl SerKey for &str {
    fn ser_key(&self) -> String {
        self.to_string()
    }
}

impl DeKey for String {
    fn de_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl SerKey for $t {
            fn ser_key(&self) -> String {
                self.to_string()
            }
        }

        impl DeKey for $t {
            fn de_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!("bad integer key `{}`", key)))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.ser_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<K: DeKey + std::hash::Hash + Eq, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_obj().ok_or_else(|| DeError::expected("object", v))?;
        entries.iter().map(|(k, val)| Ok((K::de_key(k)?, V::from_value(val)?))).collect()
    }
}

impl<K: SerKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.ser_key(), v.to_value())).collect())
    }
}

impl<K: DeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_obj().ok_or_else(|| DeError::expected("object", v))?;
        entries.iter().map(|(k, val)| Ok((K::de_key(k)?, V::from_value(val)?))).collect()
    }
}

//! Name generators for identifier-rewriting passes.

use rand::rngs::StdRng;
use rand::Rng;

/// Words that can never be used as identifiers.
pub const RESERVED: &[&str] = &[
    "break",
    "case",
    "catch",
    "class",
    "const",
    "continue",
    "debugger",
    "default",
    "delete",
    "do",
    "else",
    "enum",
    "export",
    "extends",
    "false",
    "finally",
    "for",
    "function",
    "if",
    "implements",
    "import",
    "in",
    "instanceof",
    "interface",
    "let",
    "new",
    "null",
    "package",
    "private",
    "protected",
    "public",
    "return",
    "static",
    "super",
    "switch",
    "this",
    "throw",
    "true",
    "try",
    "typeof",
    "var",
    "void",
    "while",
    "with",
    "yield",
];

/// Returns `true` if `name` is a legal identifier (and not reserved).
pub fn is_valid_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {}
        _ => return false,
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$') {
        return false;
    }
    !RESERVED.contains(&name)
}

/// Generates obfuscator-style hex identifiers: `_0x3af2b1`.
#[derive(Debug)]
pub struct HexNameGen {
    rng: StdRng,
    used: std::collections::HashSet<String>,
}

impl HexNameGen {
    /// Creates a generator with the given RNG.
    pub fn new(rng: StdRng) -> Self {
        HexNameGen { rng, used: std::collections::HashSet::new() }
    }

    /// Produces a fresh hex name.
    pub fn next_name(&mut self) -> String {
        loop {
            let v: u32 = self.rng.gen_range(0x10000..0xFFFFFF);
            let name = format!("_0x{:x}", v);
            if self.used.insert(name.clone()) {
                return name;
            }
        }
    }
}

/// Generates minifier-style short identifiers: `a`, `b`, …, `z`, `aa`, ….
#[derive(Debug, Default)]
pub struct ShortNameGen {
    counter: usize,
}

impl ShortNameGen {
    /// Creates a generator starting at `a`.
    pub fn new() -> Self {
        ShortNameGen { counter: 0 }
    }

    /// Produces the next short name, skipping reserved words.
    pub fn next_name(&mut self) -> String {
        loop {
            let name = short_name(self.counter);
            self.counter += 1;
            if is_valid_identifier(&name) {
                return name;
            }
        }
    }
}

/// The `n`-th name in the sequence a..z, aa..az, ba.. etc.
fn short_name(mut n: usize) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::new();
    loop {
        out.push(ALPHA[n % 26]);
        n /= 26;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    out.reverse();
    String::from_utf8(out).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn short_names_progress() {
        let mut g = ShortNameGen::new();
        assert_eq!(g.next_name(), "a");
        assert_eq!(g.next_name(), "b");
        for _ in 2..25 {
            g.next_name();
        }
        assert_eq!(g.next_name(), "z");
        assert_eq!(g.next_name(), "aa");
        assert_eq!(g.next_name(), "ab");
    }

    #[test]
    fn short_names_skip_reserved() {
        let mut g = ShortNameGen::new();
        // Generate enough names to pass `do` and `if`; none may be reserved.
        let names: Vec<_> = (0..800).map(|_| g.next_name()).collect();
        for n in &names {
            assert!(is_valid_identifier(n), "invalid: {}", n);
        }
        assert!(!names.contains(&"do".to_string()));
        assert!(!names.contains(&"if".to_string()));
        assert!(!names.contains(&"in".to_string()));
    }

    #[test]
    fn hex_names_unique_and_valid() {
        let mut g = HexNameGen::new(StdRng::seed_from_u64(7));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let n = g.next_name();
            assert!(n.starts_with("_0x"));
            assert!(is_valid_identifier(&n));
            assert!(seen.insert(n));
        }
    }

    #[test]
    fn hex_names_deterministic_per_seed() {
        let a: Vec<_> = (0..5)
            .scan(HexNameGen::new(StdRng::seed_from_u64(1)), |g, _| Some(g.next_name()))
            .collect();
        let b: Vec<_> = (0..5)
            .scan(HexNameGen::new(StdRng::seed_from_u64(1)), |g, _| Some(g.next_name()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn identifier_validity() {
        assert!(is_valid_identifier("_0xab"));
        assert!(is_valid_identifier("$"));
        assert!(!is_valid_identifier("for"));
        assert!(!is_valid_identifier("1abc"));
        assert!(!is_valid_identifier(""));
        assert!(!is_valid_identifier("a-b"));
    }
}

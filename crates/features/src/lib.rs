//! Feature extraction for the `jsdetect` detectors (paper §III-B).
//!
//! Scripts are abstracted by their AST enhanced with control and data
//! flows ([`analyze_script`]); from that analysis two feature families are
//! computed — AST 4-grams over the pre-order node-kind stream, and
//! hand-picked features capturing the syntactic traces of the ten
//! transformation techniques — and assembled into a consistent
//! [`VectorSpace`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
pub mod deltas;
mod guarded;
mod handpicked;
mod ngrams;
mod payload;
mod space;

pub use analysis::{analyze_script, ScriptAnalysis};
pub use deltas::{delta_feature_names, neutral_deltas, normalize_deltas, N_NORMALIZE};
pub use guarded::{analyze_script_guarded, analyze_script_lexer_only, GuardedScript};
pub use handpicked::{handpicked_features, FEATURE_NAMES, N_HANDPICKED};
pub use jsdetect_lint::LintSummary;
pub use ngrams::{ngram_counts, Gram, NgramVocab};
pub use payload::FeaturePayload;
pub use space::{FeatureConfig, VectorSpace, FEATURE_SPACE_VERSION};

//! §IV-B1 sanity check — classification of a fresh regular-only corpus
//! (the paper's stand-in is the 150,000-sample Raychev et al. corpus;
//! target: 98.65% classified regular).

use jsdetect_corpus::regular_corpus;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct HoldoutResult {
    regular_acc: f64,
    n: usize,
    paper_acc: f64,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let n = args.scaled(400);
    eprintln!("[holdout] generating {} fresh regular scripts (unseen seeds)...", n);
    // Seed offset far outside the training stream.
    let scripts = regular_corpus(n, args.seed.wrapping_add(0xDEAD_0000));
    let srcs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let preds = detectors.level1.predict_many(&srcs);
    let mut ok = 0usize;
    let mut total = 0usize;
    for p in preds.iter().flatten() {
        total += 1;
        if !p.is_transformed() {
            ok += 1;
        }
    }
    let acc = 100.0 * ok as f64 / total.max(1) as f64;

    println!("Fresh regular-corpus holdout (§IV-B1 verification), n={}", total);
    println!("classified regular: {:.2}% (paper, Raychev corpus: 98.65%)", acc);

    or_exit(write_json(
        &args,
        "eval_regular_holdout",
        &HoldoutResult { regular_acc: acc, n: total, paper_acc: 98.65 },
    ));
}

//! K-fold cross-validation (the paper's validation methodology, §III-D3:
//! model selection over off-the-shelf systems on a dedicated split).

use crate::dataset::Dataset;
use crate::multilabel::{BaseParams, MultiLabel, Strategy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministically shuffled k-fold index splits.
///
/// Every sample appears in exactly one validation fold; folds differ in
/// size by at most one.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, sample) in idx.into_iter().enumerate() {
        folds[i % k].push(sample);
    }
    folds
}

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Mean exact-match (subset) accuracy across folds.
    pub mean_exact_match: f64,
    /// Per-fold exact-match accuracies.
    pub fold_scores: Vec<f64>,
}

/// Cross-validates a multi-label configuration.
///
/// Trains on `k-1` folds and scores exact label-set accuracy on the held
/// fold, for each fold in turn.
pub fn cross_validate(
    x: &[Vec<f32>],
    labels: &[Vec<bool>],
    strategy: Strategy,
    base: &BaseParams,
    k: usize,
    seed: u64,
) -> CvResult {
    assert_eq!(x.len(), labels.len());
    let data =
        Dataset::from_rows(x).expect("cross-validation needs a non-ragged, non-empty matrix");
    let folds = k_folds(x.len(), k, seed);
    let mut fold_scores = Vec::with_capacity(k);
    for held in &folds {
        if held.is_empty() {
            fold_scores.push(0.0);
            continue;
        }
        let held_set: std::collections::HashSet<usize> = held.iter().copied().collect();
        // Training rows are gathered by index into a fresh columnar
        // dataset — no per-row clones.
        let mut train_rows = Vec::with_capacity(x.len() - held.len());
        let mut train_y = Vec::with_capacity(x.len() - held.len());
        for (i, row_labels) in labels.iter().enumerate() {
            if !held_set.contains(&i) {
                train_rows.push(i as u32);
                train_y.push(row_labels.clone());
            }
        }
        let train_data = data.gather_rows(&train_rows);
        let model = MultiLabel::fit_dataset(&train_data, &train_y, strategy, base);
        let held_rows: Vec<u32> = held.iter().map(|&i| i as u32).collect();
        let probs = model.predict_proba_batch(&data.gather_rows(&held_rows));
        let mut ok = 0usize;
        for (&i, p) in held.iter().zip(&probs) {
            let pred: Vec<bool> = p.iter().map(|&v| v >= 0.5).collect();
            if pred == labels[i] {
                ok += 1;
            }
        }
        fold_scores.push(ok as f64 / held.len().max(1) as f64);
    }
    let mean = fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
    CvResult { mean_exact_match: mean, fold_scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;

    #[test]
    fn folds_partition_all_samples() {
        let folds = k_folds(23, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn folds_deterministic_per_seed() {
        assert_eq!(k_folds(40, 4, 1), k_folds(40, 4, 1));
        assert_ne!(k_folds(40, 4, 1), k_folds(40, 4, 2));
    }

    #[test]
    fn cv_scores_separable_data_highly() {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let v = (i % 10) as f32;
            x.push(vec![v, (i % 3) as f32]);
            labels.push(vec![v > 4.5]);
        }
        let base = BaseParams::Forest(ForestParams { n_trees: 8, ..Default::default() });
        let r = cross_validate(&x, &labels, Strategy::ClassifierChain, &base, 4, 3);
        assert_eq!(r.fold_scores.len(), 4);
        assert!(r.mean_exact_match > 0.9, "mean {}", r.mean_exact_match);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn single_fold_rejected() {
        let _ = k_folds(10, 1, 0);
    }
}

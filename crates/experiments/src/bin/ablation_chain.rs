//! §III-D3 ablation — classifier chains vs. the independence assumption,
//! and random forest vs. naive Bayes vs. a single tree.
//!
//! The paper's validation study selected the random forest with classifier
//! chains; this experiment reproduces that comparison on the validation
//! split.

use jsdetect::{train_pipeline, DetectorConfig, Strategy};
use jsdetect_experiments::{or_exit, write_json, Args};
use jsdetect_ml::{metrics, BaseParams, ForestParams, TreeParams};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    model: String,
    strategy: String,
    level1_overall_acc: f64,
    level2_exact_acc: f64,
    train_seconds: f64,
}

fn main() {
    let args = Args::parse();
    let n = args.scaled(120);
    let mut rows = Vec::new();

    let configs: Vec<(String, String, DetectorConfig)> = vec![
        (
            "random forest".into(),
            "chain".into(),
            DetectorConfig {
                strategy: Strategy::ClassifierChain,
                base: BaseParams::Forest(ForestParams::default()),
                ..DetectorConfig::default()
            },
        ),
        (
            "random forest".into(),
            "independent".into(),
            DetectorConfig {
                strategy: Strategy::BinaryRelevance,
                base: BaseParams::Forest(ForestParams::default()),
                ..DetectorConfig::default()
            },
        ),
        (
            "naive bayes".into(),
            "chain".into(),
            DetectorConfig {
                strategy: Strategy::ClassifierChain,
                base: BaseParams::Bayes,
                ..DetectorConfig::default()
            },
        ),
        (
            "naive bayes".into(),
            "independent".into(),
            DetectorConfig {
                strategy: Strategy::BinaryRelevance,
                base: BaseParams::Bayes,
                ..DetectorConfig::default()
            },
        ),
        (
            "single tree".into(),
            "chain".into(),
            DetectorConfig {
                strategy: Strategy::ClassifierChain,
                base: BaseParams::Tree(TreeParams::default(), 7),
                ..DetectorConfig::default()
            },
        ),
    ];

    for (model, strategy, cfg) in configs {
        let t0 = std::time::Instant::now();
        let out = train_pipeline(n, args.seed, &cfg.with_seed(args.seed));
        let secs = t0.elapsed().as_secs_f64();

        // Level-1 overall on the held-out pools.
        let mut ok = 0usize;
        let mut total = 0usize;
        for (pool, class) in [
            (&out.test_regular, "regular"),
            (&out.test_minified, "minified"),
            (&out.test_obfuscated, "obfuscated"),
        ] {
            let srcs: Vec<&str> = pool.iter().map(|s| s.src.as_str()).collect();
            for p in out.detectors.level1.predict_many(&srcs).iter().flatten() {
                total += 1;
                let correct = match class {
                    "regular" => !p.is_transformed(),
                    "minified" => p.minified >= 0.5,
                    _ => p.obfuscated >= 0.5,
                };
                if correct {
                    ok += 1;
                }
            }
        }
        let l1 = 100.0 * ok as f64 / total.max(1) as f64;

        // Level-2 exact-set accuracy.
        let srcs: Vec<&str> = out.test_level2.iter().map(|s| s.src.as_str()).collect();
        let probs = out.detectors.level2.predict_proba_many(&srcs);
        let mut hard = Vec::new();
        let mut truth = Vec::new();
        for (p, s) in probs.into_iter().zip(&out.test_level2) {
            if let Some(p) = p {
                hard.push(p.iter().map(|v| *v >= 0.5).collect::<Vec<bool>>());
                truth.push(s.label_vector());
            }
        }
        let l2 = 100.0 * metrics::exact_match(&hard, &truth);

        println!(
            "{:16} {:12} level1 {:6.2}%  level2-exact {:6.2}%  ({:.1}s)",
            model, strategy, l1, l2, secs
        );
        rows.push(AblationRow {
            model,
            strategy,
            level1_overall_acc: l1,
            level2_exact_acc: l2,
            train_seconds: secs,
        });
    }

    println!("\npaper: the random forest with classifier chains performed best.");
    or_exit(write_json(&args, "ablation_chain", &rows));
}

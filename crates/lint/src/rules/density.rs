//! `non-alphanumeric-density`: identifier-charset and source-charset
//! anomalies.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Minimum binding count before the hex-identifier ratio is meaningful.
const MIN_BINDINGS: usize = 4;
/// Hex-pattern share of bindings that triggers the rule.
const HEX_RATIO: f32 = 0.5;
/// Minimum source size before the charset ratio is meaningful.
const MIN_SRC_LEN: usize = 64;
/// Share of `[]()!+` bytes that triggers the no-alphanumeric finding.
const CHARSET_RATIO: f32 = 0.5;

/// Flags two charset anomalies: most declared names drawn from the
/// `_0x…` hex namespace (identifier obfuscation), and source text
/// composed mostly of the six JSFuck characters `[]()!+`
/// (no-alphanumeric encoding).
pub struct NonAlphanumericDensity;

fn is_hex_name(name: &str) -> bool {
    name.strip_prefix("_0x")
        .is_some_and(|rest| !rest.is_empty() && rest.chars().take(4).all(|c| c.is_ascii_hexdigit()))
}

impl Rule for NonAlphanumericDensity {
    fn name(&self) -> &'static str {
        "non-alphanumeric-density"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let bindings = ctx.graph.scopes.bindings();
        if bindings.len() >= MIN_BINDINGS {
            let hex = bindings.iter().filter(|b| is_hex_name(&b.name)).count();
            let ratio = hex as f32 / bindings.len() as f32;
            if ratio >= HEX_RATIO {
                out.push(Diagnostic {
                    rule: self.name(),
                    span: ctx.program.span,
                    severity: self.severity(),
                    message: format!(
                        "{} of {} declared names are hex-pattern identifiers (_0x…)",
                        hex,
                        bindings.len()
                    ),
                    data: vec![("hex_ratio", format!("{:.2}", ratio))],
                });
            }
        }
        if ctx.src.len() >= MIN_SRC_LEN {
            let charset = ctx
                .src
                .bytes()
                .filter(|b| matches!(b, b'[' | b']' | b'(' | b')' | b'!' | b'+'))
                .count();
            let ratio = charset as f32 / ctx.src.len() as f32;
            if ratio >= CHARSET_RATIO {
                out.push(Diagnostic {
                    rule: self.name(),
                    span: ctx.program.span,
                    severity: self.severity(),
                    message: format!(
                        "{:.0}% of the source is the []()!+ charset (no-alphanumeric encoding)",
                        100.0 * ratio
                    ),
                    data: vec![("charset_ratio", format!("{:.2}", ratio))],
                });
            }
        }
    }
}

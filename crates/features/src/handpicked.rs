//! Hand-picked features (paper §III-B).
//!
//! Each feature captures a syntactic trace left by regular code or by one
//! of the ten transformation techniques: layout statistics for
//! minification, identifier-shape statistics for identifier obfuscation,
//! string-operation and encoding statistics for string obfuscation,
//! bracket-vs-dot and array statistics for the global-array technique,
//! dispatch-loop statistics for control-flow flattening, charset
//! statistics for no-alphanumeric, and guard signatures for
//! self-defending / debug protection.

use crate::analysis::ScriptAnalysis;
use jsdetect_ast::metrics::{avg_chars_per_line, line_count};
use jsdetect_ast::*;
use jsdetect_flow::{DefValueKind, RefKind};
use jsdetect_lexer::TokenKind;

/// Names of the hand-picked features, index-aligned with
/// [`handpicked_features`].
pub const FEATURE_NAMES: &[&str] = &[
    "avg_chars_per_line",
    "log_max_line_len",
    "log_line_count",
    "log_byte_size",
    "ast_depth_per_line",
    "ast_breadth_per_line",
    "ast_nodes_per_line",
    "whitespace_ratio",
    "comment_byte_ratio",
    "comments_per_line",
    "prop_identifier",
    "prop_literal",
    "prop_call",
    "prop_member",
    "member_per_unique_ident",
    "prop_binary",
    "prop_var_decl",
    "prop_string_literal",
    "prop_numeric_literal",
    "avg_identifier_len",
    "avg_binding_len",
    "unique_ident_ratio",
    "hex_binding_ratio",
    "short_binding_ratio",
    "avg_string_len",
    "log_max_string_len",
    "avg_string_entropy",
    "hexlike_string_ratio",
    "ternary_per_statement",
    "bracket_member_ratio",
    "avg_array_size",
    "avg_object_size",
    "computed_member_def_ratio",
    "string_op_call_ratio",
    "eval_like_per_call",
    "debugger_per_statement",
    "debugger_string_present",
    "packed_regex_present",
    "avg_cases_per_switch",
    "literal_true_loop_ratio",
    "cf_edges_per_node",
    "df_edges_per_ident",
    "global_ref_ratio",
    "functions_per_line",
    "avg_params_per_function",
    "prop_new_expr",
    "jsfuck_charset_ratio",
    "alnum_char_ratio",
    "punct_token_ratio",
    "log_ast_depth",
    "prop_update_expr",
    "prop_sequence_expr",
    "not_on_number_per_node",
    "void_zero_per_node",
    "switch_in_loop_ratio",
    "string_split_concat_ratio",
    "unused_binding_ratio",
    "opaque_string_test_ratio",
];

/// Number of hand-picked features.
pub const N_HANDPICKED: usize = FEATURE_NAMES.len();

/// Computes the hand-picked feature vector for an analyzed script.
pub fn handpicked_features(a: &ScriptAnalysis) -> Vec<f32> {
    let src = &a.src;
    let bytes = src.len().max(1) as f64;
    let lines = line_count(src).max(1) as f64;
    let nodes = a.kinds.total().max(1) as f64;
    let w = Walked::collect(&a.program);

    let n_idents = w.ident_occurrences.max(1) as f64;
    let n_literals = a.kinds.get(NodeKind::Literal).max(1) as f64;
    let n_members = a.kinds.get(NodeKind::MemberExpression).max(1) as f64;
    let n_calls = a.kinds.get(NodeKind::CallExpression).max(1) as f64;
    let n_statements = statement_count(&a.kinds).max(1) as f64;
    let n_strings = w.string_count.max(1) as f64;
    let n_functions = function_count(&a.kinds).max(1) as f64;
    let n_loops = loop_count(&a.kinds).max(1) as f64;

    let bindings = a.graph.scopes.bindings();
    let n_bindings = bindings.len().max(1) as f64;
    let unique_idents = w.unique_idents.len().max(1) as f64;

    let comment_bytes: u32 = a.comments.iter().map(|c| c.span.len()).sum();
    let ws_chars = src.chars().filter(|c| c.is_whitespace()).count() as f64;
    let max_line = src.lines().map(str::len).max().unwrap_or(0) as f64;

    let hex_bindings = bindings.iter().filter(|b| is_hex_name(&b.name)).count() as f64;
    let short_bindings = bindings.iter().filter(|b| b.name.len() <= 2).count() as f64;
    let binding_len_sum: usize = bindings.iter().map(|b| b.name.len()).sum();

    let computed_defs = a
        .graph
        .scopes
        .def_values()
        .iter()
        .filter(|(b, k)| b.is_some() && *k == DefValueKind::ComputedMember)
        .count() as f64;
    let total_defs = a.graph.scopes.def_values().len().max(1) as f64;

    let unused_bindings = (0..bindings.len())
        .filter(|&b| {
            !a.graph
                .scopes
                .references()
                .iter()
                .any(|r| r.binding == Some(b) && r.kind != RefKind::Write)
        })
        .count() as f64;

    let n_refs = a.graph.scopes.references().len().max(1) as f64;
    let global_refs = a.graph.scopes.global_refs().count() as f64;
    let read_refs =
        a.graph.scopes.references().iter().filter(|r| r.kind != RefKind::Write).count().max(1)
            as f64;

    let punct_tokens =
        a.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Punct(_))).count() as f64;
    let n_tokens = a.tokens.len().max(1) as f64;

    let jsfuck_chars =
        src.chars().filter(|c| matches!(c, '[' | ']' | '(' | ')' | '!' | '+')).count() as f64;
    let alnum_chars = src.chars().filter(|c| c.is_alphanumeric()).count() as f64;

    let v = vec![
        avg_chars_per_line(src) as f32,
        (max_line.ln_1p()) as f32,
        (lines.ln_1p()) as f32,
        (bytes.ln_1p()) as f32,
        (a.shape.max_depth as f64 / lines) as f32,
        (a.shape.max_breadth as f64 / lines) as f32,
        (nodes / lines) as f32,
        (ws_chars / bytes) as f32,
        (comment_bytes as f64 / bytes) as f32,
        (a.comments.len() as f64 / lines) as f32,
        a.kinds.proportion(NodeKind::Identifier) as f32,
        a.kinds.proportion(NodeKind::Literal) as f32,
        a.kinds.proportion(NodeKind::CallExpression) as f32,
        a.kinds.proportion(NodeKind::MemberExpression) as f32,
        (n_members / unique_idents) as f32,
        a.kinds.proportion(NodeKind::BinaryExpression) as f32,
        a.kinds.proportion(NodeKind::VariableDeclaration) as f32,
        (w.string_count as f64 / n_literals) as f32,
        (w.number_count as f64 / n_literals) as f32,
        (w.ident_len_sum as f64 / n_idents) as f32,
        (binding_len_sum as f64 / n_bindings) as f32,
        (unique_idents / n_idents) as f32,
        (hex_bindings / n_bindings) as f32,
        (short_bindings / n_bindings) as f32,
        (w.string_len_sum as f64 / n_strings) as f32,
        ((w.max_string_len as f64).ln_1p()) as f32,
        (w.string_entropy_sum / n_strings) as f32,
        (w.hexlike_strings as f64 / n_strings) as f32,
        (a.kinds.get(NodeKind::ConditionalExpression) as f64 / n_statements) as f32,
        (w.computed_members as f64 / n_members) as f32,
        (w.array_elems_sum as f64 / a.kinds.get(NodeKind::ArrayExpression).max(1) as f64) as f32,
        (w.object_props_sum as f64 / a.kinds.get(NodeKind::ObjectExpression).max(1) as f64) as f32,
        (computed_defs / total_defs) as f32,
        (w.string_op_calls as f64 / n_calls) as f32,
        (w.eval_like_calls as f64 / n_calls) as f32,
        (a.kinds.get(NodeKind::DebuggerStatement) as f64 / n_statements) as f32,
        if w.debugger_string { 1.0 } else { 0.0 },
        if w.packed_regex { 1.0 } else { 0.0 },
        (w.case_count as f64 / a.kinds.get(NodeKind::SwitchStatement).max(1) as f64) as f32,
        (w.literal_true_loops as f64 / n_loops) as f32,
        (a.graph.control_flow.edges.len() as f64 / a.graph.control_flow.node_count.max(1) as f64)
            as f32,
        (a.graph.dataflow.edges.len() as f64 / read_refs) as f32,
        (global_refs / n_refs) as f32,
        (n_functions / lines) as f32,
        (w.param_count as f64 / n_functions) as f32,
        a.kinds.proportion(NodeKind::NewExpression) as f32,
        (jsfuck_chars / bytes) as f32,
        (alnum_chars / bytes) as f32,
        (punct_tokens / n_tokens) as f32,
        ((a.shape.max_depth as f64).ln_1p()) as f32,
        a.kinds.proportion(NodeKind::UpdateExpression) as f32,
        a.kinds.proportion(NodeKind::SequenceExpression) as f32,
        (w.not_on_number as f64 / nodes) as f32,
        (w.void_zero as f64 / nodes) as f32,
        (w.switch_in_loop as f64 / a.kinds.get(NodeKind::SwitchStatement).max(1) as f64) as f32,
        (w.string_concat_chains as f64 / n_strings) as f32,
        (unused_bindings / n_bindings) as f32,
        (w.opaque_string_tests as f64 / n_statements) as f32,
    ];
    debug_assert_eq!(v.len(), N_HANDPICKED);
    v
}

fn statement_count(kinds: &jsdetect_ast::metrics::KindCounts) -> usize {
    NodeKind::ALL.iter().filter(|k| k.is_statement()).map(|k| kinds.get(*k)).sum()
}

fn function_count(kinds: &jsdetect_ast::metrics::KindCounts) -> usize {
    kinds.sum(&[
        NodeKind::FunctionDeclaration,
        NodeKind::FunctionExpression,
        NodeKind::ArrowFunctionExpression,
    ])
}

fn loop_count(kinds: &jsdetect_ast::metrics::KindCounts) -> usize {
    kinds.sum(&[
        NodeKind::WhileStatement,
        NodeKind::DoWhileStatement,
        NodeKind::ForStatement,
        NodeKind::ForInStatement,
        NodeKind::ForOfStatement,
    ])
}

fn is_hex_name(name: &str) -> bool {
    name.len() >= 4 && name.starts_with("_0x") && name[3..].chars().all(|c| c.is_ascii_hexdigit())
}

/// Methods whose calls indicate string manipulation.
const STRING_OPS: &[&str] = &[
    "split",
    "reverse",
    "join",
    "fromCharCode",
    "charCodeAt",
    "charAt",
    "substr",
    "substring",
    "replace",
    "concat",
    "slice",
    "toString",
    "parseInt",
    "unescape",
    "escape",
    "atob",
    "btoa",
    "decodeURIComponent",
    "encodeURIComponent",
];

/// Quantities gathered in a single AST walk.
#[derive(Default)]
struct Walked {
    ident_occurrences: usize,
    ident_len_sum: usize,
    unique_idents: std::collections::HashSet<Atom>,
    string_count: usize,
    number_count: usize,
    string_len_sum: usize,
    max_string_len: usize,
    string_entropy_sum: f64,
    hexlike_strings: usize,
    computed_members: usize,
    array_elems_sum: usize,
    object_props_sum: usize,
    string_op_calls: usize,
    eval_like_calls: usize,
    debugger_string: bool,
    packed_regex: bool,
    case_count: usize,
    literal_true_loops: usize,
    param_count: usize,
    not_on_number: usize,
    void_zero: usize,
    switch_in_loop: usize,
    string_concat_chains: usize,
    opaque_string_tests: usize,
}

impl Walked {
    fn collect(program: &Program) -> Self {
        let mut w = Walked::default();
        walk(program, &mut |node, _| w.visit(node));
        w
    }

    fn visit(&mut self, node: NodeRef<'_>) {
        match node {
            NodeRef::Expr(e) => self.expr(e),
            NodeRef::Pat(Pat::Ident(i)) => self.ident(i.name),
            NodeRef::Ident(i) => self.ident(i.name),
            NodeRef::Stmt(s) => self.stmt(s),
            NodeRef::SwitchCase(_) => self.case_count += 1,
            _ => {}
        }
    }

    fn ident(&mut self, name: Atom) {
        self.ident_occurrences += 1;
        self.ident_len_sum += name.len();
        self.unique_idents.insert(name);
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::If { test, .. } if is_ident_vs_string_test(test) => {
                self.opaque_string_tests += 1;
            }
            Stmt::While { test, body, .. } | Stmt::DoWhile { test, body, .. } => {
                if is_literal_true(test) {
                    self.literal_true_loops += 1;
                }
                if contains_direct_switch(body) {
                    self.switch_in_loop += 1;
                }
                if is_ident_vs_string_test(test) {
                    self.opaque_string_tests += 1;
                }
            }
            Stmt::For { test, body, .. } => {
                if test.is_none() || test.as_ref().is_some_and(is_literal_true) {
                    self.literal_true_loops += 1;
                }
                if contains_direct_switch(body) {
                    self.switch_in_loop += 1;
                }
            }
            _ => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(i) => self.ident(i.name),
            Expr::Lit(l) => match &l.value {
                LitValue::Str(s) => {
                    self.string_count += 1;
                    self.string_len_sum += s.len();
                    self.max_string_len = self.max_string_len.max(s.len());
                    self.string_entropy_sum += byte_entropy(s);
                    if s.len() >= 4 && is_hexlike(s) {
                        self.hexlike_strings += 1;
                    }
                    if s == "debugger" {
                        self.debugger_string = true;
                    }
                    if is_packed_regex_source(s) {
                        self.packed_regex = true;
                    }
                }
                LitValue::Num(_) | LitValue::BigInt(_) => self.number_count += 1,
                LitValue::Regex { pattern, .. } if is_packed_regex_source(pattern) => {
                    self.packed_regex = true;
                }
                _ => {}
            },
            Expr::Member { property, .. } => {
                if matches!(property, MemberProp::Computed(_)) {
                    self.computed_members += 1;
                }
            }
            Expr::Array { elements, .. } => self.array_elems_sum += elements.len(),
            Expr::Object { props, .. } => self.object_props_sum += props.len(),
            Expr::Function(f) => self.param_count += f.params.len(),
            Expr::Arrow { params, .. } => self.param_count += params.len(),
            Expr::Call { callee, args, .. } => {
                if let Expr::Member { property: MemberProp::Ident(p), .. } = &**callee {
                    if STRING_OPS.contains(&p.name.as_str()) {
                        self.string_op_calls += 1;
                    }
                }
                if let Expr::Ident(i) = &**callee {
                    if STRING_OPS.contains(&i.name.as_str()) {
                        self.string_op_calls += 1;
                    }
                    if i.name == "eval" || i.name == "Function" {
                        self.eval_like_calls += 1;
                    }
                    if (i.name == "setTimeout" || i.name == "setInterval")
                        && matches!(
                            args.first(),
                            Some(Expr::Lit(Lit { value: LitValue::Str(_), .. }))
                        )
                    {
                        self.eval_like_calls += 1;
                    }
                }
                // member .constructor('...') — Function-constructor idiom.
                if let Expr::Member { property: MemberProp::Ident(p), .. } = &**callee {
                    if p.name == "constructor"
                        && matches!(
                            args.first(),
                            Some(Expr::Lit(Lit { value: LitValue::Str(_), .. }))
                        )
                    {
                        self.eval_like_calls += 1;
                    }
                }
            }
            Expr::New { callee, .. } => {
                if let Expr::Ident(i) = &**callee {
                    if i.name == "Function" {
                        self.eval_like_calls += 1;
                    }
                }
            }
            Expr::Unary { op: UnaryOp::Not, arg, .. } => {
                if matches!(&**arg, Expr::Lit(Lit { value: LitValue::Num(_), .. })) {
                    self.not_on_number += 1;
                }
            }
            Expr::Unary { op: UnaryOp::Void, arg, .. } => {
                if matches!(&**arg, Expr::Lit(Lit { value: LitValue::Num(_), .. })) {
                    self.void_zero += 1;
                }
            }
            Expr::Binary { op: BinaryOp::Add, left, right, .. } => {
                // String-literal concatenation chain member (split signal).
                let str_side =
                    |e: &Expr| matches!(e, Expr::Lit(Lit { value: LitValue::Str(_), .. }));
                if str_side(left) && str_side(right) {
                    self.string_concat_chains += 1;
                } else if str_side(right) {
                    if let Expr::Binary { op: BinaryOp::Add, right: inner_r, .. } = &**left {
                        if str_side(inner_r) {
                            self.string_concat_chains += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// `ident === 'str'` / `ident !== 'str'` — the shape of injected opaque
/// predicates (dead-code injection compares a sentinel variable against a
/// value it can never hold).
fn is_ident_vs_string_test(e: &Expr) -> bool {
    match e {
        Expr::Binary { op: BinaryOp::EqEqEq | BinaryOp::NotEqEq, left, right, .. } => {
            matches!(&**left, Expr::Ident(_))
                && matches!(&**right, Expr::Lit(Lit { value: LitValue::Str(_), .. }))
        }
        _ => false,
    }
}

fn is_literal_true(e: &Expr) -> bool {
    match e {
        Expr::Lit(Lit { value: LitValue::Bool(true), .. }) => true,
        Expr::Lit(Lit { value: LitValue::Num(n), .. }) => *n != 0.0,
        // `!![]`, `!0`
        Expr::Unary { op: UnaryOp::Not, arg, .. } => match &**arg {
            Expr::Unary { op: UnaryOp::Not, .. } => true,
            Expr::Lit(Lit { value: LitValue::Num(n), .. }) => *n == 0.0,
            _ => false,
        },
        _ => false,
    }
}

fn contains_direct_switch(body: &Stmt) -> bool {
    match body {
        Stmt::Switch { .. } => true,
        Stmt::Block { body, .. } => body.iter().any(|s| matches!(s, Stmt::Switch { .. })),
        _ => false,
    }
}

fn is_hexlike(s: &str) -> bool {
    s.chars().all(|c| c.is_ascii_hexdigit() || c == 'x' || c == '%' || c == 'u' || c == '\\')
}

/// The obfuscator.io self-defending idiom uses regexes like
/// `(((.+)+)+)+$` — detect "packed" nested-group patterns.
fn is_packed_regex_source(s: &str) -> bool {
    s.contains("+)+)") || s.contains("(((.")
}

/// Shannon entropy over bytes, in bits.
pub(crate) fn byte_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for b in s.bytes() {
        counts[b as usize] += 1;
    }
    let n = s.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_script;

    fn features(src: &str) -> Vec<f32> {
        handpicked_features(&analyze_script(src).unwrap())
    }

    fn feature(src: &str, name: &str) -> f32 {
        let i = FEATURE_NAMES.iter().position(|n| *n == name).unwrap();
        features(src)[i]
    }

    #[test]
    fn vector_width_matches_names() {
        assert_eq!(features("var x = 1;").len(), N_HANDPICKED);
    }

    #[test]
    fn all_features_finite() {
        for src in
            ["", "var x = 1;", "f();", "'just a string';", "function f(){};", "while(true){}"]
        {
            if let Ok(a) = analyze_script(src) {
                for (i, v) in handpicked_features(&a).iter().enumerate() {
                    assert!(v.is_finite(), "feature {} ({}) = {}", i, FEATURE_NAMES[i], v);
                }
            }
        }
    }

    #[test]
    fn minified_code_has_long_lines() {
        let pretty = "var alpha = 1;\nvar beta = 2;\nvar gamma = alpha + beta;\n";
        let mini = "var alpha=1,beta=2,gamma=alpha+beta;";
        assert!(feature(mini, "avg_chars_per_line") > feature(pretty, "avg_chars_per_line"));
        assert!(feature(mini, "whitespace_ratio") < feature(pretty, "whitespace_ratio"));
    }

    #[test]
    fn hex_binding_ratio_detects_obfuscated_names() {
        let obf = "var _0x1a2b = 1; var _0x3c4d = _0x1a2b + 1; use(_0x3c4d);";
        let reg = "var counter = 1; var total = counter + 1; use(total);";
        assert_eq!(feature(obf, "hex_binding_ratio"), 1.0);
        assert_eq!(feature(reg, "hex_binding_ratio"), 0.0);
    }

    #[test]
    fn short_binding_ratio_detects_minified_names() {
        assert_eq!(feature("var a = 1, b = 2; f(a, b);", "short_binding_ratio"), 1.0);
        assert_eq!(
            feature("var counter = 1, total = 2; f(counter, total);", "short_binding_ratio"),
            0.0
        );
    }

    #[test]
    fn bracket_ratio_distinguishes_access_style() {
        let brackets = "o['a']; o['b']; o['c'];";
        let dots = "o.a; o.b; o.c;";
        assert_eq!(feature(brackets, "bracket_member_ratio"), 1.0);
        assert_eq!(feature(dots, "bracket_member_ratio"), 0.0);
    }

    #[test]
    fn string_ops_counted() {
        let src = "s.split('').reverse().join('');";
        assert!(feature(src, "string_op_call_ratio") > 0.9);
        assert_eq!(feature("f(); g();", "string_op_call_ratio"), 0.0);
    }

    #[test]
    fn eval_like_detection() {
        assert!(feature("eval('code');", "eval_like_per_call") > 0.0);
        assert!(feature("setTimeout('x()', 10);", "eval_like_per_call") > 0.0);
        assert!(feature("(function(){}.constructor('debugger'))();", "eval_like_per_call") > 0.0);
        assert_eq!(feature("setTimeout(fn, 10);", "eval_like_per_call"), 0.0);
    }

    #[test]
    fn debugger_signals() {
        assert_eq!(feature("x = 'debugger';", "debugger_string_present"), 1.0);
        assert!(feature("debugger;", "debugger_per_statement") > 0.0);
    }

    #[test]
    fn packed_regex_detection() {
        assert_eq!(feature("s.search('(((.+)+)+)+$');", "packed_regex_present"), 1.0);
        assert_eq!(feature("s.search('abc');", "packed_regex_present"), 0.0);
    }

    #[test]
    fn flattening_signals() {
        let flat = "while (!![]) { switch (o[i++]) { case '0': a(); continue; case '1': b(); continue; } break; }";
        assert!(feature(flat, "literal_true_loop_ratio") > 0.9);
        assert!(feature(flat, "switch_in_loop_ratio") > 0.9);
        assert!(feature(flat, "avg_cases_per_switch") >= 2.0);
    }

    #[test]
    fn jsfuck_charset_signal() {
        let js = "(![]+[])[+[]]+(![]+[])[!+[]+!+[]];";
        assert!(feature(js, "jsfuck_charset_ratio") > 0.8);
        assert!(feature(js, "alnum_char_ratio") < 0.1);
        assert!(feature("var hello = 'world';", "jsfuck_charset_ratio") < 0.2);
    }

    #[test]
    fn string_entropy_distinguishes_encoded() {
        let plain = "x = 'aaaaaaaaaaaaaaaaaaaa';";
        let encoded = "x = '9f8a7b6c5d4e3f2a1b0c';";
        assert!(feature(encoded, "avg_string_entropy") > feature(plain, "avg_string_entropy"));
    }

    #[test]
    fn hexlike_strings_detected() {
        assert_eq!(feature("x = 'deadbeef';", "hexlike_string_ratio"), 1.0);
        assert_eq!(feature("x = 'readable words';", "hexlike_string_ratio"), 0.0);
    }

    #[test]
    fn concat_chain_counts_split_strings() {
        let split = "x = 'ab' + 'cd' + 'ef';";
        assert!(feature(split, "string_split_concat_ratio") > 0.5);
    }

    #[test]
    fn computed_member_def_ratio_uses_dataflow() {
        let ga = "var arr = ['a','b']; var x = arr[0]; var y = arr[1];";
        assert!(feature(ga, "computed_member_def_ratio") > 0.5);
    }

    #[test]
    fn bool_compression_signals() {
        assert!(feature("x = !0; y = !1;", "not_on_number_per_node") > 0.0);
        assert!(feature("x = void 0;", "void_zero_per_node") > 0.0);
    }

    #[test]
    fn entropy_helper() {
        assert_eq!(byte_entropy(""), 0.0);
        assert_eq!(byte_entropy("aaaa"), 0.0);
        assert!((byte_entropy("ab") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hex_name_recognizer() {
        assert!(is_hex_name("_0x3fa2"));
        assert!(is_hex_name("_0xABCDEF"));
        assert!(!is_hex_name("_0x"));
        assert!(!is_hex_name("counter"));
        assert!(!is_hex_name("_0xzz"));
    }
}

//! AST 4-gram features (paper §III-B).
//!
//! "Moving a window of length four over the list of syntactic units"
//! (the pre-order [`NodeKind`] stream) "retains information about the code
//! original syntactic structure." A vocabulary is fitted on the training
//! corpus (most frequent 4-grams by document frequency); each script is
//! then represented by the relative frequencies of the vocabulary grams.

use jsdetect_ast::{kind_stream, NodeKind, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One 4-gram of node-kind ids.
pub type Gram = [u8; 4];

/// Counts the 4-grams of a program's kind stream.
pub fn ngram_counts(program: &Program) -> HashMap<Gram, u32> {
    let stream = kind_stream(program);
    let mut counts = HashMap::new();
    for w in stream.windows(4) {
        let gram: Gram = [w[0].id(), w[1].id(), w[2].id(), w[3].id()];
        *counts.entry(gram).or_insert(0) += 1;
    }
    counts
}

/// A fitted 4-gram vocabulary mapping grams to vector dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramVocab {
    grams: Vec<Gram>,
    #[serde(skip)]
    index: HashMap<Gram, usize>,
}

impl NgramVocab {
    /// Builds a vocabulary from per-document gram counts, keeping the
    /// `max_size` grams with the highest document frequency (ties broken
    /// lexicographically for determinism).
    pub fn build<'a, I>(documents: I, max_size: usize) -> Self
    where
        I: IntoIterator<Item = &'a HashMap<Gram, u32>>,
    {
        let mut doc_freq: HashMap<Gram, u32> = HashMap::new();
        for doc in documents {
            for gram in doc.keys() {
                *doc_freq.entry(*gram).or_insert(0) += 1;
            }
        }
        let mut grams: Vec<(Gram, u32)> = doc_freq.into_iter().collect();
        grams.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        grams.truncate(max_size);
        let grams: Vec<Gram> = grams.into_iter().map(|(g, _)| g).collect();
        let index = grams.iter().enumerate().map(|(i, g)| (*g, i)).collect();
        NgramVocab { grams, index }
    }

    /// Rebuilds the lookup index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self.grams.iter().enumerate().map(|(i, g)| (*g, i)).collect();
    }

    /// Number of vector dimensions.
    pub fn dim(&self) -> usize {
        self.grams.len()
    }

    /// Vectorizes gram counts as relative frequencies over the vocabulary
    /// dimensions.
    pub fn vectorize(&self, counts: &HashMap<Gram, u32>) -> Vec<f32> {
        let total: u32 = counts.values().sum();
        let mut v = vec![0f32; self.grams.len()];
        if total == 0 {
            return v;
        }
        for (gram, c) in counts {
            if let Some(&i) = self.index.get(gram) {
                v[i] = *c as f32 / total as f32;
            }
        }
        v
    }

    /// Vectorizes pre-counted gram pairs — the cache-replay sibling of
    /// [`NgramVocab::vectorize`]. Bit-identical to counting the grams
    /// fresh: the total is an exact integer sum (order-independent) and
    /// each dimension is the same single f32 division.
    pub fn vectorize_pairs(&self, pairs: &[(Gram, u32)]) -> Vec<f32> {
        let total: u32 = pairs.iter().map(|(_, c)| *c).sum();
        let mut v = vec![0f32; self.grams.len()];
        if total == 0 {
            return v;
        }
        for (gram, c) in pairs {
            if let Some(&i) = self.index.get(gram) {
                v[i] = *c as f32 / total as f32;
            }
        }
        v
    }

    /// Human-readable name of dimension `i`.
    pub fn gram_name(&self, i: usize) -> String {
        let g = self.grams[i];
        g.iter()
            .map(|&id| {
                NodeKind::ALL.iter().find(|k| k.id() == id).map(|k| k.as_str()).unwrap_or("?")
            })
            .collect::<Vec<_>>()
            .join(">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    fn counts(src: &str) -> HashMap<Gram, u32> {
        ngram_counts(&parse(src).unwrap())
    }

    #[test]
    fn short_stream_has_no_grams() {
        // Program + ExpressionStatement + Identifier = 3 units < 4.
        assert!(counts("x;").is_empty());
    }

    #[test]
    fn gram_count_matches_window_count() {
        let src = "var a = 1; var b = 2;";
        let stream_len = jsdetect_ast::kind_stream(&parse(src).unwrap()).len();
        let total: u32 = counts(src).values().sum();
        assert_eq!(total as usize, stream_len - 3);
    }

    #[test]
    fn identical_structure_same_grams() {
        // Renaming identifiers must not change structural grams.
        assert_eq!(counts("var x = f(1);"), counts("var renamed = g(2);"));
    }

    #[test]
    fn different_structure_different_grams() {
        assert_ne!(counts("if (a) { b(); }"), counts("while (a) { b(); }"));
    }

    #[test]
    fn vocab_keeps_most_frequent() {
        let a = counts("var x = 1; var y = 2;");
        let b = counts("var z = 3;");
        let c = counts("if (q) r();");
        let vocab = NgramVocab::build([&a, &b, &c], 5);
        assert_eq!(vocab.dim(), 5);
        // Grams appearing in both var-programs must be present.
        let va = vocab.vectorize(&a);
        assert!(va.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn vectorize_is_relative_frequency() {
        let a = counts("var x = 1; var y = 2; var z = 3;");
        let vocab = NgramVocab::build([&a], 1000);
        let v = vocab.vectorize(&a);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "sum={}", sum);
    }

    #[test]
    fn unknown_grams_ignored() {
        let a = counts("var x = 1; var y = 2;");
        let vocab = NgramVocab::build([&a], 1000);
        let other = counts("class Q { m() { return 1; } }");
        let v = vocab.vectorize(&other);
        // Vector well-formed even when most grams are out-of-vocabulary.
        assert_eq!(v.len(), vocab.dim());
    }

    #[test]
    fn deterministic_vocab_order() {
        let a = counts("var x = 1; f(x); g(x, 2);");
        let v1 = NgramVocab::build([&a], 10);
        let v2 = NgramVocab::build([&a], 10);
        assert_eq!(v1.vectorize(&a), v2.vectorize(&a));
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let a = counts("var x = 1; var y = 2;");
        let vocab = NgramVocab::build([&a], 50);
        let json = serde_json::to_string(&vocab).unwrap();
        let mut back: NgramVocab = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.vectorize(&a), vocab.vectorize(&a));
    }

    #[test]
    fn gram_names_are_readable() {
        let a = counts("var x = 1; var y = 2;");
        let vocab = NgramVocab::build([&a], 3);
        let name = vocab.gram_name(0);
        assert!(name.contains('>'));
        assert!(name.contains("Var") || name.contains("Program") || name.contains("Ident"));
    }
}

//! The per-thread trace event ring: a bounded, lock-free,
//! overwrite-oldest buffer of span-complete and counter-delta events.
//!
//! Each recording thread owns exactly one ring (single producer); any
//! thread may read it concurrently (the live-snapshot path). Slots use a
//! seqlock discipline: the writer marks a slot's version odd while
//! writing and stores `2·seq + 2` when the payload is stable, so a reader
//! that observes a mismatched or odd version simply skips the slot — an
//! event being overwritten mid-read is *dropped from that snapshot*,
//! never torn. All fields are plain atomics, so the whole scheme stays
//! within `#![forbid(unsafe_code)]`.
//!
//! Overflow is by design, not an error: once `RING_CAP` events have been
//! written, each new event overwrites the oldest one and the overwrite is
//! accounted to the `obs/trace_dropped` counter at snapshot time
//! (`dropped() = head − RING_CAP`). Aggregate statistics (span
//! histograms, counters) are unaffected — the ring only bounds how much
//! raw *trace* history is retained for export.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Retained trace events per recording thread (must be a power of two).
/// At 32 bytes per slot this is 256 KiB of always-on trace history per
/// thread — roughly the last 8k span/counter events.
pub const RING_CAP: usize = 8192;

/// What one ring slot describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A completed span: `a` = start offset from the epoch (ns), `b` =
    /// duration (ns), `id` = span-path id.
    Span,
    /// A counter increment: `a` = timestamp offset from the epoch (ns),
    /// `b` = delta, `id` = counter-name id.
    Counter,
}

/// One decoded ring event, handed to the snapshot reader.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub kind: EventKind,
    /// Metric id in the kind's id space (span path or counter name).
    pub id: u32,
    /// Telemetry-assigned recording-thread id.
    pub thread: u32,
    /// Start/timestamp offset from the process epoch, in nanoseconds.
    pub a: u64,
    /// Duration (spans) or delta (counters).
    pub b: u64,
}

const KIND_COUNTER: u64 = 1 << 63;

fn pack_meta(kind: EventKind, id: u32, thread: u32) -> u64 {
    let k = match kind {
        EventKind::Span => 0,
        EventKind::Counter => KIND_COUNTER,
    };
    k | (u64::from(id & 0x3FFF_FFFF) << 32) | u64::from(thread)
}

fn unpack_meta(meta: u64) -> (EventKind, u32, u32) {
    let kind = if meta & KIND_COUNTER != 0 { EventKind::Counter } else { EventKind::Span };
    (kind, ((meta >> 32) & 0x3FFF_FFFF) as u32, meta as u32)
}

struct Slot {
    /// `0` = never written, odd = write in progress, `2·seq + 2` = holds
    /// the payload of event `seq`.
    ver: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            ver: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A single-producer, concurrently-readable, overwrite-oldest event ring.
pub(crate) struct Ring {
    /// Total events ever written (the next write sequence number).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    pub fn new() -> Self {
        Ring { head: AtomicU64::new(0), slots: (0..RING_CAP).map(|_| Slot::new()).collect() }
    }

    /// Writes one event. MUST only be called from the owning thread (the
    /// single producer); readers tolerate concurrent `read`/`reset`.
    pub fn push(&self, kind: EventKind, id: u32, thread: u32, a: u64, b: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (RING_CAP - 1)];
        // Odd version: readers skip the slot while the payload is mixed.
        slot.ver.store(seq * 2 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.meta.store(pack_meta(kind, id, thread), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.ver.store(seq * 2 + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Events overwritten before they could ever be snapshotted.
    pub fn dropped(&self) -> u64 {
        self.head.load(Ordering::Acquire).saturating_sub(RING_CAP as u64)
    }

    /// Reads every retained event, oldest first, skipping slots that are
    /// mid-write or already overwritten (a concurrent producer never
    /// blocks a reader and vice versa).
    pub fn read(&self, mut f: impl FnMut(RawEvent)) {
        let head = self.head.load(Ordering::Acquire);
        let first = head.saturating_sub(RING_CAP as u64);
        for seq in first..head {
            let slot = &self.slots[(seq as usize) & (RING_CAP - 1)];
            let want = seq * 2 + 2;
            if slot.ver.load(Ordering::Acquire) != want {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // The fence orders the payload loads before the re-check: if
            // the version still matches, the payload belongs to `seq`.
            fence(Ordering::Acquire);
            if slot.ver.load(Ordering::Relaxed) != want {
                continue;
            }
            let (kind, id, thread) = unpack_meta(meta);
            f(RawEvent { kind, id, thread, a, b });
        }
    }

    /// Clears the ring. Intended for between-run `reset()`; events written
    /// concurrently with a reset may be kept or discarded.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Release);
        for slot in self.slots.iter() {
            slot.ver.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(r: &Ring) -> Vec<RawEvent> {
        let mut out = Vec::new();
        r.read(|ev| out.push(ev));
        out
    }

    #[test]
    fn push_and_read_in_order() {
        let r = Ring::new();
        r.push(EventKind::Span, 7, 3, 100, 50);
        r.push(EventKind::Counter, 2, 3, 160, 4);
        let evs = collect(&r);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Span);
        assert_eq!((evs[0].id, evs[0].thread, evs[0].a, evs[0].b), (7, 3, 100, 50));
        assert_eq!(evs[1].kind, EventKind::Counter);
        assert_eq!((evs[1].id, evs[1].b), (2, 4));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let r = Ring::new();
        let extra = 100u64;
        for i in 0..(RING_CAP as u64 + extra) {
            r.push(EventKind::Span, 1, 0, i, 1);
        }
        assert_eq!(r.dropped(), extra);
        let evs = collect(&r);
        assert_eq!(evs.len(), RING_CAP);
        // The oldest retained event is the first not overwritten.
        assert_eq!(evs[0].a, extra);
        assert_eq!(evs.last().unwrap().a, RING_CAP as u64 + extra - 1);
    }

    #[test]
    fn reset_clears_retained_events() {
        let r = Ring::new();
        for i in 0..10 {
            r.push(EventKind::Span, 1, 0, i, 1);
        }
        r.reset();
        assert!(collect(&r).is_empty());
        assert_eq!(r.dropped(), 0);
        // Writes after a reset start a fresh sequence.
        r.push(EventKind::Span, 2, 0, 99, 1);
        let evs = collect(&r);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, 2);
    }

    #[test]
    fn meta_packing_round_trips() {
        for (kind, id, thread) in [
            (EventKind::Span, 0u32, 0u32),
            (EventKind::Counter, 0x3FFF_FFFF, u32::MAX),
            (EventKind::Span, 1023, 17),
        ] {
            assert_eq!(unpack_meta(pack_meta(kind, id, thread)), (kind, id, thread));
        }
    }
}

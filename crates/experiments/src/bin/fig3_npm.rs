//! Figure 3 + §IV-B2 — npm Top-10k study.
//!
//! Paper targets: 8.7% of scripts transformed (8.46% minified, 0.25%
//! obfuscated); 15.14% of packages contain ≥1 transformed script; Figure-3
//! technique usage dominated by minification simple (58.34%) and advanced
//! (36.57%).

use jsdetect::Technique;
use jsdetect_corpus::npm_population;
use jsdetect_experiments::{
    or_exit, print_technique_table, technique_usage_probability, train_cached, write_json, Args,
};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct NpmResult {
    scripts_transformed_pct: f64,
    scripts_minified_pct: f64,
    scripts_obfuscated_pct: f64,
    packages_with_transformed_pct: f64,
    technique_usage: Vec<(String, f64)>,
    generating_transformed_pct: f64,
    n_scripts: usize,
    paper: HashMap<&'static str, f64>,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let packages_per_bucket = args.scaled(18);
    let month = 64;
    let mut all_scripts = Vec::new();
    for bucket in 0..10usize {
        let pop = npm_population(
            month,
            packages_per_bucket,
            bucket * 1000,
            args.seed ^ ((bucket as u64) << 9),
        );
        all_scripts.extend(pop);
    }
    eprintln!("[npm] classifying {} scripts...", all_scripts.len());
    let srcs: Vec<&str> = all_scripts.iter().map(|s| s.src.as_str()).collect();
    let l1 = detectors.level1.predict_many(&srcs);

    let mut transformed = 0usize;
    let mut minified = 0usize;
    let mut obfuscated = 0usize;
    let mut total = 0usize;
    let mut pkg_any: HashMap<usize, bool> = HashMap::new();
    for (p, script) in l1.iter().zip(&all_scripts) {
        if let Some(p) = p {
            total += 1;
            let entry = pkg_any.entry(script.container).or_insert(false);
            if p.is_transformed() {
                transformed += 1;
                *entry = true;
            }
            if p.minified >= 0.5 {
                minified += 1;
            }
            if p.obfuscated >= 0.5 {
                obfuscated += 1;
            }
        }
    }
    let pct = |a: usize, b: usize| 100.0 * a as f64 / b.max(1) as f64;
    let pkgs_with = pkg_any.values().filter(|v| **v).count();
    let gen_rate =
        pct(all_scripts.iter().filter(|s| s.is_transformed()).count(), all_scripts.len());

    let (usage, n_transformed) = technique_usage_probability(&detectors, &srcs);
    let usage_rows: Vec<(String, f64)> =
        Technique::ALL.iter().map(|t| (t.as_str().to_string(), 100.0 * usage[t.index()])).collect();

    println!("npm Top 10k (simulated), {} scripts", total);
    println!("{:-<70}", "");
    println!(
        "scripts transformed: {:.2}% (generating truth {:.2}%, paper 8.7%)",
        pct(transformed, total),
        gen_rate
    );
    println!("scripts minified:    {:.2}% (paper 8.46%)", pct(minified, total));
    println!("scripts obfuscated:  {:.2}% (paper 0.25%)", pct(obfuscated, total));
    println!(
        "packages with ≥1 transformed script: {:.2}% (paper 15.14%)",
        pct(pkgs_with, pkg_any.len())
    );
    print_technique_table(
        &format!(
            "Figure 3 — technique usage probability over {} transformed scripts",
            n_transformed
        ),
        &usage,
    );
    println!("(paper: min simple 58.34%, min adv 36.57%, rest small)");

    let mut paper = HashMap::new();
    paper.insert("scripts_transformed_pct", 8.7);
    paper.insert("scripts_minified_pct", 8.46);
    paper.insert("scripts_obfuscated_pct", 0.25);
    paper.insert("packages_with_transformed_pct", 15.14);
    let result = NpmResult {
        scripts_transformed_pct: pct(transformed, total),
        scripts_minified_pct: pct(minified, total),
        scripts_obfuscated_pct: pct(obfuscated, total),
        packages_with_transformed_pct: pct(pkgs_with, pkg_any.len()),
        technique_usage: usage_rows,
        generating_transformed_pct: gen_rate,
        n_scripts: total,
        paper,
    };
    or_exit(write_json(&args, "fig3_npm", &result));
}

//! The canonical metric-name vocabulary for the whole pipeline.
//!
//! Every crate that records telemetry imports its span/counter/gauge/
//! histogram names from here instead of spelling ad-hoc string literals —
//! one typo'd path used to mean a silently separate time series. The
//! constants are grouped per kind and collected into `ALL_*` slices so a
//! test can assert that everything exported (JSONL, Prometheus) matches
//! the registered-name grammar.
//!
//! Names are slash-separated lowercase segments (`[a-z][a-z0-9_-]*`),
//! checked by [`is_valid_metric_name`]. Two families are composed at
//! runtime rather than listed here, but follow the same grammar: span
//! *paths* (slash-joins of the span name constants below, e.g.
//! `analyze/parse`) and the per-kind `guard/<kind>` and per-pass
//! `normalize/<pass>/rewrites` counters.

// --- span names (path segments; nesting joins them with `/`) -------------

/// Whole-script analysis (parent of the per-stage spans).
pub const SPAN_ANALYZE: &str = "analyze";
/// Parser stage.
pub const SPAN_PARSE: &str = "parse";
/// Lexer stage.
pub const SPAN_LEX: &str = "lex";
/// Data-flow analysis stage.
pub const SPAN_FLOW: &str = "flow";
/// AST/source metrics stage.
pub const SPAN_METRICS: &str = "metrics";
/// Lint rule evaluation stage.
pub const SPAN_LINT: &str = "lint";
/// Lexer-only degraded re-analysis after a parse/lex failure.
pub const SPAN_DEGRADED_FALLBACK: &str = "degraded_fallback";
/// Batch analysis driver (covers the worker pool).
pub const SPAN_ANALYZE_MANY: &str = "analyze_many";
/// One worker's vectorization batch.
pub const SPAN_VECTORIZE_BATCH: &str = "vectorize_batch";
/// Feature-space fitting.
pub const SPAN_FIT_SPACE: &str = "fit_space";
/// Feature vectorization.
pub const SPAN_VECTORIZE: &str = "vectorize";
/// Handpicked-feature extraction.
pub const SPAN_HANDPICKED: &str = "handpicked";
/// N-gram feature extraction.
pub const SPAN_NGRAMS: &str = "ngrams";
/// Normalized-vs-original feature-delta block.
pub const SPAN_NORMALIZE_DELTAS: &str = "normalize_deltas";
/// Cache lookup.
pub const SPAN_CACHE_GET: &str = "cache_get";
/// Cache publish.
pub const SPAN_CACHE_PUT: &str = "cache_put";
/// Deobfuscation normalization fixpoint.
pub const SPAN_NORMALIZE: &str = "normalize";
/// Obfuscation/minification transform application.
pub const SPAN_TRANSFORM_APPLY: &str = "transform_apply";
/// Synthetic corpus generation.
pub const SPAN_CORPUS_GENERATE: &str = "corpus_generate";
/// Level-1 (minification) detector training.
pub const SPAN_LEVEL1_TRAIN: &str = "level1_train";
/// Level-1 single prediction.
pub const SPAN_LEVEL1_PREDICT: &str = "level1_predict";
/// Level-1 batch prediction.
pub const SPAN_LEVEL1_PREDICT_BATCH: &str = "level1_predict_batch";
/// Level-2 (obfuscation) detector training.
pub const SPAN_LEVEL2_TRAIN: &str = "level2_train";
/// Level-2 single prediction.
pub const SPAN_LEVEL2_PREDICT: &str = "level2_predict";
/// Level-2 batch prediction.
pub const SPAN_LEVEL2_PREDICT_BATCH: &str = "level2_predict_batch";
/// Full two-level training pipeline.
pub const SPAN_TRAIN_PIPELINE: &str = "train_pipeline";
/// Forest training (parent of per-batch spans).
pub const SPAN_FOREST_FIT: &str = "forest_fit";
/// One worker's tree-fitting batch inside forest training.
pub const SPAN_FIT_TREE_BATCH: &str = "fit_tree_batch";
/// Forest batch prediction (parent of per-chunk spans).
pub const SPAN_FOREST_PREDICT: &str = "forest_predict";
/// One worker's prediction chunk.
pub const SPAN_PREDICT_CHUNK: &str = "predict_chunk";

// --- counters -------------------------------------------------------------

/// Scripts whose parse failed.
pub const CTR_PARSE_FAILURES: &str = "parse_failures";
/// Lexer error tokens encountered.
pub const CTR_LEXER_ERRORS: &str = "lexer_errors";
/// Data-flow analyses truncated by the binding cap.
pub const CTR_FLOW_TRUNCATIONS: &str = "flow_truncations";
/// Bindings dropped by data-flow truncation.
pub const CTR_FLOW_TRUNCATED_BINDINGS: &str = "flow_truncated_bindings";
/// Lint rule firings.
pub const CTR_LINT_FIRES: &str = "lint_fires";
/// Scripts that fell back to lexer-only degraded analysis.
pub const CTR_DEGRADED_FALLBACKS: &str = "degraded_fallbacks";
/// Guarded analyses whose verdict was `Degraded` (any cause). The per-kind
/// `guard/<kind>` counters attribute the cause; this aggregate gives the
/// degraded *rate* directly (scripts_analyzed is the denominator) and is
/// what the CI syntax-coverage gate reads from telemetry.
pub const CTR_GUARD_DEGRADED: &str = "guard/degraded";
/// Guarded analyses whose verdict was `Rejected` (any cause).
pub const CTR_GUARD_REJECTED: &str = "guard/rejected";
/// Scripts analyzed (any outcome).
pub const CTR_SCRIPTS_ANALYZED: &str = "scripts_analyzed";
/// Trees fitted during forest training.
pub const CTR_TREES_FITTED: &str = "trees_fitted";
/// Tree traversals during forest prediction.
pub const CTR_TREES_TRAVERSED: &str = "trees_traversed";
/// Obfuscation transform applications that failed.
pub const CTR_TRANSFORM_FAILURES: &str = "transform_failures";
/// Split-search columns served by the presorted-order regime.
pub const CTR_SPLIT_PRESORT_COLS: &str = "split_presort_cols";
/// Split-search columns served by the counting-sort regime.
pub const CTR_SPLIT_COUNTING_COLS: &str = "split_counting_cols";
/// Split-search columns served by the packed-rank regime.
pub const CTR_SPLIT_RANKED_COLS: &str = "split_ranked_cols";
/// Split-search columns served by the key-sort regime.
pub const CTR_SPLIT_KEYED_COLS: &str = "split_keyed_cols";
/// Split-search columns served by the histogram regime.
pub const CTR_SPLIT_HIST_COLS: &str = "split_hist_cols";
/// Cache lookups that replayed a stored verdict.
pub const CTR_CACHE_HIT: &str = "cache/hit";
/// Cache lookups that missed.
pub const CTR_CACHE_MISS: &str = "cache/miss";
/// Cache records recomputed due to schema/version/preset mismatch.
pub const CTR_CACHE_STALE_VERSION: &str = "cache/stale_version";
/// Corrupt cache records evicted and recomputed.
pub const CTR_CACHE_CORRUPT_EVICTED: &str = "cache/corrupt_evicted";
/// Cache records published.
pub const CTR_CACHE_PUT: &str = "cache/put";
/// Cache publishes that failed (I/O).
pub const CTR_CACHE_PUBLISH_FAILED: &str = "cache/publish_failed";
/// Normalization runs stopped by the rewrite-fuel budget.
pub const CTR_NORMALIZE_FUEL_EXHAUSTED: &str = "normalize/fuel_exhausted";
/// Normalization fixpoint rounds executed.
pub const CTR_NORMALIZE_FIXPOINT_ROUNDS: &str = "normalize/fixpoint_rounds";
/// Cache publishes retried after a transient failure.
pub const CTR_CACHE_PUBLISH_RETRIED: &str = "cache/publish_retried";
/// Trace-ring events overwritten before export (ring overflow).
pub const TRACE_DROPPED: &str = "obs/trace_dropped";
/// Metric names dropped because an id space filled up.
pub const NAME_OVERFLOW: &str = "obs/name_overflow";

// --- serve daemon ---------------------------------------------------------

/// Requests admitted into the daemon's bounded queue.
pub const CTR_SERVE_ACCEPTED: &str = "serve/accepted";
/// Requests rejected at admission (queue full, draining, resource guard).
pub const CTR_SERVE_REJECTED: &str = "serve/rejected";
/// Responses emitted for accepted requests (any status).
pub const CTR_SERVE_RESPONSES: &str = "serve/responses";
/// Responses served in breaker-degraded lexer-only mode.
pub const CTR_SERVE_DEGRADED: &str = "serve/degraded";
/// Responses emitted after shutdown began (the drain phase).
pub const CTR_SERVE_DRAINED: &str = "serve/drained";
/// Requests answered with a quarantined verdict (worker panic or watchdog
/// timeout).
pub const CTR_SERVE_QUARANTINED: &str = "serve/quarantined";
/// Worker threads replaced after a panic or a watchdog abandonment.
pub const CTR_SERVE_WORKER_REPLACED: &str = "serve/worker_replaced";
/// In-flight requests answered by the watchdog after a worker got stuck.
pub const CTR_SERVE_WATCHDOG_TIMEOUTS: &str = "serve/watchdog_timeouts";
/// Circuit-breaker transitions into the open (degraded) state.
pub const CTR_SERVE_BREAKER_OPENED: &str = "serve/breaker_opened";
/// Circuit-breaker recoveries back to the closed state.
pub const CTR_SERVE_BREAKER_CLOSED: &str = "serve/breaker_closed";
/// Protocol-invalid requests (malformed JSON, bad framing, bad route).
pub const CTR_SERVE_REQUESTS_INVALID: &str = "serve/requests_invalid";
/// Requests dropped for exceeding the transport size cap.
pub const CTR_SERVE_REQUESTS_OVERSIZED: &str = "serve/requests_oversized";
/// Connections dropped by the slow-loris read-timeout guard.
pub const CTR_SERVE_SLOW_LORIS_DROPPED: &str = "serve/slow_loris_dropped";

// --- gauges and value histograms -----------------------------------------

/// Worker threads used by the current batch-analysis run.
pub const GAUGE_ANALYZE_THREADS: &str = "analyze_threads";
/// Daemon queue depth sampled at admission.
pub const GAUGE_SERVE_QUEUE_DEPTH: &str = "serve/queue_depth";
/// Daemon worker threads currently alive.
pub const GAUGE_SERVE_WORKERS_ALIVE: &str = "serve/workers_alive";
/// Global atom-interner occupancy as a fraction of capacity (0..1).
pub const GAUGE_INTERNER_OCCUPANCY: &str = "interner/occupancy";
/// Input script sizes in bytes.
pub const HIST_SCRIPT_BYTES: &str = "script_bytes";
/// Daemon per-request end-to-end latency in microseconds.
pub const HIST_SERVE_LATENCY_US: &str = "serve/latency_us";

/// Every span name constant above.
pub const ALL_SPANS: &[&str] = &[
    SPAN_ANALYZE,
    SPAN_PARSE,
    SPAN_LEX,
    SPAN_FLOW,
    SPAN_METRICS,
    SPAN_LINT,
    SPAN_DEGRADED_FALLBACK,
    SPAN_ANALYZE_MANY,
    SPAN_VECTORIZE_BATCH,
    SPAN_FIT_SPACE,
    SPAN_VECTORIZE,
    SPAN_HANDPICKED,
    SPAN_NGRAMS,
    SPAN_NORMALIZE_DELTAS,
    SPAN_CACHE_GET,
    SPAN_CACHE_PUT,
    SPAN_NORMALIZE,
    SPAN_TRANSFORM_APPLY,
    SPAN_CORPUS_GENERATE,
    SPAN_LEVEL1_TRAIN,
    SPAN_LEVEL1_PREDICT,
    SPAN_LEVEL1_PREDICT_BATCH,
    SPAN_LEVEL2_TRAIN,
    SPAN_LEVEL2_PREDICT,
    SPAN_LEVEL2_PREDICT_BATCH,
    SPAN_TRAIN_PIPELINE,
    SPAN_FOREST_FIT,
    SPAN_FIT_TREE_BATCH,
    SPAN_FOREST_PREDICT,
    SPAN_PREDICT_CHUNK,
];

/// Every counter name constant above.
pub const ALL_COUNTERS: &[&str] = &[
    CTR_PARSE_FAILURES,
    CTR_LEXER_ERRORS,
    CTR_FLOW_TRUNCATIONS,
    CTR_FLOW_TRUNCATED_BINDINGS,
    CTR_LINT_FIRES,
    CTR_DEGRADED_FALLBACKS,
    CTR_GUARD_DEGRADED,
    CTR_GUARD_REJECTED,
    CTR_SCRIPTS_ANALYZED,
    CTR_TREES_FITTED,
    CTR_TREES_TRAVERSED,
    CTR_TRANSFORM_FAILURES,
    CTR_SPLIT_PRESORT_COLS,
    CTR_SPLIT_COUNTING_COLS,
    CTR_SPLIT_RANKED_COLS,
    CTR_SPLIT_KEYED_COLS,
    CTR_SPLIT_HIST_COLS,
    CTR_CACHE_HIT,
    CTR_CACHE_MISS,
    CTR_CACHE_STALE_VERSION,
    CTR_CACHE_CORRUPT_EVICTED,
    CTR_CACHE_PUT,
    CTR_CACHE_PUBLISH_FAILED,
    CTR_CACHE_PUBLISH_RETRIED,
    CTR_NORMALIZE_FUEL_EXHAUSTED,
    CTR_NORMALIZE_FIXPOINT_ROUNDS,
    TRACE_DROPPED,
    NAME_OVERFLOW,
    CTR_SERVE_ACCEPTED,
    CTR_SERVE_REJECTED,
    CTR_SERVE_RESPONSES,
    CTR_SERVE_DEGRADED,
    CTR_SERVE_DRAINED,
    CTR_SERVE_QUARANTINED,
    CTR_SERVE_WORKER_REPLACED,
    CTR_SERVE_WATCHDOG_TIMEOUTS,
    CTR_SERVE_BREAKER_OPENED,
    CTR_SERVE_BREAKER_CLOSED,
    CTR_SERVE_REQUESTS_INVALID,
    CTR_SERVE_REQUESTS_OVERSIZED,
    CTR_SERVE_SLOW_LORIS_DROPPED,
];

/// Every gauge name constant above.
pub const ALL_GAUGES: &[&str] = &[
    GAUGE_ANALYZE_THREADS,
    GAUGE_SERVE_QUEUE_DEPTH,
    GAUGE_SERVE_WORKERS_ALIVE,
    GAUGE_INTERNER_OCCUPANCY,
];

/// Every value-histogram name constant above.
pub const ALL_HISTS: &[&str] = &[HIST_SCRIPT_BYTES, HIST_SERVE_LATENCY_US];

/// Whether `name` matches the registered-name grammar: one or more
/// slash-separated segments, each `[a-z][a-z0-9_-]*`. Span paths,
/// `guard/<kind>` counters, and `normalize/<pass>/rewrites` counters all
/// satisfy this by construction.
pub fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('/').all(|seg| {
            let mut bytes = seg.bytes();
            matches!(bytes.next(), Some(b'a'..=b'z'))
                && bytes
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_constant_is_grammatical() {
        for name in ALL_SPANS.iter().chain(ALL_COUNTERS).chain(ALL_GAUGES).chain(ALL_HISTS) {
            assert!(is_valid_metric_name(name), "registered name violates grammar: {name:?}");
        }
    }

    #[test]
    fn grammar_rejects_malformed_names() {
        for bad in [
            "",
            "Upper",
            "1starts_with_digit",
            "space here",
            "trailing/",
            "/leading",
            "a//b",
            "dotted.name",
        ] {
            assert!(!is_valid_metric_name(bad), "accepted malformed name {bad:?}");
        }
        for good in [
            "analyze",
            "analyze/parse",
            "cache/hit",
            "guard/deadline_exceeded",
            "normalize/array-inline/rewrites",
            "obs/trace_dropped",
        ] {
            assert!(is_valid_metric_name(good), "rejected valid name {good:?}");
        }
    }
}

//! Tool presets (paper §II-B).
//!
//! The paper builds its ground truth with six configurable tools; each
//! preset below reproduces one tool's behaviour as a technique set plus
//! options. The paper detects *techniques*, not tools — presets exist so
//! corpora can be generated "as tool X would have".

use crate::string_obf::{StringObfMode, StringObfOptions};
use crate::{apply, Technique, TransformError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The transformation tools of paper §II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// obfuscator.io with string-array + rotation + identifier renaming
    /// (its default-ish configuration; always emits compact output).
    ObfuscatorIo,
    /// obfuscator.io with control-flow flattening and dead-code injection
    /// enabled on top.
    ObfuscatorIoAggressive,
    /// JSFuck: the whole program in `[]()!+`.
    JsFuck,
    /// gnirts: string obfuscation without encoding escapes (splitting,
    /// reversing, `fromCharCode`).
    Gnirts,
    /// The paper's own custom-encoding string obfuscator (hex-encoded
    /// strings plus an injected decoder).
    CustomEncoding,
    /// javascript-minifier.com: basic minification.
    JavascriptMinifier,
    /// Google Closure: advanced optimizations.
    ClosureCompiler,
}

impl Tool {
    /// All presets.
    pub const ALL: [Tool; 7] = [
        Tool::ObfuscatorIo,
        Tool::ObfuscatorIoAggressive,
        Tool::JsFuck,
        Tool::Gnirts,
        Tool::CustomEncoding,
        Tool::JavascriptMinifier,
        Tool::ClosureCompiler,
    ];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Tool::ObfuscatorIo => "obfuscator.io",
            Tool::ObfuscatorIoAggressive => "obfuscator.io (aggressive)",
            Tool::JsFuck => "jsfuck",
            Tool::Gnirts => "gnirts",
            Tool::CustomEncoding => "custom-encoding",
            Tool::JavascriptMinifier => "javascript-minifier",
            Tool::ClosureCompiler => "closure-compiler",
        }
    }

    /// The technique labels a sample produced by this tool carries
    /// (paper §II-C: the tool→technique mapping, including implied
    /// combinations).
    pub fn techniques(self) -> Vec<Technique> {
        use Technique::*;
        match self {
            Tool::ObfuscatorIo => {
                vec![GlobalArray, IdentifierObfuscation, MinificationSimple]
            }
            Tool::ObfuscatorIoAggressive => vec![
                GlobalArray,
                IdentifierObfuscation,
                ControlFlowFlattening,
                DeadCodeInjection,
                SelfDefending,
                MinificationSimple,
            ],
            Tool::JsFuck => vec![NoAlphanumeric],
            Tool::Gnirts => vec![StringObfuscation],
            Tool::CustomEncoding => vec![StringObfuscation],
            Tool::JavascriptMinifier => vec![MinificationSimple],
            Tool::ClosureCompiler => vec![MinificationAdvanced, MinificationSimple],
        }
    }

    /// Applies the preset to `src`.
    pub fn apply(self, src: &str, seed: u64) -> Result<String, TransformError> {
        match self {
            Tool::Gnirts => {
                // gnirts never encodes — it splits/reverses/charCodes.
                let mut prog = jsdetect_parser::parse(src)?;
                let mut rng = StdRng::seed_from_u64(seed);
                let opts = StringObfOptions {
                    modes: vec![
                        StringObfMode::Split,
                        StringObfMode::Reverse,
                        StringObfMode::FromCharCode,
                    ],
                    ..Default::default()
                };
                crate::string_obf::obfuscate_strings(&mut prog, &mut rng, &opts);
                Ok(jsdetect_codegen::to_source(&prog))
            }
            Tool::CustomEncoding => {
                let mut prog = jsdetect_parser::parse(src)?;
                let mut rng = StdRng::seed_from_u64(seed);
                let opts = StringObfOptions {
                    modes: vec![StringObfMode::EncodedCall],
                    ..Default::default()
                };
                crate::string_obf::obfuscate_strings(&mut prog, &mut rng, &opts);
                Ok(jsdetect_codegen::to_source(&prog))
            }
            _ => {
                let mut techniques = self.techniques();
                // `apply` treats MinificationSimple as the layout pass; the
                // label-only implication (advanced ⊃ simple) is redundant
                // there.
                if self == Tool::ClosureCompiler {
                    techniques.retain(|t| *t != Technique::MinificationSimple);
                }
                apply(src, &techniques, seed)
            }
        }
    }
}

/// An extra technique the paper *mentions but does not monitor*
/// (§II-A, §II-C: "obfuscated field reference"): every dot-notation
/// member access is rewritten to bracket notation
/// (`a.b` → `a['b']`). The level-1 detector is expected to flag such
/// samples as transformed even though level 2 has no label for them.
pub fn obfuscate_field_references(src: &str) -> Result<String, TransformError> {
    use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
    use jsdetect_ast::{Expr, Lit, MemberProp};

    struct FieldRefs;
    impl MutVisitor for FieldRefs {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            walk_expr_mut(self, e);
            if let Expr::Member { property, .. } = e {
                if let MemberProp::Ident(id) = property {
                    let name = id.name;
                    *property = MemberProp::Computed(Box::new(Expr::Lit(Lit::str(name))));
                }
            }
        }
    }

    let mut prog = jsdetect_parser::parse(src)?;
    FieldRefs.visit_program_mut(&mut prog);
    Ok(jsdetect_codegen::to_source(&prog))
}

/// Another unmonitored §II-A technique: **integer obfuscation** — numbers
/// no longer appear in plain text but are computed with arithmetic
/// operators (`42` → `(0x55 ^ 0x7f)`), leaving a distinctive surplus of
/// binary expressions over numeric literals.
pub fn obfuscate_integers(src: &str, seed: u64) -> Result<String, TransformError> {
    use jsdetect_ast::builder as b;
    use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
    use jsdetect_ast::{BinaryOp, Expr, Lit, LitValue};
    use rand::Rng;

    struct Ints {
        rng: StdRng,
    }
    impl MutVisitor for Ints {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let Expr::Lit(Lit { value: LitValue::Num(n), .. }) = e {
                let v = *n;
                if v.fract() == 0.0 && (0.0..=1_000_000.0).contains(&v) {
                    let v = v as i64;
                    let replacement = match self.rng.gen_range(0..3u8) {
                        0 => {
                            // v = a + b
                            let a = self.rng.gen_range(0..=v.max(1));
                            b::binary(
                                BinaryOp::Add,
                                b::num_lit(a as f64),
                                b::num_lit((v - a) as f64),
                            )
                        }
                        1 => {
                            // v = a - b
                            let off = self.rng.gen_range(1..=997i64);
                            b::binary(
                                BinaryOp::Sub,
                                b::num_lit((v + off) as f64),
                                b::num_lit(off as f64),
                            )
                        }
                        _ => {
                            // v = mask ^ (mask ^ v)
                            let mask = self.rng.gen_range(0..=0xffffi64);
                            b::binary(
                                BinaryOp::BitXor,
                                b::num_lit(mask as f64),
                                b::num_lit((mask ^ v) as f64),
                            )
                        }
                    };
                    *e = replacement;
                    return;
                }
            }
            walk_expr_mut(self, e);
        }
    }

    let mut prog = jsdetect_parser::parse(src)?;
    Ints { rng: StdRng::seed_from_u64(seed) }.visit_program_mut(&mut prog);
    Ok(jsdetect_codegen::to_source(&prog))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        function renderBadge(user) {
            var label = 'member: ' + user.name;
            var badge = document.createElement('span');
            badge.textContent = label;
            return badge;
        }
        renderBadge({name: 'ada'});
    "#;

    #[test]
    fn all_presets_produce_parseable_output() {
        for tool in Tool::ALL {
            let out = tool.apply(SRC, 5).unwrap_or_else(|e| panic!("{}: {}", tool.as_str(), e));
            assert!(
                jsdetect_parser::parse(&out).is_ok(),
                "{} output does not reparse",
                tool.as_str()
            );
            assert_ne!(out.trim(), SRC.trim(), "{} was a no-op", tool.as_str());
        }
    }

    #[test]
    fn obfuscator_io_shape() {
        let out = Tool::ObfuscatorIo.apply(SRC, 5).unwrap();
        assert!(out.contains("_0x"), "{}", out);
        assert!(out.contains("parseInt"), "accessor missing: {}", out);
        assert!(!out.contains('\n'), "obfuscator.io output must be compact");
    }

    #[test]
    fn gnirts_never_injects_decoder() {
        let out = Tool::Gnirts.apply(SRC, 5).unwrap();
        assert!(!out.contains("substr"), "gnirts must not use the hex decoder: {}", out);
    }

    #[test]
    fn custom_encoding_injects_decoder() {
        let out = Tool::CustomEncoding.apply(SRC, 5).unwrap();
        assert!(out.contains("parseInt"), "{}", out);
        assert!(out.contains("fromCharCode"), "{}", out);
    }

    #[test]
    fn jsfuck_preset_pure() {
        let out = Tool::JsFuck.apply(SRC, 5).unwrap();
        assert!(out.chars().all(|c| "[]()!+".contains(c)));
    }

    #[test]
    fn closure_is_advanced_minification() {
        let out = Tool::ClosureCompiler.apply(SRC, 5).unwrap();
        assert!(out.len() < SRC.len());
        assert!(out.contains("!0") || out.contains("void 0") || !out.contains('\n'));
    }

    #[test]
    fn field_reference_rewrites_dots() {
        let out = obfuscate_field_references("a.b.c(d.e);").unwrap();
        assert_eq!(out.trim(), "a['b']['c'](d['e']);");
    }

    #[test]
    fn field_reference_leaves_keys_alone() {
        let out = obfuscate_field_references("var o = {key: 1}; o.key;").unwrap();
        assert!(out.contains("{key: 1}"), "{}", out);
        assert!(out.contains("o['key']"), "{}", out);
    }

    #[test]
    fn integer_obfuscation_hides_plain_numbers() {
        let out = obfuscate_integers("x = 42; y = 1000; z = 3.5;", 9).unwrap();
        assert!(!out.contains("x = 42;"), "plain 42 must be computed: {}", out);
        assert!(!out.contains("y = 1000;"), "plain 1000 must be computed: {}", out);
        assert!(out.contains("z = 3.5;"), "floats stay: {}", out);
        assert!(jsdetect_parser::parse(&out).is_ok());
        // The arithmetic must still evaluate to the original values.
        // (Spot-check the a+b form: both operands sum to 42 when split.)
        let reparsed = jsdetect_parser::parse(&out).unwrap();
        assert!(jsdetect_ast::kind_stream(&reparsed)
            .contains(&jsdetect_ast::NodeKind::BinaryExpression));
    }

    #[test]
    fn integer_obfuscation_is_semantics_preserving_arithmetic() {
        // Verify the generated operand pairs recombine to the original
        // value for many seeds by folding with the advanced minifier.
        for seed in 0..12 {
            let out = obfuscate_integers("check(7777);", seed).unwrap();
            let folded = crate::apply(&out, &[Technique::MinificationAdvanced], 0).unwrap();
            assert!(
                folded.contains("check(7777)"),
                "seed {}: constant folding must recover 7777: {} -> {}",
                seed,
                out.trim(),
                folded
            );
        }
    }

    #[test]
    fn tool_technique_labels_match_monitored_set() {
        for tool in Tool::ALL {
            for t in tool.techniques() {
                assert!(Technique::ALL.contains(&t));
            }
        }
    }
}

//! Log-scaled bucket histograms.
//!
//! Values land in power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`
//! with bucket 0 also absorbing 0. Sixty-four buckets span the full `u64`
//! range, so one fixed-size array records nanosecond latencies and
//! multi-megabyte script sizes alike with ~2× relative resolution — the
//! same trade HdrHistogram-style production recorders make, without the
//! dependency.

/// Number of buckets (one per possible `floor(log2(v))`).
pub const N_BUCKETS: usize = 64;

/// Bucket index for a value: `0` for `v <= 1`, else `floor(log2(v))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive lower and exclusive upper bound of bucket `i` (the last
/// bucket's upper bound saturates at `u64::MAX`).
///
/// # Panics
///
/// Panics if `i >= N_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < N_BUCKETS, "bucket index {} out of range", i);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

/// A log-scaled histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Builds a histogram from raw parts (the atomic-cell merge path).
    /// `min` must be `u64::MAX` when `count == 0` so merges stay correct.
    pub(crate) fn from_raw(
        counts: [u64; N_BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram { counts, count, sum, min, max }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; N_BUCKETS] {
        &self.counts
    }

    /// `(lo, hi, count)` for every non-empty bucket, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// exclusive upper edge of the bucket where the cumulative count
    /// crosses `q * count`, clamped to the observed max. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Streaming `q`-quantile estimate (`0.0..=1.0`) by linear
    /// interpolation within the log2 bucket where the cumulative count
    /// crosses `q * count`, clamped to the observed `[min, max]`. Unlike
    /// [`Histogram::quantile`] (a bucket upper bound, kept for the stable
    /// JSONL schema), the interpolated estimate always lands inside the
    /// same bucket as the exact quantile — the contract the property tests
    /// pin. Returns 0 for an empty histogram.
    pub fn quantile_interp(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if (seen as f64) >= target {
                let (lo, hi) = bucket_bounds(i);
                // Position of the target rank within this bucket, assuming
                // values spread uniformly across it. Clamp into the bucket
                // (values in [lo, hi) are integers ≤ hi−1) so the estimate
                // shares the exact quantile's bucket, then to the observed
                // extremes.
                let frac = (target - before as f64) / c as f64;
                let est = (lo as f64 + frac * (hi - lo) as f64).min((hi - 1) as f64);
                return est.clamp(self.min() as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Interpolated median in whole units (see [`Histogram::quantile_interp`]).
    pub fn p50(&self) -> u64 {
        self.quantile_interp(0.5) as u64
    }

    /// Interpolated 90th percentile in whole units.
    pub fn p90(&self) -> u64 {
        self.quantile_interp(0.9) as u64
    }

    /// Interpolated 99th percentile in whole units.
    pub fn p99(&self) -> u64 {
        self.quantile_interp(0.99) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 2));
        assert_eq!(bucket_bounds(1), (2, 4));
        assert_eq!(bucket_bounds(10), (1 << 10, 1 << 11));
        assert_eq!(bucket_bounds(63), (1 << 63, u64::MAX));
        // Every bucket's hi is the next bucket's lo.
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0, "gap at bucket {}", i);
        }
        // Values map into the bucket whose bounds contain them.
        for v in [0u64, 1, 2, 3, 5, 100, 4095, 4096, 1 << 40] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(v >= lo && (v < hi || hi == u64::MAX), "{} not in [{}, {})", v, lo, hi);
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.nonempty_buckets().len(), 4);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
            whole.record(v);
        }
        for v in [81u64, 243] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantile_estimates_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1000); // bucket [512, 1024)
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(0.99), 16);
        assert_eq!(h.quantile(1.0), 1000); // clamped to observed max
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn interpolated_quantiles_stay_in_range_and_in_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1000); // bucket [512, 1024)
        let p50 = h.quantile_interp(0.5);
        assert!((8.0..16.0).contains(&p50), "p50 {} outside the median's bucket", p50);
        assert!(p50 >= h.min() as f64);
        let p995 = h.quantile_interp(0.995);
        assert!((512.0..=1000.0).contains(&p995), "p99.5 {} outside spike bucket", p995);
        assert_eq!(h.quantile_interp(1.0), 1000.0);
        assert_eq!(Histogram::new().quantile_interp(0.5), 0.0);
    }

    #[test]
    fn interpolated_quantiles_clamp_to_observed_extremes() {
        let mut h = Histogram::new();
        h.record(700); // bucket [512, 1024); interp would otherwise dip below
        assert_eq!(h.quantile_interp(0.0), 700.0);
        assert_eq!(h.p50(), 700);
        assert_eq!(h.p99(), 700);
    }
}

//! Figure 1 + §III-E2 (Test Set 2) — mixed-technique samples.
//!
//! (a) Top-k accuracy and average wrong/missing labels as k grows;
//! (b) the same with the 10% probability threshold;
//! (c) with a 50% threshold (few techniques remain detectable);
//! plus the level-1 transformed rate on mixed samples (paper: 99.99%).

use jsdetect_corpus::mixed_set;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use jsdetect_ml::metrics;
use serde::Serialize;

#[derive(Serialize)]
struct FigPoint {
    k: usize,
    accuracy: f64,
    subset_accuracy: f64,
    avg_wrong: f64,
    avg_missing: f64,
}

#[derive(Serialize)]
struct Fig1Result {
    level1_transformed_acc: f64,
    unthresholded: Vec<FigPoint>,
    threshold_10: Vec<FigPoint>,
    threshold_50: Vec<FigPoint>,
    max_detectable_at_50: usize,
    n: usize,
    labels_histogram: Vec<usize>,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let n_mixed = args.scaled(320);
    eprintln!("[fig1] generating {} mixed-technique samples...", n_mixed);
    let mixed = mixed_set(n_mixed, args.seed ^ MIXED_SALT);
    let srcs: Vec<&str> = mixed.iter().map(|s| s.src.as_str()).collect();

    // Level 1 on mixed samples: everything is transformed.
    let l1 = detectors.level1.predict_many(&srcs);
    let mut l1_ok = 0usize;
    let mut l1_n = 0usize;
    for p in l1.iter().flatten() {
        l1_n += 1;
        if p.is_transformed() {
            l1_ok += 1;
        }
    }
    let l1_acc = 100.0 * l1_ok as f64 / l1_n.max(1) as f64;

    // Level 2 probabilities.
    let probs = detectors.level2.predict_proba_many(&srcs);
    let mut kept_probs = Vec::new();
    let mut kept_truth = Vec::new();
    let mut labels_histogram = vec![0usize; 11];
    for (p, s) in probs.into_iter().zip(&mixed) {
        if let Some(p) = p {
            labels_histogram[s.techniques.len().min(10)] += 1;
            kept_probs.push(p);
            kept_truth.push(s.label_vector());
        }
    }

    let sweep = |threshold: f32| -> Vec<FigPoint> {
        (1..=10)
            .map(|k| {
                let s = metrics::top_k_stats(&kept_probs, &kept_truth, k, threshold);
                FigPoint {
                    k,
                    accuracy: 100.0 * s.exact_accuracy,
                    subset_accuracy: 100.0 * s.subset_accuracy,
                    avg_wrong: s.avg_wrong,
                    avg_missing: s.avg_missing,
                }
            })
            .collect()
    };
    // (a) no threshold: force exactly k labels (threshold 0 keeps all k).
    let unthresholded = sweep(0.0);
    let threshold_10 = sweep(0.10);
    let threshold_50 = sweep(0.50);
    // §III-E2: "even with a threshold of 50% we could only recognize 3 or
    // 4 techniques" — the largest number of labels any prediction keeps.
    let max_at_50 =
        kept_probs.iter().map(|p| metrics::thresholded_top_k(p, 10, 0.5).len()).max().unwrap_or(0);

    println!("Figure 1 / Test Set 2 — mixed-technique samples (n={})", kept_probs.len());
    println!("level-1 transformed accuracy: {:.2}% (paper: 99.99%)", l1_acc);
    println!("\nlabel-count histogram: {:?}", &labels_histogram[1..8]);
    for (title, points) in [
        ("(a) unthresholded top-k", &unthresholded),
        ("(b) threshold 10%", &threshold_10),
        ("(c) threshold 50%", &threshold_50),
    ] {
        println!("\n{}", title);
        println!("  k   set-acc  subset-acc  avg-wrong  avg-missing");
        for p in points.iter() {
            println!(
                "  {:2} {:7.2}% {:9.2}% {:10.3} {:12.3}",
                p.k, p.accuracy, p.subset_accuracy, p.avg_wrong, p.avg_missing
            );
        }
    }
    println!("\nmax techniques ever kept at threshold 50%: {} (paper: 3-4)", max_at_50);

    let result = Fig1Result {
        level1_transformed_acc: l1_acc,
        unthresholded,
        threshold_10,
        threshold_50,
        max_detectable_at_50: max_at_50,
        n: kept_probs.len(),
        labels_histogram,
    };
    or_exit(write_json(&args, "fig1", &result));
}

/// Salt decorrelating the mixed-set RNG stream from training.
const MIXED_SALT: u64 = 0x1234_5678;

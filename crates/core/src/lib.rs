//! `jsdetect`: static detection of JavaScript obfuscation and minification
//! techniques.
//!
//! A from-scratch Rust reproduction of *"Statically Detecting JavaScript
//! Obfuscation and Minification Techniques in the Wild"* (DSN 2021). The
//! pipeline abstracts scripts by their AST enhanced with control and data
//! flows, extracts 4-gram and hand-picked features, and runs two
//! multi-task random-forest detectors:
//!
//! - **Level 1** ([`Level1Detector`]): regular vs. minified vs. obfuscated;
//! - **Level 2** ([`Level2Detector`]): which of the ten transformation
//!   techniques were used, reported through the thresholded Top-k rule.
//!
//! # Quickstart
//!
//! ```no_run
//! use jsdetect::{train_pipeline, DetectorConfig};
//!
//! // Train at a laptop scale (the paper uses 21,000 source scripts).
//! let out = train_pipeline(200, 42, &DetectorConfig::default());
//! let verdict = out.detectors.level1.predict("var x=1;f(x);").unwrap();
//! println!("transformed: {}", verdict.is_transformed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cached;
mod classify;
mod config;
mod level1;
mod level2;
mod pipeline;
mod vectorize;

pub use cached::{analyze_many_cached, analyze_many_opt_cached, analyze_one_cached, CachedScript};
pub use classify::{classify_analyzed, classify_many_cached, classify_one_cached, ScriptVerdict};
pub use config::{AnalysisConfig, DetectorConfig};
pub use level1::{Level1Detector, Level1Prediction, Level1Truth};
pub use level2::{Level2Detector, DEFAULT_THRESHOLD};
pub use pipeline::{train_pipeline, PipelineOutput, TrainedDetectors};
pub use vectorize::{analyze_many, analyze_many_guarded, vectorize_dataset, vectorize_many};

// Re-export the vocabulary types users need alongside the detectors.
pub use jsdetect_features::GuardedScript;
pub use jsdetect_guard::{AnalysisError, Limits, OutcomeKind, QuarantineReport};
pub use jsdetect_ml::metrics;
pub use jsdetect_ml::Strategy;
pub use jsdetect_transform::Technique;

//! Figure 4 / §IV-B2 — npm transformation rate by package rank.
//!
//! Paper targets: the top-1k packages are 2.4–4.4× less likely to contain
//! transformed code than the remaining top-10k; within transformed
//! scripts, the top-1k split basic/advanced minification ≈49%/47% while
//! lower ranks favour basic (≈58%) over advanced (≈37%).

use jsdetect::Technique;
use jsdetect_corpus::npm_population;
use jsdetect_experiments::{or_exit, technique_usage_probability, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Bucket {
    rank_start: usize,
    transformed_pct: f64,
    min_simple_usage: f64,
    min_advanced_usage: f64,
    n: usize,
}

#[derive(Serialize)]
struct Fig4Result {
    buckets: Vec<Bucket>,
    top1k_vs_rest_factor: f64,
    paper_factor_range: [f64; 2],
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let packages_per_bucket = args.scaled(30);
    let month = 64;
    let mut buckets = Vec::new();
    for bucket in 0..10usize {
        // Transformed packages are rare events; aggregate several seeds
        // per bucket to tame the variance.
        let mut pop = Vec::new();
        for round in 0..4u64 {
            pop.extend(npm_population(
                month,
                packages_per_bucket,
                bucket * 1000,
                args.seed ^ ((bucket as u64) << 10) ^ (round << 40) ^ 0xf4,
            ));
        }
        let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
        let l1 = detectors.level1.predict_many(&srcs);
        let mut transformed = 0usize;
        let mut total = 0usize;
        for p in l1.iter().flatten() {
            total += 1;
            if p.is_transformed() {
                transformed += 1;
            }
        }
        let (usage, _) = technique_usage_probability(&detectors, &srcs);
        buckets.push(Bucket {
            rank_start: bucket * 1000,
            transformed_pct: 100.0 * transformed as f64 / total.max(1) as f64,
            min_simple_usage: 100.0 * usage[Technique::MinificationSimple.index()],
            min_advanced_usage: 100.0 * usage[Technique::MinificationAdvanced.index()],
            n: total,
        });
    }

    let top1k = buckets[0].transformed_pct.max(0.01);
    let rest: f64 = buckets[1..].iter().map(|b| b.transformed_pct).sum::<f64>() / 9.0;
    let factor = rest / top1k;

    println!("Figure 4 — npm transformation rate by rank bucket");
    println!("{:-<74}", "");
    println!(
        "{:>12} {:>13} {:>12} {:>12} {:>6}",
        "rank", "transformed", "min simple", "min adv", "n"
    );
    for b in &buckets {
        println!(
            "{:>5}-{:<6} {:>12.2}% {:>11.2}% {:>11.2}% {:>6}",
            b.rank_start,
            b.rank_start + 1000,
            b.transformed_pct,
            b.min_simple_usage,
            b.min_advanced_usage,
            b.n
        );
    }
    println!("\ntop-1k is {:.1}x less transformed than the rest (paper: 2.4-4.4x)", factor);
    println!("paper: top-1k splits 49/47 basic/advanced; rest 58/37");

    or_exit(write_json(
        &args,
        "fig4_npm_rank",
        &Fig4Result { buckets, top1k_vs_rest_factor: factor, paper_factor_range: [2.4, 4.4] },
    ));
}

//! The daemon core: bounded worker pool, watchdog, breaker, drain.
//!
//! Ownership layout: [`Daemon`] holds an `Arc<Shared>`; every worker
//! thread and the watchdog hold clones. Workers pull [`Job`]s off the
//! bounded queue; each job carries a single-shot [`Responder`], so the
//! worker and the watchdog can race to answer it — whoever sends first
//! wins, the loser's response is dropped. That single invariant ("every
//! accepted job is answered exactly once, by somebody") is what the
//! integration tests reconcile: `accepted == responses` after drain.
//!
//! Failure containment is layered:
//!
//! 1. The guard's fuel budgets reject pathological inputs in-band.
//! 2. `isolate("serve_worker", ..)` fences panics that escape the
//!    analysis fences (e.g. injected chaos panics); the worker answers
//!    `quarantined`, marks itself dead, and exits — the watchdog spawns a
//!    replacement thread.
//! 3. The watchdog abandons workers stuck past `stuck_after_ms`
//!    (generation bump), answers their request `quarantined`
//!    (`watchdog_timeout`), and spawns a replacement. The abandoned
//!    thread eventually finishes, notices its generation is stale, drops
//!    its late response, and exits.
//! 4. The circuit breaker sheds parser work entirely when the p99 or the
//!    reject rate breaches.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Mode};
use crate::chaos::{Chaos, ChaosConfig};
use crate::protocol::{AnalyzeRequest, AnalyzeResponse, Status};
use crate::queue::{BoundedQueue, PushError};
use jsdetect::{
    classify_analyzed, classify_one_cached, AnalysisConfig, CachedScript, Limits, ScriptVerdict,
    TrainedDetectors, DEFAULT_THRESHOLD,
};
use jsdetect_ast::{global_interner, INTERNER_EXHAUSTED_MSG};
use jsdetect_cache::{AnalysisCache, ContentHash};
use jsdetect_features::analyze_script_lexer_only;
use jsdetect_guard::{isolate, AnalysisError, OutcomeKind};
use jsdetect_obs::names;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon sizing and robustness knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size.
    pub workers: usize,
    /// Bounded queue capacity (admission control limit).
    pub queue_capacity: usize,
    /// Limits preset applied when a request names none.
    pub default_limits: Limits,
    /// Deadline applied when a request names none (`0` = none).
    pub default_deadline_ms: u64,
    /// Watchdog scan interval.
    pub watchdog_interval_ms: u64,
    /// A worker in-flight longer than this is abandoned and its request
    /// quarantined.
    pub stuck_after_ms: u64,
    /// Interner headroom (atoms) required at admission; below it the
    /// request is refused `resource` instead of risking a mid-parse
    /// capacity panic.
    pub interner_reserve: u32,
    /// Circuit breaker thresholds.
    pub breaker: BreakerConfig,
    /// Fault injection schedule (all zeros = disarmed).
    pub chaos: ChaosConfig,
    /// Level-2 Top-k default.
    pub top_k: usize,
    /// Level-2 threshold default.
    pub threshold: f32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_limits: Limits::wild(),
            default_deadline_ms: 0,
            watchdog_interval_ms: 100,
            stuck_after_ms: 10_000,
            interner_reserve: 1 << 16,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::default(),
            top_k: 4,
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

/// Daemon-local accounting. The obs counters carry the same names but are
/// process-global; these atomics are per-daemon so tests (which may run
/// several daemons in one process) can reconcile exactly.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    invalid: AtomicU64,
    responses: AtomicU64,
    degraded: AtomicU64,
    drained: AtomicU64,
    quarantined: AtomicU64,
    watchdog_timeouts: AtomicU64,
    worker_replaced: AtomicU64,
}

/// Point-in-time copy of the daemon's own accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests refused at admission (overloaded / draining / resource).
    pub rejected: u64,
    /// Requests refused as malformed (unknown preset etc.).
    pub invalid: u64,
    /// Responses actually delivered for accepted requests.
    pub responses: u64,
    /// Responses served in breaker-degraded lexer-only mode.
    pub degraded: u64,
    /// Responses delivered after the drain began.
    pub drained: u64,
    /// Accepted requests answered `quarantined` (panic or watchdog).
    pub quarantined: u64,
    /// Stuck workers abandoned by the watchdog.
    pub watchdog_timeouts: u64,
    /// Replacement worker threads spawned.
    pub worker_replaced: u64,
}

impl Counters {
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            watchdog_timeouts: self.watchdog_timeouts.load(Ordering::Relaxed),
            worker_replaced: self.worker_replaced.load(Ordering::Relaxed),
        }
    }
}

/// What [`Daemon::shutdown`] reports after the drain completes.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final per-daemon accounting.
    pub stats: DaemonStats,
    /// `responses − drained`: requests answered before the drain began.
    pub responded_before_shutdown: u64,
    /// Final process telemetry snapshot, JSONL-rendered.
    pub final_telemetry_jsonl: String,
    /// Breaker position at exit.
    pub breaker_state: BreakerState,
}

/// Single-shot response channel: the first `send` wins, later sends are
/// dropped. This is how a worker and the watchdog can both hold the right
/// to answer a request without double-counting.
#[derive(Clone)]
struct Responder {
    tx: mpsc::Sender<AnalyzeResponse>,
    sent: Arc<AtomicBool>,
}

impl Responder {
    fn new(tx: mpsc::Sender<AnalyzeResponse>) -> Responder {
        Responder { tx, sent: Arc::new(AtomicBool::new(false)) }
    }

    /// Delivers `resp` if nobody answered yet; `true` when this call won.
    fn send(&self, resp: AnalyzeResponse) -> bool {
        if self.sent.swap(true, Ordering::AcqRel) {
            return false;
        }
        // A dropped receiver (client gave up) still counts as answered:
        // the daemon did its part.
        let _ = self.tx.send(resp);
        true
    }
}

/// One accepted request.
struct Job {
    id: u64,
    src: String,
    limits: Limits,
    deadline_ms: u64,
    top_k: usize,
    threshold: f32,
    accepted_at: Instant,
    responder: Responder,
}

/// What the watchdog needs to know about a worker's current request.
struct InFlight {
    job_id: u64,
    started: Instant,
    accepted_at: Instant,
    responder: Responder,
}

/// One worker seat. The thread occupying it checks `gen` between jobs; a
/// generation bump abandons the thread without blocking on it.
struct Slot {
    gen: AtomicU64,
    alive: AtomicBool,
    inflight: Mutex<Option<InFlight>>,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    slots: Vec<Slot>,
    counters: Counters,
    breaker: CircuitBreaker,
    chaos: Arc<Chaos>,
    detectors: Arc<TrainedDetectors>,
    cache: Option<Arc<AnalysisCache>>,
    draining: AtomicBool,
    watchdog_stop: AtomicBool,
    next_job_id: AtomicU64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The resident detection daemon (transport-independent core).
pub struct Daemon {
    shared: Arc<Shared>,
    watchdog: Mutex<Option<std::thread::JoinHandle<()>>>,
    shut_down: AtomicBool,
}

impl Daemon {
    /// Starts the worker pool and watchdog around pre-loaded detectors and
    /// an optional shared verdict cache. If the chaos schedule arms cache
    /// publish failures, the injector is installed on `cache` here.
    pub fn start(
        cfg: ServeConfig,
        detectors: Arc<TrainedDetectors>,
        cache: Option<Arc<AnalysisCache>>,
    ) -> Daemon {
        // A resident daemon without live metrics is undebuggable; the
        // streaming core is cheap enough to keep on for the whole
        // process lifetime (PR 8's design premise).
        jsdetect_obs::set_enabled(true);
        let workers = cfg.workers.max(1);
        let chaos = Arc::new(Chaos::new(cfg.chaos.clone()));
        if let (Some(cache), Some(injector)) = (&cache, chaos.cache_injector()) {
            cache.set_publish_injector(Some(injector));
        }
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            slots: (0..workers)
                .map(|_| Slot {
                    gen: AtomicU64::new(0),
                    alive: AtomicBool::new(true),
                    inflight: Mutex::new(None),
                })
                .collect(),
            counters: Counters::default(),
            breaker: CircuitBreaker::new(cfg.breaker.clone()),
            chaos,
            detectors,
            cache,
            draining: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            next_job_id: AtomicU64::new(1),
            cfg,
            handles: Mutex::new(Vec::new()),
        });
        for i in 0..workers {
            spawn_worker(&shared, i, 0);
        }
        jsdetect_obs::gauge_set(names::GAUGE_SERVE_WORKERS_ALIVE, workers as f64);
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog thread")
        };
        Daemon { shared, watchdog: Mutex::new(Some(watchdog)), shut_down: AtomicBool::new(false) }
    }

    /// Admission control: validates the request, checks drain state and
    /// interner headroom, and tries the bounded queue.
    ///
    /// # Errors
    ///
    /// Returns the refusal response to relay verbatim: `draining`,
    /// `resource` (interner headroom), `invalid` (unknown preset), or
    /// `overloaded` (queue full).
    #[allow(clippy::result_large_err)] // refusals are relayed by value
    pub fn submit(
        &self,
        req: AnalyzeRequest,
    ) -> Result<mpsc::Receiver<AnalyzeResponse>, AnalyzeResponse> {
        let s = &self.shared;
        if s.draining.load(Ordering::Acquire) {
            return Err(self.reject(Status::Draining, "draining", "daemon is shutting down"));
        }
        let stats = global_interner().stats();
        jsdetect_obs::gauge_set(names::GAUGE_INTERNER_OCCUPANCY, stats.occupancy());
        if !stats.has_headroom(s.cfg.interner_reserve) {
            return Err(self.reject(
                Status::Resource,
                "interner_exhausted",
                format!(
                    "atom interner at {}/{} capacity; refusing new work",
                    stats.count, stats.capacity
                ),
            ));
        }
        let limits = match req.limits.as_deref() {
            None => s.cfg.default_limits.clone(),
            Some(name) => match Limits::from_name(name) {
                Some(l) => l,
                None => {
                    s.counters.invalid.fetch_add(1, Ordering::Relaxed);
                    jsdetect_obs::counter_add(names::CTR_SERVE_REQUESTS_INVALID, 1);
                    return Err(AnalyzeResponse::refusal(
                        Status::Invalid,
                        "unknown_limits",
                        format!("unknown limits preset `{name}`"),
                    ));
                }
            },
        };
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: s.next_job_id.fetch_add(1, Ordering::Relaxed),
            src: req.src,
            limits,
            deadline_ms: req.deadline_ms.unwrap_or(s.cfg.default_deadline_ms),
            top_k: req.top_k.map(|k| k as usize).unwrap_or(s.cfg.top_k),
            threshold: req.threshold.unwrap_or(s.cfg.threshold),
            accepted_at: Instant::now(),
            responder: Responder::new(tx),
        };
        match s.queue.try_push(job) {
            Ok(()) => {
                s.counters.accepted.fetch_add(1, Ordering::Relaxed);
                jsdetect_obs::counter_add(names::CTR_SERVE_ACCEPTED, 1);
                jsdetect_obs::gauge_set(names::GAUGE_SERVE_QUEUE_DEPTH, s.queue.len() as f64);
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                s.breaker.record_reject();
                Err(self.reject(
                    Status::Overloaded,
                    "queue_full",
                    format!("queue at capacity ({})", s.queue.capacity()),
                ))
            }
            Err(PushError::Closed(_)) => {
                Err(self.reject(Status::Draining, "draining", "daemon is shutting down"))
            }
        }
    }

    /// Submit-and-wait convenience: the wait bound is derived from the
    /// watchdog contract (every accepted request is answered within queue
    /// drain time plus `stuck_after_ms`), so this cannot hang forever.
    pub fn call(&self, req: AnalyzeRequest) -> AnalyzeResponse {
        match self.submit(req) {
            Err(refusal) => refusal,
            Ok(rx) => rx.recv_timeout(self.max_wait()).unwrap_or_else(|_| {
                AnalyzeResponse::refusal(
                    Status::Timeout,
                    "response_timeout",
                    "no response within the watchdog bound",
                )
            }),
        }
    }

    /// Upper bound on how long an accepted request can take to be
    /// answered: every job ahead of it is bounded by `stuck_after_ms`
    /// (watchdog) plus injected delay, across `queue/workers` rounds.
    pub(crate) fn max_wait(&self) -> Duration {
        let cfg = &self.shared.cfg;
        let rounds = (cfg.queue_capacity / cfg.workers.max(1) + 2) as u64;
        let per_job = cfg.stuck_after_ms + cfg.watchdog_interval_ms + cfg.chaos.delay_ms;
        Duration::from_millis(rounds * per_job.max(100) + 5_000)
    }

    /// Stops admissions, drains every accepted request, joins the pool and
    /// the watchdog, drops the cache's memory front, and snapshots final
    /// telemetry. Idempotent: the second call reports without re-draining.
    pub fn shutdown(&self) -> ShutdownReport {
        let s = &self.shared;
        if !self.shut_down.swap(true, Ordering::AcqRel) {
            s.draining.store(true, Ordering::Release);
            s.queue.close();
            // Join workers until no thread is left; the watchdog may spawn
            // replacements mid-drain, so re-check after each batch.
            loop {
                let batch: Vec<_> = {
                    let mut handles = s.handles.lock().unwrap_or_else(|e| e.into_inner());
                    handles.drain(..).collect()
                };
                if batch.is_empty() {
                    break;
                }
                for h in batch {
                    let _ = h.join();
                }
            }
            s.watchdog_stop.store(true, Ordering::Release);
            if let Some(h) = self.watchdog.lock().unwrap_or_else(|e| e.into_inner()).take() {
                let _ = h.join();
            }
            if let Some(cache) = &s.cache {
                cache.set_publish_injector(None);
                cache.drop_memory();
            }
            jsdetect_obs::gauge_set(names::GAUGE_SERVE_WORKERS_ALIVE, 0.0);
            jsdetect_obs::gauge_set(names::GAUGE_SERVE_QUEUE_DEPTH, 0.0);
        }
        let stats = s.counters.stats();
        ShutdownReport {
            responded_before_shutdown: stats.responses - stats.drained,
            final_telemetry_jsonl: jsdetect_obs::to_jsonl(&jsdetect_obs::snapshot()),
            breaker_state: s.breaker.state(),
            stats,
        }
    }

    /// Current per-daemon accounting.
    pub fn stats(&self) -> DaemonStats {
        self.shared.counters.stats()
    }

    /// Current breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.state()
    }

    /// Whether the daemon is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Current queue depth (racy; for health endpoints).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Configured worker pool size.
    pub fn workers(&self) -> usize {
        self.shared.slots.len()
    }

    /// Live worker count (seats whose thread has not died or exited).
    pub fn workers_alive(&self) -> usize {
        self.shared.slots.iter().filter(|s| s.alive.load(Ordering::Acquire)).count()
    }

    /// The daemon's fault-injection engine (for test assertions).
    pub fn chaos(&self) -> &Chaos {
        &self.shared.chaos
    }

    /// JSON health document for `GET /healthz`.
    pub fn healthz_json(&self) -> String {
        let stats = self.stats();
        format!(
            concat!(
                "{{\"state\":\"{}\",\"breaker\":\"{}\",\"workers\":{},\"workers_alive\":{},",
                "\"queue_depth\":{},\"queue_capacity\":{},\"accepted\":{},\"rejected\":{},",
                "\"responses\":{},\"degraded\":{},\"quarantined\":{}}}"
            ),
            if self.is_draining() { "draining" } else { "serving" },
            self.breaker_state().as_str(),
            self.workers(),
            self.workers_alive(),
            self.queue_depth(),
            self.shared.queue.capacity(),
            stats.accepted,
            stats.rejected,
            stats.responses,
            stats.degraded,
            stats.quarantined,
        )
    }

    fn reject(&self, status: Status, kind: &str, msg: impl Into<String>) -> AnalyzeResponse {
        self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        jsdetect_obs::counter_add(names::CTR_SERVE_REJECTED, 1);
        AnalyzeResponse::refusal(status, kind, msg)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if !self.shut_down.load(Ordering::Acquire) {
            let _ = self.shutdown();
        }
    }
}

/// Central response bookkeeping: stamps latency, delivers through the
/// single-shot responder, and counts only if this delivery won.
fn respond(
    shared: &Shared,
    responder: &Responder,
    mut resp: AnalyzeResponse,
    accepted_at: Instant,
) {
    let latency_us = accepted_at.elapsed().as_micros() as u64;
    resp.latency_us = latency_us;
    let quarantined = resp.status_tag() == Status::Quarantined;
    let degraded_mode = resp.degraded_mode;
    if !responder.send(resp) {
        return;
    }
    shared.counters.responses.fetch_add(1, Ordering::Relaxed);
    jsdetect_obs::counter_add(names::CTR_SERVE_RESPONSES, 1);
    jsdetect_obs::observe(names::HIST_SERVE_LATENCY_US, latency_us);
    if quarantined {
        shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        jsdetect_obs::counter_add(names::CTR_SERVE_QUARANTINED, 1);
    }
    if degraded_mode {
        shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
        jsdetect_obs::counter_add(names::CTR_SERVE_DEGRADED, 1);
    }
    if shared.draining.load(Ordering::Acquire) {
        shared.counters.drained.fetch_add(1, Ordering::Relaxed);
        jsdetect_obs::counter_add(names::CTR_SERVE_DRAINED, 1);
    }
}

fn spawn_worker(shared: &Arc<Shared>, slot_idx: usize, gen: u64) {
    let me = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("serve-worker-{slot_idx}"))
        .spawn(move || worker_loop(&me, slot_idx, gen))
        .expect("spawn worker thread");
    shared.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
}

fn worker_loop(shared: &Arc<Shared>, slot_idx: usize, my_gen: u64) {
    loop {
        let slot = &shared.slots[slot_idx];
        if slot.gen.load(Ordering::Acquire) != my_gen {
            return; // abandoned by the watchdog; a replacement owns the seat
        }
        let Some(job) = shared.queue.pop() else {
            // Queue closed and fully drained: clean exit.
            slot.alive.store(false, Ordering::Release);
            return;
        };
        *slot.inflight.lock().unwrap_or_else(|e| e.into_inner()) = Some(InFlight {
            job_id: job.id,
            started: Instant::now(),
            accepted_at: job.accepted_at,
            responder: job.responder.clone(),
        });
        let result = isolate("serve_worker", || execute(shared, &job));
        {
            // Clear our registration unless the watchdog already took it.
            let mut inflight = slot.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if inflight.as_ref().map(|f| f.job_id) == Some(job.id) {
                *inflight = None;
            }
        }
        let abandoned = slot.gen.load(Ordering::Acquire) != my_gen;
        match result {
            Ok((resp, mode)) => {
                if abandoned {
                    // The watchdog answered for us and seated a
                    // replacement; our late result is dropped.
                    return;
                }
                let latency_ms = job.accepted_at.elapsed().as_millis() as u64;
                respond(shared, &job.responder, resp, job.accepted_at);
                shared.breaker.record_latency(latency_ms, mode);
            }
            Err(err) => {
                // A panic escaped the analysis fences (injected chaos, or
                // a bug outside `isolate("analyze")`). Answer the request,
                // poison this seat, and let the watchdog replace us.
                let resp = panic_response(&err);
                if !abandoned {
                    respond(shared, &job.responder, resp, job.accepted_at);
                }
                slot.alive.store(false, Ordering::Release);
                return;
            }
        }
    }
}

fn panic_response(err: &AnalysisError) -> AnalyzeResponse {
    let detail = err.to_string();
    if detail.contains(INTERNER_EXHAUSTED_MSG) {
        AnalyzeResponse::refusal(Status::Resource, "interner_exhausted", detail)
    } else {
        AnalyzeResponse::refusal(Status::Quarantined, err.kind(), detail)
    }
}

/// Runs one job: deadline bookkeeping, breaker mode selection, then either
/// the full cache-aware classification path or the lexer-only degraded
/// path. Returns the response plus the mode for breaker accounting.
fn execute(shared: &Shared, job: &Job) -> (AnalyzeResponse, Mode) {
    shared.chaos.before_analysis();
    let mut limits = job.limits.clone();
    if job.deadline_ms > 0 {
        let waited_ms = job.accepted_at.elapsed().as_millis() as u64;
        if waited_ms >= job.deadline_ms {
            let resp = AnalyzeResponse::refusal(
                Status::Timeout,
                "deadline_exceeded",
                format!(
                    "deadline ({} ms) expired after {} ms in queue",
                    job.deadline_ms, waited_ms
                ),
            );
            return (resp, Mode::Full);
        }
        // Queue wait is charged against the deadline; the remainder
        // becomes the guard's fuel-metered analysis budget.
        let remaining = job.deadline_ms - waited_ms;
        limits.deadline_ms =
            if limits.deadline_ms == 0 { remaining } else { limits.deadline_ms.min(remaining) };
    }
    let config = AnalysisConfig { limits, fail_fast: false };
    let mode = shared.breaker.admit_mode();
    let verdict = if mode.is_degraded() {
        let analyzed = degraded_analyze(shared, &job.src, &config);
        classify_analyzed(analyzed, &shared.detectors, job.top_k, job.threshold)
    } else {
        classify_one_cached(
            &job.src,
            &config,
            shared.cache.as_deref(),
            &shared.detectors,
            job.top_k,
            job.threshold,
        )
    };
    (verdict_response(&verdict, mode.is_degraded()), mode)
}

/// The breaker-degraded path: replay a cached full verdict when one
/// exists, otherwise run the lexer-only pipeline. The lexer-only verdict
/// is deliberately **not** published to the cache — it lives under the
/// same key a full verdict would, and must not shadow one.
fn degraded_analyze(shared: &Shared, src: &str, config: &AnalysisConfig) -> CachedScript {
    let hash = ContentHash::of(src.as_bytes());
    if let Some(rec) = shared.cache.as_deref().and_then(|c| c.get(&hash)) {
        return CachedScript {
            hash,
            outcome: rec.outcome,
            error_kind: rec.error_kind.clone(),
            error_msg: rec.error_msg.clone(),
            payload: rec.payload.clone(),
            from_cache: true,
        };
    }
    let g = analyze_script_lexer_only(src, &config.limits);
    CachedScript {
        hash,
        outcome: g.outcome,
        error_kind: g.error.as_ref().map(|e| e.kind().to_string()).unwrap_or_default(),
        error_msg: g.error.as_ref().map(|e| e.to_string()).unwrap_or_default(),
        payload: g.analysis.as_ref().map(jsdetect_features::FeaturePayload::extract),
        from_cache: false,
    }
}

fn verdict_response(v: &ScriptVerdict, degraded_mode: bool) -> AnalyzeResponse {
    let status = if v.error_kind == "deadline_exceeded" && v.outcome == OutcomeKind::Rejected {
        Status::Timeout
    } else {
        Status::Ok
    };
    let (regular, minified, obfuscated) =
        v.level1.map(|p| (p.regular, p.minified, p.obfuscated)).unwrap_or((0.0, 0.0, 0.0));
    AnalyzeResponse {
        status: status.as_str().to_string(),
        outcome: v.outcome.as_str().to_string(),
        error_kind: v.error_kind.clone(),
        error_msg: v.error_msg.clone(),
        transformed: v.is_transformed(),
        regular,
        minified,
        obfuscated,
        techniques: v.techniques.iter().map(|t| t.as_str().to_string()).collect(),
        from_cache: v.from_cache,
        degraded_mode,
        latency_us: 0, // stamped by `respond`
    }
}

fn watchdog_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.cfg.watchdog_interval_ms.max(1));
    let stuck_after = Duration::from_millis(shared.cfg.stuck_after_ms.max(1));
    loop {
        std::thread::sleep(interval);
        if shared.watchdog_stop.load(Ordering::Acquire) {
            return;
        }
        let mut alive = 0usize;
        for (i, slot) in shared.slots.iter().enumerate() {
            // Take (don't just observe) a stuck registration so the
            // stuck worker can no longer race us for the response slot
            // bookkeeping.
            let stuck = {
                let mut inflight = slot.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match &*inflight {
                    Some(f) if f.started.elapsed() >= stuck_after => inflight.take(),
                    _ => None,
                }
            };
            if let Some(f) = stuck {
                let resp = AnalyzeResponse::refusal(
                    Status::Quarantined,
                    "watchdog_timeout",
                    format!(
                        "worker stuck for over {} ms; request quarantined, worker replaced",
                        shared.cfg.stuck_after_ms
                    ),
                );
                respond(shared, &f.responder, resp, f.accepted_at);
                shared.counters.watchdog_timeouts.fetch_add(1, Ordering::Relaxed);
                jsdetect_obs::counter_add(names::CTR_SERVE_WATCHDOG_TIMEOUTS, 1);
                // Latency pressure from stuck workers must reach the
                // breaker, or a fully-stuck pool never degrades.
                shared
                    .breaker
                    .record_latency(f.accepted_at.elapsed().as_millis() as u64, Mode::Full);
                replace_worker(shared, i, slot);
                alive += 1;
                continue;
            }
            if slot.alive.load(Ordering::Acquire) {
                alive += 1;
            } else if !shared.draining.load(Ordering::Acquire) || !shared.queue.is_empty() {
                // A dead seat (panicked worker) gets a fresh thread —
                // unless we are draining an already-empty queue, where
                // workers exiting is the expected end state.
                replace_worker(shared, i, slot);
                alive += 1;
            }
        }
        jsdetect_obs::gauge_set(names::GAUGE_SERVE_WORKERS_ALIVE, alive as f64);
        jsdetect_obs::gauge_set(names::GAUGE_SERVE_QUEUE_DEPTH, shared.queue.len() as f64);
    }
}

fn replace_worker(shared: &Arc<Shared>, slot_idx: usize, slot: &Slot) {
    let gen = slot.gen.fetch_add(1, Ordering::AcqRel) + 1;
    slot.alive.store(true, Ordering::Release);
    spawn_worker(shared, slot_idx, gen);
    shared.counters.worker_replaced.fetch_add(1, Ordering::Relaxed);
    jsdetect_obs::counter_add(names::CTR_SERVE_WORKER_REPLACED, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect::{train_pipeline, DetectorConfig};
    use std::sync::OnceLock;

    fn detectors() -> Arc<TrainedDetectors> {
        static D: OnceLock<Arc<TrainedDetectors>> = OnceLock::new();
        Arc::clone(
            D.get_or_init(|| Arc::new(train_pipeline(24, 11, &DetectorConfig::fast()).detectors)),
        )
    }

    #[test]
    fn clean_request_round_trips_and_reconciles() {
        let daemon = Daemon::start(ServeConfig::default(), detectors(), None);
        let resp = daemon.call(AnalyzeRequest::new("function f(a) { return a + 1; } f(2);"));
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.outcome, "ok");
        assert!(resp.latency_us > 0);
        let report = daemon.shutdown();
        assert_eq!(report.stats.accepted, 1);
        assert_eq!(report.stats.responses, 1);
        assert_eq!(report.stats.rejected, 0);
    }

    #[test]
    fn unknown_preset_is_invalid_not_accepted() {
        let daemon = Daemon::start(ServeConfig::default(), detectors(), None);
        let mut req = AnalyzeRequest::new("var x = 1;");
        req.limits = Some("turbo".into());
        let resp = daemon.call(req);
        assert_eq!(resp.status, "invalid");
        assert_eq!(resp.error_kind, "unknown_limits");
        let report = daemon.shutdown();
        assert_eq!(report.stats.accepted, 0);
        assert_eq!(report.stats.invalid, 1);
    }

    #[test]
    fn injected_panic_is_quarantined_and_worker_replaced() {
        let cfg = ServeConfig {
            workers: 1,
            watchdog_interval_ms: 10,
            chaos: ChaosConfig { panic_every: 2, ..Default::default() },
            ..Default::default()
        };
        let daemon = Daemon::start(cfg, detectors(), None);
        let first = daemon.call(AnalyzeRequest::new("var a = 1;"));
        assert_eq!(first.status, "ok");
        let second = daemon.call(AnalyzeRequest::new("var b = 2;"));
        assert_eq!(second.status, "quarantined", "2nd request hits the injected panic");
        assert!(second.error_msg.contains(crate::chaos::CHAOS_PANIC_MSG));
        // The watchdog must reseat the poisoned worker so the pool keeps
        // serving.
        let third = daemon.call(AnalyzeRequest::new("var c = 3;"));
        assert_eq!(third.status, "ok");
        let report = daemon.shutdown();
        assert_eq!(report.stats.accepted, 3);
        assert_eq!(report.stats.responses, 3);
        assert_eq!(report.stats.quarantined, 1);
        assert!(report.stats.worker_replaced >= 1);
        assert_eq!(daemon.chaos().injected_panics(), 1);
    }

    #[test]
    fn queue_deadline_expiry_is_answered_timeout() {
        let cfg = ServeConfig {
            workers: 1,
            chaos: ChaosConfig { delay_every: 1, delay_ms: 80, ..Default::default() },
            ..Default::default()
        };
        let daemon = Daemon::start(cfg, detectors(), None);
        // Occupy the lone worker, then enqueue a request whose deadline
        // will expire while it waits.
        let busy = daemon.submit(AnalyzeRequest::new("var busy = 1;")).unwrap();
        let mut doomed = AnalyzeRequest::new("var late = 2;");
        doomed.deadline_ms = Some(10);
        let doomed_rx = daemon.submit(doomed).unwrap();
        let busy_resp = busy.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(busy_resp.status, "ok");
        let doomed_resp = doomed_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(doomed_resp.status, "timeout");
        assert_eq!(doomed_resp.error_kind, "deadline_exceeded");
        let report = daemon.shutdown();
        assert_eq!(report.stats.responses, 2);
    }
}

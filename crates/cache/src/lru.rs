//! A small LRU map used as the in-memory front of the on-disk store.
//!
//! Recency is tracked with a monotonically increasing tick per access and
//! a `BTreeMap<tick, key>` ordered index, so get/insert/evict are all
//! `O(log n)` without unsafe pointer juggling (the workspace forbids
//! `unsafe`). Capacities are small (thousands of entries), so the log
//! factor is noise next to the disk read it saves.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct LruMap<K: Eq + Hash + Clone, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (u64, V)>,
    by_age: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    /// Creates a map holding at most `capacity` entries. A capacity of 0
    /// disables the map (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruMap { capacity, tick: 0, entries: HashMap::new(), by_age: BTreeMap::new() }
    }

    /// Number of live entries (test observability).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty (test observability).
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let (age, _) = self.entries.get(key)?;
        let old_age = *age;
        self.tick += 1;
        let tick = self.tick;
        self.by_age.remove(&old_age);
        let entry = self.entries.get_mut(key).expect("entry just found");
        entry.0 = tick;
        self.by_age.insert(tick, key.clone());
        Some(entry.1.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_age, _)) = self.entries.get(&key) {
            self.by_age.remove(&{ *old_age });
        } else if self.entries.len() >= self.capacity {
            if let Some((&oldest, _)) = self.by_age.iter().next() {
                if let Some(victim) = self.by_age.remove(&oldest) {
                    self.entries.remove(&victim);
                }
            }
        }
        self.by_age.insert(tick, key.clone());
        self.entries.insert(key, (tick, value));
    }

    /// Removes `key` if present (used when a disk record is evicted as
    /// corrupt, so memory never outlives disk truth).
    pub fn remove(&mut self, key: &K) {
        if let Some((age, _)) = self.entries.remove(key) {
            self.by_age.remove(&age);
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_age.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(1)); // refresh a; b is now oldest
        lru.insert("c", 3);
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(1));
        assert_eq!(lru.get(&"c"), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("a", 10);
        lru.insert("b", 2);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(10));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut lru = LruMap::new(0);
        lru.insert("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&"a"), None);
    }

    #[test]
    fn remove_and_clear() {
        let mut lru = LruMap::new(4);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.remove(&"a");
        assert_eq!(lru.get(&"a"), None);
        assert_eq!(lru.len(), 1);
        lru.clear();
        assert!(lru.is_empty());
    }

    #[test]
    fn heavy_mixed_workload_respects_capacity() {
        let mut lru = LruMap::new(16);
        for i in 0..1000u32 {
            lru.insert(i % 40, i);
            lru.get(&(i % 7));
            assert!(lru.len() <= 16);
        }
    }
}

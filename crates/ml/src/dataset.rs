//! Contiguous column-major feature storage.
//!
//! The ML hot paths (forest fit, batch inference) operate on a [`Dataset`]:
//! one `Vec<f32>` backing store laid out column-major, indexed as
//! `data[col * n_rows + row]` and built once from the vectorized
//! samples. Trees grow over
//! `&[u32]` row-index sets, so bootstrap resampling and recursive
//! partitioning never clone a feature row; split search walks whole
//! columns, which are contiguous and cache-resident at pipeline scale.

use serde::{Deserialize, Serialize};

/// Why a [`Dataset`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows were provided.
    Empty,
    /// A row's width differs from the first row's.
    Ragged {
        /// Index of the offending row.
        row: usize,
        /// Width of row 0.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "cannot build a dataset from zero rows"),
            DatasetError::Ragged { row, expected, got } => {
                write!(f, "ragged row {}: expected {} features, got {}", row, expected, got)
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dense feature matrix in column-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    data: Vec<f32>,
    n_rows: usize,
    n_cols: usize,
}

impl Dataset {
    /// An all-zero dataset of the given shape (rows are then filled in
    /// place with [`Dataset::fill_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` is zero.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows > 0, "cannot build a dataset with zero rows");
        Dataset { data: vec![0.0; n_rows * n_cols], n_rows, n_cols }
    }

    /// Builds a dataset by transposing row-major input once.
    ///
    /// # Errors
    ///
    /// Rejects empty input and ragged rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, DatasetError> {
        let first = rows.first().ok_or(DatasetError::Empty)?;
        let n_cols = first.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != n_cols {
                return Err(DatasetError::Ragged { row: i, expected: n_cols, got: r.len() });
            }
        }
        let mut ds = Dataset::zeros(rows.len(), n_cols);
        for (i, r) in rows.iter().enumerate() {
            ds.fill_row(i, r);
        }
        Ok(ds)
    }

    /// A single-row dataset (the batch view of one sample).
    ///
    /// # Panics
    ///
    /// Panics if `row` is empty — use [`Dataset::zeros`] for degenerate
    /// shapes.
    pub fn from_single_row(row: &[f32]) -> Self {
        let mut ds = Dataset::zeros(1, row.len());
        ds.fill_row(0, row);
        ds
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// One feature column as a contiguous slice.
    pub fn column(&self, col: usize) -> &[f32] {
        &self.data[col * self.n_rows..(col + 1) * self.n_rows]
    }

    /// Value at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[col * self.n_rows + row]
    }

    /// Scatters one row-major sample into the columnar store.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_cols` or `row` is out of range.
    pub fn fill_row(&mut self, row: usize, values: &[f32]) {
        assert_eq!(values.len(), self.n_cols, "row width mismatch");
        assert!(row < self.n_rows, "row out of range");
        for (c, &v) in values.iter().enumerate() {
            self.data[c * self.n_rows + row] = v;
        }
    }

    /// Gathers one row into `out` (cleared first).
    pub fn copy_row_into(&self, row: usize, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..self.n_cols).map(|c| self.get(row, c)));
    }

    /// Appends a new column (used by classifier chains to thread label
    /// predictions through as features — an O(`n_rows`) contiguous push).
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != n_rows`.
    pub fn push_column(&mut self, col: &[f32]) {
        assert_eq!(col.len(), self.n_rows, "column height mismatch");
        self.data.extend_from_slice(col);
        self.n_cols += 1;
    }

    /// A new dataset containing the given rows (in order, duplicates
    /// allowed) — the columnar analogue of slicing a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any index is out of range.
    pub fn gather_rows(&self, rows: &[u32]) -> Dataset {
        assert!(!rows.is_empty(), "cannot gather zero rows");
        let mut data = Vec::with_capacity(rows.len() * self.n_cols);
        for c in 0..self.n_cols {
            let col = self.column(c);
            data.extend(rows.iter().map(|&r| col[r as usize]));
        }
        Dataset { data, n_rows: rows.len(), n_cols: self.n_cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let ds = Dataset::from_rows(&rows).unwrap();
        assert_eq!((ds.n_rows(), ds.n_cols()), (2, 3));
        assert_eq!(ds.column(1), &[2.0, 5.0]);
        assert_eq!(ds.get(1, 2), 6.0);
        let mut out = Vec::new();
        ds.copy_row_into(0, &mut out);
        assert_eq!(out, rows[0]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Dataset::from_rows(&[]), Err(DatasetError::Empty));
    }

    #[test]
    fn rejects_ragged() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert_eq!(
            Dataset::from_rows(&rows),
            Err(DatasetError::Ragged { row: 1, expected: 2, got: 1 })
        );
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(DatasetError::Empty.to_string().contains("zero rows"));
        let e = DatasetError::Ragged { row: 3, expected: 5, got: 2 };
        assert!(e.to_string().contains("row 3"), "{}", e);
    }

    #[test]
    fn push_column_extends_width() {
        let mut ds = Dataset::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        ds.push_column(&[7.0, 8.0]);
        assert_eq!(ds.n_cols(), 2);
        assert_eq!(ds.column(1), &[7.0, 8.0]);
        assert_eq!(ds.get(0, 1), 7.0);
    }

    #[test]
    fn gather_rows_duplicates_and_reorders() {
        let ds = Dataset::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        let g = ds.gather_rows(&[2, 0, 2]);
        assert_eq!(g.column(0), &[3.0, 1.0, 3.0]);
        assert_eq!(g.column(1), &[30.0, 10.0, 30.0]);
    }

    #[test]
    fn serde_round_trip() {
        let ds = Dataset::from_rows(&[vec![1.5, -2.0], vec![0.0, 4.25]]).unwrap();
        let back: Dataset = serde_json::from_str(&serde_json::to_string(&ds).unwrap()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn zeros_rejects_zero_rows() {
        let _ = Dataset::zeros(0, 3);
    }
}

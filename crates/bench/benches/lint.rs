//! Lint-engine throughput: the per-script cost of running all signature
//! rules over an already-parsed and flow-analyzed program (this is the
//! marginal cost the lint features add to `analyze_script`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jsdetect::Technique;
use jsdetect_bench::fixture_script;
use jsdetect_flow::analyze;
use jsdetect_lint::LintRunner;
use jsdetect_parser::parse;

fn bench_lint(c: &mut Criterion) {
    let regular = fixture_script();
    let obfuscated = jsdetect_transform::apply(
        &regular,
        &[Technique::ControlFlowFlattening, Technique::GlobalArray, Technique::DeadCodeInjection],
        42,
    )
    .unwrap();
    let runner = LintRunner::default();

    let mut group = c.benchmark_group("lint");
    for (name, src) in [("regular", &regular), ("obfuscated", &obfuscated)] {
        let prog = parse(src).unwrap();
        let graph = analyze(&prog);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_function(&format!("run_{}", name), |b| {
            b.iter(|| {
                runner.run(
                    std::hint::black_box(src),
                    std::hint::black_box(&prog),
                    std::hint::black_box(&graph),
                )
            })
        });
        group.bench_function(&format!("run_with_summary_{}", name), |b| {
            b.iter(|| {
                runner.run_with_summary(
                    std::hint::black_box(src),
                    std::hint::black_box(&prog),
                    std::hint::black_box(&graph),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lint
}
criterion_main!(benches);

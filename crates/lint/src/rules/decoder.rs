//! `string-decoder-call`: the accessor shim in front of a string pool.

use crate::rules::global_array::MIN_POOL;
use crate::{Diagnostic, LintContext, Rule, Severity};

/// Flags a function whose body returns a computed index into a string
/// pool and that is actually called — the decoder shim every pooled
/// literal is routed through (`var f = function (i) { return ARR[...] }`).
pub struct StringDecoderCall;

impl Rule for StringDecoderCall {
    fn name(&self) -> &'static str {
        "string-decoder-call"
    }

    fn severity(&self) -> Severity {
        Severity::Signature
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for d in &ctx.facts.decoders {
            let pooled =
                ctx.facts.string_arrays.iter().any(|a| a.name == d.array && a.len >= MIN_POOL);
            if !pooled {
                continue;
            }
            let Some(name) = &d.name else { continue };
            let calls = ctx.facts.call_counts.get(name).copied().unwrap_or(0);
            if calls == 0 {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                span: d.span,
                severity: self.severity(),
                message: format!(
                    "'{}' decodes values out of string array '{}' and is called {} time(s)",
                    name, d.array, calls
                ),
                data: vec![
                    ("decoder", name.to_string()),
                    ("array", d.array.to_string()),
                    ("calls", calls.to_string()),
                ],
            });
        }
    }
}

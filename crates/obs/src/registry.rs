//! The streaming telemetry registry: per-thread atomic cells readable
//! live, with no flush step between recording and snapshotting.
//!
//! PR 3's collector buffered records per thread and merged them into a
//! global registry on an explicit `flush()` — which made mid-run state
//! invisible and turned a missing flush in scoped-thread workers into a
//! silent data-loss footgun. This rewrite removes the buffer entirely:
//!
//! - Every recording thread owns a [`ThreadCells`] block of plain atomics
//!   (counter cells, log2-bucket histogram cells for values and span
//!   latencies) plus a bounded seqlock [`Ring`] of raw span/counter
//!   events. Records are a handful of relaxed atomic ops; there is no
//!   global lock on the hot path.
//! - Metric names are interned once per process into three id spaces
//!   (counters, value histograms, span paths); each thread caches the
//!   `&'static str → id` mapping locally, so steady-state recording never
//!   touches the interner mutex.
//! - [`snapshot`] merges every thread's cells with relaxed loads while
//!   workers keep recording — a live, consistent-enough view: counters are
//!   monotone across snapshots, histograms may trail in-flight records by
//!   at most one observation per writer.
//! - Cells are never removed from the registry (totals stay monotone);
//!   exiting threads return their cells to a free pool for reuse, so
//!   memory is bounded by peak concurrency, not by thread churn.
//!
//! `flush()` survives as a no-op for source compatibility; the
//! `ScopedCollector` guard in the crate root keeps the call-site contract
//! explicit without any correctness burden.

use crate::histogram::Histogram;
use crate::ring::{EventKind, Ring};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};

/// Id-space capacities. Overflowing one drops the *new* metric (never
/// recorded data for existing names) and bumps the `obs/name_overflow`
/// counter — bounded memory beats unbounded cardinality for an always-on
/// collector.
const COUNTER_SLOTS: usize = 512;
const HIST_SLOTS: usize = 128;
const SPAN_SLOTS: usize = 1024;

/// Sentinel ids. `ROOT_PARENT` marks "no enclosing span"; `NO_ID` marks a
/// name that failed to intern (its records are dropped).
const ROOT_PARENT: u32 = u32::MAX;
const NO_ID: u32 = u32::MAX - 1;

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Slash-joined nesting path, e.g. `analyze/parse`.
    pub path: String,
    /// Start offset from the process telemetry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Telemetry-assigned recording-thread id (dense, starts at 0).
    pub thread: u64,
}

/// One counter increment captured by the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEvent {
    /// Counter name.
    pub name: String,
    /// Timestamp offset from the process telemetry epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Amount added.
    pub delta: u64,
    /// Telemetry-assigned recording-thread id.
    pub thread: u64,
}

/// Aggregate statistics for one span path.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Slash-joined nesting path.
    pub path: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total duration in nanoseconds.
    pub total_ns: u64,
    /// Shortest occurrence in nanoseconds.
    pub min_ns: u64,
    /// Longest occurrence in nanoseconds.
    pub max_ns: u64,
    /// Log-scaled latency distribution (nanoseconds).
    pub latency: Histogram,
}

/// A point-in-time copy of everything the registry has collected. Taken
/// live: workers never pause, and repeated snapshots see monotonically
/// non-decreasing counters and span counts.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-path span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Raw span events: ring-retained events in timestamp order, then
    /// externally injected events (see [`record_span_ns`]) in insertion
    /// order. Bounded per thread; see `dropped_events`.
    pub events: Vec<SpanEvent>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last write wins), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Value histograms, sorted by name.
    pub hists: Vec<(String, Histogram)>,
    /// Counter increments retained by the trace rings, in timestamp order.
    pub counter_events: Vec<CounterEvent>,
    /// Raw trace events overwritten after a thread's ring filled
    /// (aggregate stats are unaffected). Also surfaced as the
    /// `obs/trace_dropped` counter when nonzero.
    pub dropped_events: u64,
}

impl Snapshot {
    /// The aggregate for one span path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// A value histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Poison-tolerant lock: a panic on another recording thread must not take
/// telemetry down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

/// Names that failed to intern because an id space filled up (surfaced as
/// the `obs/name_overflow` counter).
static NAME_OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Forward (name → id) and reverse (id → name) tables of one id space.
type NameTables = (HashMap<String, u32>, Vec<String>);

struct Interner {
    cap: usize,
    inner: LazyLock<Mutex<NameTables>>,
}

impl Interner {
    const fn new(cap: usize) -> Self {
        Interner { cap, inner: LazyLock::new(|| Mutex::new((HashMap::new(), Vec::new()))) }
    }

    /// Id for `name`, interning it on first sight. `None` once the id
    /// space is full (the attempt is counted in `NAME_OVERFLOW`).
    fn intern(&self, name: &str) -> Option<u32> {
        let mut g = lock(&self.inner);
        let (map, names) = &mut *g;
        if let Some(&id) = map.get(name) {
            return Some(id);
        }
        if names.len() >= self.cap {
            NAME_OVERFLOW.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = names.len() as u32;
        names.push(name.to_string());
        map.insert(name.to_string(), id);
        Some(id)
    }

    fn names(&self) -> Vec<String> {
        lock(&self.inner).1.clone()
    }
}

static COUNTER_NAMES: Interner = Interner::new(COUNTER_SLOTS);
static HIST_NAMES: Interner = Interner::new(HIST_SLOTS);
static SPAN_PATHS: Interner = Interner::new(SPAN_SLOTS);

// ---------------------------------------------------------------------------
// Per-thread cells
// ---------------------------------------------------------------------------

/// A histogram whose every field is an atomic, so any thread can read it
/// while the owner records. `count` is bumped last with `Release` and read
/// first with `Acquire`: a reader's bucket sum is always ≥ its `count`,
/// never behind it (the torn-read invariant the concurrent test pins).
struct AtomicHist {
    buckets: [AtomicU64; crate::histogram::N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        AtomicHist {
            buckets: [const { AtomicU64::new(0) }; crate::histogram::N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[crate::histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Merges this cell into `h`. Returns `false` (and merges nothing)
    /// when the cell is empty.
    fn merge_into(&self, h: &mut Histogram) -> bool {
        let count = self.count.load(Ordering::Acquire);
        if count == 0 {
            return false;
        }
        let mut counts = [0u64; crate::histogram::N_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.merge(&Histogram::from_raw(
            counts,
            count,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        ));
        true
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Release);
    }
}

/// One thread's always-readable recording state: counter cells, lazily
/// allocated histogram cells, and the bounded trace ring. Registered in
/// the global cell list forever (snapshots stay monotone); reused via the
/// free pool when the owning thread exits.
struct ThreadCells {
    counters: Box<[AtomicU64]>,
    hists: Box<[std::sync::OnceLock<Box<AtomicHist>>]>,
    spans: Box<[std::sync::OnceLock<Box<AtomicHist>>]>,
    ring: Ring,
}

impl ThreadCells {
    fn new() -> Self {
        ThreadCells {
            counters: (0..COUNTER_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..HIST_SLOTS).map(|_| std::sync::OnceLock::new()).collect(),
            spans: (0..SPAN_SLOTS).map(|_| std::sync::OnceLock::new()).collect(),
            ring: Ring::new(),
        }
    }

    fn hist_cell(&self, id: u32) -> &AtomicHist {
        self.hists[id as usize].get_or_init(|| Box::new(AtomicHist::new()))
    }

    fn span_cell(&self, id: u32) -> &AtomicHist {
        self.spans[id as usize].get_or_init(|| Box::new(AtomicHist::new()))
    }

    fn reset(&self) {
        for c in self.counters.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for h in self.hists.iter().chain(self.spans.iter()) {
            if let Some(cell) = h.get() {
                cell.reset();
            }
        }
        self.ring.reset();
    }
}

/// Every cell block ever created (including the external/injection block),
/// in creation order. Blocks are never removed.
static REGISTRY: LazyLock<Mutex<Vec<Arc<ThreadCells>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Cell blocks whose owning thread has exited, available for reuse.
static FREE: LazyLock<Mutex<Vec<Arc<ThreadCells>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Shared cells for [`record_span_ns`] (multi-producer: plain atomics make
/// that safe; its ring is never written).
static EXTERNAL: LazyLock<Arc<ThreadCells>> = LazyLock::new(|| {
    let cells = Arc::new(ThreadCells::new());
    lock(&REGISTRY).push(cells.clone());
    cells
});

/// Span events injected by [`record_span_ns`], kept in insertion order (the
/// exporter golden files depend on it).
static INJECTED: LazyLock<Mutex<Vec<SpanEvent>>> = LazyLock::new(|| Mutex::new(Vec::new()));

static GAUGES: LazyLock<Mutex<BTreeMap<String, f64>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Thread-local recording state
// ---------------------------------------------------------------------------

struct Tls {
    cells: Arc<ThreadCells>,
    thread: u64,
    /// Open spans, innermost last: `(name, interned path id)`.
    stack: Vec<(&'static str, u32)>,
    /// `(parent path id, name ptr, name len) → path id`. Keyed on the
    /// `&'static str` pointer so steady-state span entry is one hash probe
    /// with no string hashing.
    path_cache: HashMap<(u32, usize, usize), u32>,
    counter_ids: HashMap<(usize, usize), u32>,
    hist_ids: HashMap<(usize, usize), u32>,
}

impl Tls {
    fn new() -> Self {
        let cells = lock(&FREE).pop().unwrap_or_else(|| {
            let cells = Arc::new(ThreadCells::new());
            lock(&REGISTRY).push(cells.clone());
            cells
        });
        Tls {
            cells,
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            path_cache: HashMap::new(),
            counter_ids: HashMap::new(),
            hist_ids: HashMap::new(),
        }
    }

    fn path_id_for(&mut self, name: &'static str) -> u32 {
        let parent = self.stack.last().map_or(ROOT_PARENT, |&(_, id)| id);
        if parent == NO_ID {
            return NO_ID;
        }
        let key = (parent, name.as_ptr() as usize, name.len());
        if let Some(&id) = self.path_cache.get(&key) {
            return id;
        }
        let mut path = String::with_capacity(32);
        for (seg, _) in &self.stack {
            path.push_str(seg);
            path.push('/');
        }
        path.push_str(name);
        let id = SPAN_PATHS.intern(&path).unwrap_or(NO_ID);
        self.path_cache.insert(key, id);
        id
    }

    fn counter_id(&mut self, name: &'static str) -> u32 {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(&id) = self.counter_ids.get(&key) {
            return id;
        }
        let id = COUNTER_NAMES.intern(name).unwrap_or(NO_ID);
        self.counter_ids.insert(key, id);
        id
    }

    fn hist_id(&mut self, name: &'static str) -> u32 {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(&id) = self.hist_ids.get(&key) {
            return id;
        }
        let id = HIST_NAMES.intern(name).unwrap_or(NO_ID);
        self.hist_ids.insert(key, id);
        id
    }
}

impl Drop for Tls {
    fn drop(&mut self) {
        lock(&FREE).push(self.cells.clone());
    }
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls::new());
}

/// Runs `f` with the calling thread's recording state. Returns `None` if
/// the thread-local has already been torn down (thread exit).
fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> Option<R> {
    TLS.try_with(|t| f(&mut t.borrow_mut())).ok()
}

// ---------------------------------------------------------------------------
// Recording entry points (crate-internal; the public API lives in lib.rs)
// ---------------------------------------------------------------------------

/// Pushes `name` onto the span stack and resolves its full-path id.
/// Returns `(path id, stack depth at entry)`.
pub(crate) fn open_span(name: &'static str) -> Option<(u32, usize)> {
    with_tls(|t| {
        let depth = t.stack.len();
        let id = t.path_id_for(name);
        t.stack.push((name, id));
        (id, depth)
    })
}

/// Records a completed span: latency into the path's histogram cell, raw
/// event into the trace ring.
pub(crate) fn close_span(path_id: u32, depth: usize, start_ns: u64, dur_ns: u64) {
    with_tls(|t| {
        t.stack.truncate(depth);
        if path_id != NO_ID {
            t.cells.span_cell(path_id).record(dur_ns);
            t.cells.ring.push(EventKind::Span, path_id, t.thread as u32, start_ns, dur_ns);
        }
    });
}

pub(crate) fn add_counter(name: &'static str, n: u64, ts_ns: u64) {
    with_tls(|t| {
        let id = t.counter_id(name);
        if id != NO_ID {
            t.cells.counters[id as usize].fetch_add(n, Ordering::Relaxed);
            t.cells.ring.push(EventKind::Counter, id, t.thread as u32, ts_ns, n);
        }
    });
}

pub(crate) fn observe_hist(name: &'static str, v: u64) {
    with_tls(|t| {
        let id = t.hist_id(name);
        if id != NO_ID {
            t.cells.hist_cell(id).record(v);
        }
    });
}

/// Sets a gauge (last write wins). Gauges are rare, so they go straight to
/// a global map instead of per-thread cells.
pub(crate) fn gauge_store(name: &'static str, v: f64) {
    lock(&GAUGES).insert(name.to_string(), v);
}

/// Eagerly initializes the calling thread's recording state (cells
/// allocated or reused from the free pool, registered for snapshots), so
/// the first record in a hot loop doesn't pay for setup.
pub(crate) fn touch() {
    with_tls(|_| ());
}

/// Records one span occurrence directly into shared cells, bypassing the
/// calling thread's clock and span stack. This is the deterministic back
/// door for exporter tests and for external tools that import timings
/// measured elsewhere. Safe from any thread; injected events are appended
/// after ring events in snapshot order.
pub fn record_span_ns(path: &str, start_ns: u64, dur_ns: u64, thread: u64) {
    if let Some(id) = SPAN_PATHS.intern(path) {
        EXTERNAL.span_cell(id).record(dur_ns);
    }
    lock(&INJECTED).push(SpanEvent { path: path.to_string(), start_ns, dur_ns, thread });
}

/// No-op, kept for source compatibility with the PR 3 buffered collector
/// (and for the `ScopedCollector` drop guard). Records now land in
/// shared-readable cells immediately, so there is nothing to flush.
pub fn flush() {}

/// Clears all collected telemetry: every thread's cells and ring, injected
/// events, and gauges. Interned names (and cached ids on live threads)
/// survive, so recording continues seamlessly. The enabled flag is
/// untouched. Not linearizable against concurrent writers — call between
/// runs, not mid-run.
pub fn reset() {
    let cells: Vec<Arc<ThreadCells>> = lock(&REGISTRY).clone();
    for c in &cells {
        c.reset();
    }
    lock(&INJECTED).clear();
    lock(&GAUGES).clear();
    NAME_OVERFLOW.store(0, Ordering::Relaxed);
}

/// Copies out everything collected so far — **live**: recording threads
/// are never paused or locked. Counters and span counts are monotone
/// across snapshots; a histogram may trail each in-flight writer by at
/// most one record.
pub fn snapshot() -> Snapshot {
    let counter_names = COUNTER_NAMES.names();
    let hist_names = HIST_NAMES.names();
    let span_paths = SPAN_PATHS.names();
    let cells: Vec<Arc<ThreadCells>> = lock(&REGISTRY).clone();

    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (id, name) in counter_names.iter().enumerate() {
        let total: u64 = cells.iter().map(|c| c.counters[id].load(Ordering::Relaxed)).sum();
        if total > 0 {
            counters.insert(name.clone(), total);
        }
    }

    let dropped_events: u64 = cells.iter().map(|c| c.ring.dropped()).sum();
    if dropped_events > 0 {
        *counters.entry(crate::names::TRACE_DROPPED.to_string()).or_insert(0) += dropped_events;
    }
    let overflow = NAME_OVERFLOW.load(Ordering::Relaxed);
    if overflow > 0 {
        *counters.entry(crate::names::NAME_OVERFLOW.to_string()).or_insert(0) += overflow;
    }

    let mut spans = Vec::new();
    for (id, path) in span_paths.iter().enumerate() {
        let mut h = Histogram::new();
        let mut any = false;
        for c in &cells {
            if let Some(cell) = c.spans[id].get() {
                any |= cell.merge_into(&mut h);
            }
        }
        if !any {
            continue;
        }
        spans.push(SpanStat {
            path: path.clone(),
            count: h.count(),
            total_ns: h.sum(),
            min_ns: h.min(),
            max_ns: h.max(),
            latency: h,
        });
    }
    spans.sort_by(|a, b| a.path.cmp(&b.path));

    let mut hists = Vec::new();
    for (id, name) in hist_names.iter().enumerate() {
        let mut h = Histogram::new();
        let mut any = false;
        for c in &cells {
            if let Some(cell) = c.hists[id].get() {
                any |= cell.merge_into(&mut h);
            }
        }
        if any {
            hists.push((name.clone(), h));
        }
    }
    hists.sort_by(|a, b| a.0.cmp(&b.0));

    let mut events = Vec::new();
    let mut counter_events = Vec::new();
    for c in &cells {
        c.ring.read(|ev| match ev.kind {
            EventKind::Span => {
                if let Some(path) = span_paths.get(ev.id as usize) {
                    events.push(SpanEvent {
                        path: path.clone(),
                        start_ns: ev.a,
                        dur_ns: ev.b,
                        thread: u64::from(ev.thread),
                    });
                }
            }
            EventKind::Counter => {
                if let Some(name) = counter_names.get(ev.id as usize) {
                    counter_events.push(CounterEvent {
                        name: name.clone(),
                        ts_ns: ev.a,
                        delta: ev.b,
                        thread: u64::from(ev.thread),
                    });
                }
            }
        });
    }
    events.sort_by(|a, b| {
        (a.start_ns, a.dur_ns, a.thread, &a.path).cmp(&(b.start_ns, b.dur_ns, b.thread, &b.path))
    });
    counter_events.sort_by(|a, b| {
        (a.ts_ns, a.thread, &a.name, a.delta).cmp(&(b.ts_ns, b.thread, &b.name, b.delta))
    });
    events.extend(lock(&INJECTED).iter().cloned());

    Snapshot {
        spans,
        events,
        counters: counters.into_iter().collect(),
        gauges: lock(&GAUGES).iter().map(|(k, v)| (k.clone(), *v)).collect(),
        hists,
        counter_events,
        dropped_events,
    }
}

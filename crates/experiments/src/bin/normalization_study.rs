//! Detection-under-normalization study.
//!
//! The deobfuscation suite is meant to *undo* the transforms the Level-2
//! detector is trained to recognize — so running the held-out
//! per-technique pool through it and re-classifying measures how much of
//! each technique's detectable signature the passes actually remove.
//! For every technique we report precision / recall / F1 at threshold
//! 0.5 on the original sources and on their normalized re-printings,
//! plus the deltas. Techniques the suite reverses well (global string
//! arrays, statement-merging minification) should lose recall;
//! techniques it does not touch (identifier renaming, flattening
//! dispatchers) should hold steady — a built-in control.
//!
//! Results land in `results/normalization_study.json`, and a compact
//! `normalize` provenance block is merged into `BENCH_ml.json` (top
//! level, next to the perf trajectory) so the study's headline numbers
//! travel with the benchmark history.

use jsdetect::Technique;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args, IoError};
use jsdetect_guard::Limits;
use jsdetect_normalize::{normalize_program, NormalizeOptions};
use serde::Serialize;
use serde_json::JsonValue;

#[derive(Serialize, Clone, Copy)]
struct Prf {
    precision: f64,
    recall: f64,
    f1: f64,
}

#[derive(Serialize)]
struct TechniqueRow {
    technique: String,
    n: usize,
    original: Prf,
    normalized: Prf,
    delta_f1: f64,
    delta_recall: f64,
}

#[derive(Serialize)]
struct StudyResult {
    n_scripts: usize,
    n_reprinted: usize,
    rewrites_total: u64,
    per_technique: Vec<TechniqueRow>,
    mean_abs_delta_f1: f64,
    seed: u64,
    scale: f64,
    feature_space_version: u32,
}

/// Precision/recall/F1 of one technique column at threshold 0.5.
fn prf(probs: &[Vec<f32>], truth: &[Vec<bool>], idx: usize) -> Prf {
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (p, t) in probs.iter().zip(truth) {
        let pred = p[idx] >= 0.5;
        match (pred, t[idx]) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Prf { precision, recall, f1 }
}

fn main() {
    let args = Args::parse();
    let (detectors, pools) = or_exit(train_cached(&args));

    // Normalize every held-out level-2 sample: parse, drive the pass
    // suite to its fixpoint, and re-print. Unparseable samples (none are
    // expected — they came from our own transforms) keep their original
    // text, so the two prediction passes always align row for row.
    // Deadline disabled for reproducibility; fuel and round caps bound
    // the work.
    let opts = NormalizeOptions { limits: Limits::unbounded(), ..NormalizeOptions::default() };
    let mut normalized: Vec<String> = Vec::with_capacity(pools.test_level2.len());
    let mut n_reprinted = 0usize;
    let mut rewrites_total = 0u64;
    for sample in &pools.test_level2 {
        match jsdetect_parser::parse(&sample.src) {
            Ok(mut program) => {
                let report = normalize_program(&mut program, &opts);
                rewrites_total += report.total_rewrites();
                n_reprinted += 1;
                normalized.push(jsdetect_codegen::to_source(&program));
            }
            Err(_) => normalized.push(sample.src.clone()),
        }
    }

    let orig_refs: Vec<&str> = pools.test_level2.iter().map(|s| s.src.as_str()).collect();
    let norm_refs: Vec<&str> = normalized.iter().map(String::as_str).collect();
    let orig_probs = detectors.level2.predict_proba_many(&orig_refs);
    let norm_probs = detectors.level2.predict_proba_many(&norm_refs);

    // Keep only rows where both variants produced a prediction.
    let mut kept_orig: Vec<Vec<f32>> = Vec::new();
    let mut kept_norm: Vec<Vec<f32>> = Vec::new();
    let mut kept_truth: Vec<Vec<bool>> = Vec::new();
    for ((o, n), s) in orig_probs.into_iter().zip(norm_probs).zip(&pools.test_level2) {
        if let (Some(o), Some(n)) = (o, n) {
            kept_orig.push(o);
            kept_norm.push(n);
            kept_truth.push(s.label_vector());
        }
    }

    let mut rows = Vec::new();
    let mut abs_delta_sum = 0.0;
    for t in Technique::ALL {
        let n = kept_truth.iter().filter(|v| v[t.index()]).count();
        let original = prf(&kept_orig, &kept_truth, t.index());
        let normalized = prf(&kept_norm, &kept_truth, t.index());
        let delta_f1 = normalized.f1 - original.f1;
        abs_delta_sum += delta_f1.abs();
        rows.push(TechniqueRow {
            technique: t.as_str().to_string(),
            n,
            original,
            normalized,
            delta_f1,
            delta_recall: normalized.recall - original.recall,
        });
    }

    let result = StudyResult {
        n_scripts: kept_truth.len(),
        n_reprinted,
        rewrites_total,
        mean_abs_delta_f1: abs_delta_sum / Technique::ALL.len() as f64,
        per_technique: rows,
        seed: args.seed,
        scale: args.scale,
        feature_space_version: jsdetect_features::FEATURE_SPACE_VERSION,
    };

    println!(
        "Detection under normalization (level 2, threshold 0.5), n={} ({} rewrites)",
        result.n_scripts, result.rewrites_total
    );
    println!("{:-<78}", "");
    println!(
        "  {:26} {:>5}  {:>8} {:>8}  {:>8} {:>8}  {:>7}",
        "technique", "n", "P orig", "R orig", "P norm", "R norm", "dF1"
    );
    for r in &result.per_technique {
        println!(
            "  {:26} {:>5}  {:>8.2} {:>8.2}  {:>8.2} {:>8.2}  {:>+7.3}",
            r.technique,
            r.n,
            r.original.precision,
            r.original.recall,
            r.normalized.precision,
            r.normalized.recall,
            r.delta_f1
        );
    }
    println!("\n  mean |dF1| across techniques: {:.3}", result.mean_abs_delta_f1);

    or_exit(write_json(&args, "normalization_study", &result));
    or_exit(merge_bench_provenance(&result));
}

/// Merges a compact `normalize` block into the top level of
/// `BENCH_ml.json`, preserving everything else in the file (the perf
/// trajectory deserializer ignores unknown keys, so the block rides
/// along harmlessly).
fn merge_bench_provenance(result: &StudyResult) -> Result<(), IoError> {
    let path = std::path::Path::new("BENCH_ml.json");
    let mut root: JsonValue = match std::fs::read_to_string(path) {
        Ok(s) => serde_json::from_str(&s).map_err(|e| IoError {
            op: "parse",
            path: path.into(),
            msg: e.to_string(),
        })?,
        Err(_) => JsonValue::Obj(Vec::new()),
    };
    let block = BenchProvenance {
        n_scripts: result.n_scripts,
        rewrites_total: result.rewrites_total,
        mean_abs_delta_f1: result.mean_abs_delta_f1,
        seed: result.seed,
        scale: result.scale,
        feature_space_version: result.feature_space_version,
        source: "crates/experiments/src/bin/normalization_study.rs".to_string(),
    }
    .to_value();
    match &mut root {
        JsonValue::Obj(entries) => {
            entries.retain(|(k, _)| k != "normalize");
            entries.push(("normalize".to_string(), block));
        }
        _ => {
            return Err(IoError {
                op: "update",
                path: path.into(),
                msg: "BENCH_ml.json is not a JSON object".to_string(),
            })
        }
    }
    let json = serde_json::to_string_pretty(&root).map_err(|e| IoError {
        op: "serialize",
        path: path.into(),
        msg: e.to_string(),
    })?;
    std::fs::write(path, json).map_err(|e| IoError {
        op: "write",
        path: path.into(),
        msg: e.to_string(),
    })?;
    eprintln!("[experiments] merged normalize provenance into {}", path.display());
    Ok(())
}

#[derive(Serialize)]
struct BenchProvenance {
    n_scripts: usize,
    rewrites_total: u64,
    mean_abs_delta_f1: f64,
    seed: u64,
    scale: f64,
    feature_space_version: u32,
    source: String,
}

//! No-alphanumeric encoding (paper §II-A / JSFuck, ref. \[27\]).
//!
//! Rewrites an entire program using only the six characters `[`, `]`, `(`,
//! `)`, `!`, and `+`, following the classic JSFuck construction:
//!
//! - numbers from `+[]` (0) and sums of `!+[]` (1);
//! - characters indexed out of coerced primitive strings (`(![]+[])[0]`
//!   is `"f"` from `"false"`, …);
//! - the `Function` constructor reached through
//!   `[]["flat"]["constructor"]`;
//! - arbitrary characters through `unescape("%xx")`, with `%` obtained by
//!   `escape("[")`;
//! - the final program: `Function(<encoded source>)()`.
//!
//! Concatenations are grouped into balanced parenthesized chunks so the
//! resulting expression tree stays shallow (the detection pipeline has to
//! re-parse and walk the output).

use std::collections::HashMap;

/// The only characters allowed in the output.
pub const ALPHABET: [char; 6] = ['[', ']', '(', ')', '!', '+'];

/// Errors from the encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsfuckError {
    /// Input larger than the configured limit (output would explode).
    TooLarge {
        /// Input size in bytes.
        len: usize,
        /// Configured limit in bytes.
        limit: usize,
    },
}

impl std::fmt::Display for JsfuckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsfuckError::TooLarge { len, limit } => {
                write!(f, "input of {} bytes exceeds the {} byte jsfuck limit", len, limit)
            }
        }
    }
}

impl std::error::Error for JsfuckError {}

/// Default input size limit (bytes). JSFuck output is roughly 50–200×
/// larger than its input.
pub const DEFAULT_LIMIT: usize = 16 * 1024;

/// Payload budget the transformation pipeline shrinks programs to before
/// encoding (real-world JSFuck encodes small loaders, and the expansion
/// factor makes larger inputs exceed the paper's 2 MB file filter).
pub const PAYLOAD_BUDGET: usize = 320;

/// Encoder with a memoized character map.
pub struct JsfuckEncoder {
    char_cache: HashMap<char, String>,
    limit: usize,
}

impl Default for JsfuckEncoder {
    fn default() -> Self {
        Self::new(DEFAULT_LIMIT)
    }
}

impl JsfuckEncoder {
    /// Creates an encoder with the given input size limit.
    pub fn new(limit: usize) -> Self {
        JsfuckEncoder { char_cache: HashMap::new(), limit }
    }

    /// Encodes a whole program: the result evaluates the source via the
    /// `Function` constructor.
    pub fn encode_program(&mut self, src: &str) -> Result<String, JsfuckError> {
        if src.len() > self.limit {
            return Err(JsfuckError::TooLarge { len: src.len(), limit: self.limit });
        }
        let body = self.encode_string(src);
        // []["flat"]["constructor"](SRC)()
        Ok(format!("{}({})()", self.function_ctor(), body))
    }

    /// Encodes a string value as a concatenation expression.
    pub fn encode_string(&mut self, s: &str) -> String {
        let parts: Vec<String> = s.chars().map(|c| self.encode_char(c)).collect();
        if parts.is_empty() {
            return "([]+[])".to_string();
        }
        balanced_concat(&parts)
    }

    fn function_ctor(&mut self) -> String {
        // []["flat"]["constructor"]
        let flat = self.encode_string("flat");
        let ctor = self.encode_string("constructor");
        format!("[][{}][{}]", flat, ctor)
    }

    /// Encodes one character.
    pub fn encode_char(&mut self, c: char) -> String {
        if let Some(e) = self.char_cache.get(&c) {
            return e.clone();
        }
        let expr = self.build_char(c);
        self.char_cache.insert(c, expr.clone());
        expr
    }

    fn build_char(&mut self, c: char) -> String {
        // Digits: (N + []) coerces the number to its string.
        if let Some(d) = c.to_digit(10) {
            return format!("({}+[])", num(d as usize));
        }
        // Characters available by indexing coerced primitive strings.
        if let Some(expr) = base_string_char(c) {
            return expr;
        }
        // Remaining lowercase letters via Number.prototype.toString(36):
        // `(25)["toString"](36)` is "p". This route must cover every
        // letter of "return unescape", or the fallback below would recurse
        // forever.
        if c.is_ascii_lowercase() {
            let v = c.to_digit(36).unwrap() as usize;
            return format!("({})[{}]({})", num(v), to_string_expr(), num(36));
        }
        // Everything else through unescape("%XX") / unescape("%uXXXX").
        let code = c as u32;
        let hex = if code < 256 { format!("{:02x}", code) } else { format!("u{:04x}", code) };
        let mut payload = self.percent_expr();
        for h in hex.chars() {
            payload = format!("{}+{}", payload, self.encode_char(h));
        }
        format!("{}({})", self.unescape_fn(), payload)
    }

    /// `escape("[")[0]` is `%`.
    fn percent_expr(&mut self) -> String {
        let lbracket = base_string_char('[').expect("[ is in the iterator string");
        format!("{}({})[{}]", self.escape_fn(), lbracket, num(0))
    }

    /// `Function("return escape")()`
    fn escape_fn(&mut self) -> String {
        let body = self.encode_string("return escape");
        format!("{}({})()", self.function_ctor(), body)
    }

    /// `Function("return unescape")()`
    fn unescape_fn(&mut self) -> String {
        let body = self.encode_string("return unescape");
        format!("{}({})()", self.function_ctor(), body)
    }
}

/// The number `n` as a JSFuck expression (not parenthesized).
fn num(n: usize) -> String {
    match n {
        0 => "+[]".to_string(),
        _ => vec!["!+[]"; n].join("+"),
    }
}

/// Index expression usable inside `[...]` for any index.
fn index(n: usize) -> String {
    if n <= 9 {
        num(n)
    } else {
        // Multi-digit string index: first digit as number, rest as ["d"].
        let digits: Vec<usize> =
            n.to_string().chars().map(|c| c.to_digit(10).unwrap() as usize).collect();
        let mut out = num(digits[0]);
        for &d in &digits[1..] {
            out = format!("{}+[{}]", out, num(d));
        }
        out
    }
}

/// Base coerced-string sources for direct character lookup.
///
/// - `(![]+[])` → `"false"`
/// - `(!![]+[])` → `"true"`
/// - `([][[]]+[])` → `"undefined"`
/// - `(+[![]]+[])` → `"NaN"`
/// - `(+(...)+[])` → `"Infinity"` (from the number `1e1000`)
/// - `([]["flat"]+[])` → `"function flat() { [native code] }"`
/// - `([]["entries"]()+[])` → `"[object Array Iterator]"`
fn base_string_char(c: char) -> Option<String> {
    const FALSE: &str = "(![]+[])";
    const TRUE: &str = "(!![]+[])";
    const UNDEF: &str = "([][[]]+[])";
    const NAN: &str = "(+[![]]+[])";
    let (base, idx): (String, usize) = match c {
        'f' => (FALSE.into(), 0),
        'a' => (FALSE.into(), 1),
        'l' => (FALSE.into(), 2),
        's' => (FALSE.into(), 3),
        'e' => (FALSE.into(), 4),
        't' => (TRUE.into(), 0),
        'r' => (TRUE.into(), 1),
        'u' => (TRUE.into(), 2),
        'n' => (UNDEF.into(), 1),
        'd' => (UNDEF.into(), 2),
        'i' => (UNDEF.into(), 5),
        'N' => (NAN.into(), 0),
        'I' => (infinity_str(), 0),
        'y' => (infinity_str(), 7),
        'c' => (flat_str(), 3),
        'o' => (entries_str(), 1),
        'b' => (entries_str(), 2),
        'j' => (entries_str(), 3),
        'A' => (entries_str(), 8),
        ' ' => (entries_str(), 7),
        '[' => (entries_str(), 0),
        ']' => (entries_str(), 22),
        'v' => (flat_str(), 23),
        '(' => (flat_str(), 13),
        ')' => (flat_str(), 14),
        '{' => (flat_str(), 16),
        '}' => (flat_str(), 32),
        _ => return None,
    };
    Some(format!("{}[{}]", base, index(idx)))
}

/// `"Infinity"`: `(+(1 + "e" + "1" + "0" + "0" + "0") + [])`.
fn infinity_str() -> String {
    // +( !+[] + (![]+[])[4] + [1] + [0] + [0] + [0] ) + []
    let e = format!("(![]+[])[{}]", num(4));
    format!("(+({}+{}+[{}]+[{}]+[{}]+[{}])+[])", num(1), e, num(1), num(0), num(0), num(0))
}

/// `([]["flat"]+[])` → `"function flat() { [native code] }"`.
/// The spelling of "flat" needs only f/l/a/t from `"false"`/`"true"`.
fn flat_str() -> String {
    let f = "(![]+[])[+[]]";
    let l = format!("(![]+[])[{}]", num(2));
    let a = format!("(![]+[])[{}]", num(1));
    let t = "(!![]+[])[+[]]";
    format!("([][{}+{}+{}+{}]+[])", f, l, a, t)
}

/// `"constructor"` spelled from base-string characters only.
fn ctor_string() -> String {
    "constructor"
        .chars()
        .map(|c| base_string_char(c).expect("constructor letters are base chars"))
        .collect::<Vec<_>>()
        .join("+")
}

/// `(([]+[])["constructor"]+[])` → `"function String() { [native code] }"`.
fn string_ctor_coerced() -> String {
    format!("(([]+[])[{}]+[])", ctor_string())
}

/// `"toString"` spelled from base chars plus `S`/`g` from the coerced
/// `String` constructor.
fn to_string_expr() -> String {
    let t = base_string_char('t').unwrap();
    let o = base_string_char('o').unwrap();
    let s_up = format!("{}[{}]", string_ctor_coerced(), index(9));
    let r = base_string_char('r').unwrap();
    let i = base_string_char('i').unwrap();
    let n = base_string_char('n').unwrap();
    let g = format!("{}[{}]", string_ctor_coerced(), index(14));
    format!("{}+{}+{}+{}+{}+{}+{}+{}", t, o, s_up, t, r, i, n, g)
}

/// `([]["entries"]()+[])` → `"[object Array Iterator]"`.
fn entries_str() -> String {
    let e = format!("(![]+[])[{}]", num(4));
    let n = format!("([][[]]+[])[{}]", num(1));
    let t = "(!![]+[])[+[]]";
    let r = format!("(!![]+[])[{}]", num(1));
    let i = format!("([][[]]+[])[{}]", num(5));
    let s = format!("(![]+[])[{}]", num(3));
    format!("([][{}+{}+{}+{}+{}+{}]()+[])", e, n, t, r, i, s)
}

/// Concatenates parts into a balanced tree of parenthesized groups so the
/// parsed expression stays shallow.
fn balanced_concat(parts: &[String]) -> String {
    const GROUP: usize = 8;
    if parts.len() == 1 {
        return parts[0].clone();
    }
    if parts.len() <= GROUP {
        return format!("({})", parts.join("+"));
    }
    let grouped: Vec<String> =
        parts.chunks(GROUP).map(|chunk| format!("({})", chunk.join("+"))).collect();
    balanced_concat(&grouped)
}

/// Convenience: encodes `src` with the default limit.
pub fn jsfuck(src: &str) -> Result<String, JsfuckError> {
    JsfuckEncoder::default().encode_program(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    fn only_alphabet(s: &str) -> bool {
        s.chars().all(|c| ALPHABET.contains(&c))
    }

    #[test]
    fn numbers() {
        assert_eq!(num(0), "+[]");
        assert_eq!(num(1), "!+[]");
        assert_eq!(num(3), "!+[]+!+[]+!+[]");
    }

    #[test]
    fn multi_digit_index() {
        let idx = index(23);
        assert!(only_alphabet(&idx), "{}", idx);
        // "2" + ["3"] shape: starts with the number 2.
        assert!(idx.starts_with("!+[]+!+[]+["), "{}", idx);
    }

    #[test]
    fn base_chars_use_only_alphabet() {
        for c in "falsetruendiNIycobjAv(){}[] ".chars() {
            if let Some(e) = base_string_char(c) {
                assert!(only_alphabet(&e), "char {:?}: {}", c, e);
            }
        }
    }

    #[test]
    fn encoded_chars_parse_as_js() {
        let mut enc = JsfuckEncoder::default();
        for c in ['a', 'z', 'Q', '9', '_', ';', '\'', '"', '\n', '€'] {
            let e = enc.encode_char(c);
            assert!(only_alphabet(&e), "char {:?} broke the alphabet: {}", c, e);
            let as_stmt = format!("x = {};", e);
            assert!(parse(&as_stmt).is_ok(), "char {:?} does not parse: {}", c, e);
        }
    }

    #[test]
    fn program_output_is_pure_and_parses() {
        let out = jsfuck("alert(1)").unwrap();
        assert!(only_alphabet(&out), "bad chars in output");
        assert!(parse(&out).is_ok(), "output does not reparse");
    }

    #[test]
    fn no_alphanumeric_characters_at_all() {
        let out = jsfuck("var x = 'hi'; console.log(x);").unwrap();
        assert!(!out.chars().any(|c| c.is_alphanumeric()), "alphanumeric leaked");
        assert!(!out.contains(' '), "whitespace leaked");
    }

    #[test]
    fn output_much_larger_than_input() {
        let src = "f(1)";
        let out = jsfuck(src).unwrap();
        assert!(out.len() > src.len() * 20);
    }

    #[test]
    fn too_large_input_rejected() {
        let mut enc = JsfuckEncoder::new(8);
        let err = enc.encode_program("a-very-long-program").unwrap_err();
        assert!(matches!(err, JsfuckError::TooLarge { .. }));
    }

    #[test]
    fn reparse_depth_is_bounded() {
        // A longer program must still parse (balanced grouping keeps the
        // tree shallow) and walk without deep recursion.
        let src = "function greet(name) { return 'hello ' + name; } greet('world');";
        let out = jsfuck(src).unwrap();
        let prog = parse(&out).expect("jsfuck output must reparse");
        let shape = jsdetect_ast::metrics::tree_shape(&prog);
        assert!(shape.max_depth < 120, "depth {}", shape.max_depth);
    }

    #[test]
    fn caching_is_consistent() {
        let mut enc = JsfuckEncoder::default();
        let a = enc.encode_char('q');
        let b = enc.encode_char('q');
        assert_eq!(a, b);
    }
}

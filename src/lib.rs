//! Workspace-level facade re-exporting the public API of the `jsdetect`
//! reproduction suite. Integration tests and examples live in this package.
pub use jsdetect as detector;
pub use jsdetect_ast as ast;
pub use jsdetect_cache as cache;
pub use jsdetect_codegen as codegen;
pub use jsdetect_corpus as corpus;
pub use jsdetect_features as features;
pub use jsdetect_flow as flow;
pub use jsdetect_guard as guard;
pub use jsdetect_lexer as lexer;
pub use jsdetect_lint as lint;
pub use jsdetect_ml as ml;
pub use jsdetect_normalize as normalize;
pub use jsdetect_obs as obs;
pub use jsdetect_parser as parser;
pub use jsdetect_serve as serve;
pub use jsdetect_transform as transform;

//! Differential pinning of the zero-copy front end (PR 7).
//!
//! Two oracles prove the byte-level, atom-interning lexer changed nothing
//! observable:
//!
//! 1. **Token streams** — `jsdetect_lexer::reference` preserves the old
//!    `String`-allocating scanner verbatim. Both lexers run over the
//!    generated regular corpus, one variant per transformation technique,
//!    the full chaos corpus, and a set of literal-heavy edge cases; token
//!    kinds, payloads (atoms resolved back to strings), spans, newline
//!    flags, and error positions must all agree.
//! 2. **Feature vectors** — `tests/fixtures/frontend_golden.json` embeds
//!    f32 *bit patterns* of full feature vectors produced by the
//!    pre-refactor front end. The current pipeline must reproduce every
//!    bit.

use jsdetect_ast::Atom;
use jsdetect_corpus::{chaos_corpus, regular_corpus};
use jsdetect_features::{analyze_script, FeatureConfig, VectorSpace};
use jsdetect_lexer::reference::{tokenize_reference, RefToken, RefTokenKind};
use jsdetect_lexer::{tokenize, Token, TokenKind};
use jsdetect_transform::{apply, Technique};
use serde::Deserialize;

/// Checks one payload pair: the reference `String` against the new `Atom`.
fn payload_eq(s: &str, a: Atom) -> bool {
    a == *s
}

fn kind_eq(r: &RefTokenKind, n: &TokenKind) -> bool {
    match (r, n) {
        (RefTokenKind::Ident(s), TokenKind::Ident(a)) => payload_eq(s, *a),
        (RefTokenKind::Keyword(k1), TokenKind::Keyword(k2)) => k1 == k2,
        (RefTokenKind::Num(n1), TokenKind::Num(n2)) => n1.to_bits() == n2.to_bits(),
        (RefTokenKind::BigInt(s), TokenKind::BigInt(a)) => payload_eq(s, *a),
        (RefTokenKind::Str(s), TokenKind::Str(a)) => payload_eq(s, *a),
        (RefTokenKind::PrivateName(s), TokenKind::PrivateName(a)) => payload_eq(s, *a),
        (
            RefTokenKind::Regex { pattern: p1, flags: f1 },
            TokenKind::Regex { pattern: p2, flags: f2 },
        ) => payload_eq(p1, *p2) && payload_eq(f1, *f2),
        (
            RefTokenKind::TemplateNoSub { cooked: c1, raw: r1 },
            TokenKind::TemplateNoSub { cooked: c2, raw: r2 },
        )
        | (
            RefTokenKind::TemplateHead { cooked: c1, raw: r1 },
            TokenKind::TemplateHead { cooked: c2, raw: r2 },
        )
        | (
            RefTokenKind::TemplateMiddle { cooked: c1, raw: r1 },
            TokenKind::TemplateMiddle { cooked: c2, raw: r2 },
        )
        | (
            RefTokenKind::TemplateTail { cooked: c1, raw: r1 },
            TokenKind::TemplateTail { cooked: c2, raw: r2 },
        ) => payload_eq(c1, *c2) && payload_eq(r1, *r2),
        (RefTokenKind::Punct(p1), TokenKind::Punct(p2)) => p1 == p2,
        (RefTokenKind::Eof, TokenKind::Eof) => true,
        _ => false,
    }
}

fn assert_streams_equal(label: &str, src: &str) {
    let old = tokenize_reference(src);
    let new = tokenize(src);
    match (old, new) {
        (Ok(old), Ok(new)) => {
            assert_eq!(
                old.len(),
                new.len(),
                "{}: token count diverged (old {}, new {})",
                label,
                old.len(),
                new.len()
            );
            for (i, (o, n)) in old.iter().zip(&new).enumerate() {
                assert_token_eq(label, i, o, n);
            }
        }
        (Err(eo), Err(en)) => {
            assert_eq!(eo.msg, en.msg, "{}: error message diverged", label);
            assert_eq!(eo.pos, en.pos, "{}: error position diverged", label);
        }
        (Ok(_), Err(en)) => panic!("{}: reference lexes but new errors: {}", label, en),
        (Err(eo), Ok(_)) => panic!("{}: new lexes but reference errors: {}", label, eo),
    }
}

fn assert_token_eq(label: &str, i: usize, o: &RefToken, n: &Token) {
    assert!(
        kind_eq(&o.kind, &n.kind),
        "{}: token {} kind diverged\n  old: {:?}\n  new: {:?}",
        label,
        i,
        o.kind,
        n.kind
    );
    assert_eq!(o.span, n.span, "{}: token {} span diverged ({:?})", label, i, n.kind);
    assert_eq!(
        o.newline_before, n.newline_before,
        "{}: token {} newline flag diverged ({:?})",
        label, i, n.kind
    );
}

/// The script set every stream test runs over: regular corpus, one variant
/// per technique, plus literal-heavy edge cases mirroring the golden
/// fixture's generator.
fn technique_scripts() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let regular = regular_corpus(12, 42);
    for (i, src) in regular.iter().enumerate() {
        out.push((format!("regular:{}", i), src.clone()));
    }
    for (i, t) in Technique::ALL.iter().enumerate() {
        let base = &regular[i % regular.len()];
        let obf = apply(base, &[*t], 1000 + i as u64)
            .unwrap_or_else(|e| panic!("technique {} failed: {:?}", t, e));
        out.push((format!("technique:{}", t.as_str()), obf));
    }
    out
}

#[test]
fn token_streams_match_reference_on_generated_corpus() {
    for (label, src) in technique_scripts() {
        assert_streams_equal(&label, &src);
    }
}

#[test]
fn token_streams_match_reference_on_chaos_corpus() {
    let cases = chaos_corpus();
    assert!(cases.len() >= 25, "chaos corpus shrank: {}", cases.len());
    for c in &cases {
        assert_streams_equal(c.name, &c.src);
    }
}

#[test]
fn token_streams_match_reference_on_edge_literals() {
    let edge: &[(&str, &str)] = &[
        ("numeric", "0x1F 0b1010 0o17 012 089 1_000_000 1e3 .5 5. 0.25e-2 42n 0xFFn 0xf_fn"),
        (
            "strings",
            r#"'a\nb\tc\x41B\u{1F600}\0\101' '\8' 'a\
b'"#,
        ),
        ("templates", "`a${1 + `inner${x}tail`}b${`${y}`}c` `\\n${q}\\t`"),
        ("regex", "var r = /a[/]b\\/c/gi; var d = x / y / z; if (1) /re(?:x)*/.test(s);"),
        ("idents", "var $_a1 = 1; var \\u0061bc = 2; var _0x3fa2 = $_a1 + \u{3b1}\u{3b2};"),
        ("punct", "a??=b; c||=d; e&&=f; g**=2; h>>>=1; i?.j; k?.['l']; m ?? n; o=>o; a?.3:.5"),
        ("empty", ""),
        ("comments", "// line\nvar x = 1; /* block\nmulti */ x++; // tail"),
        ("unicode-ws", "a\u{2028}b\u{00a0}c \u{2029} d"),
        ("bad-char", "a # b"),
        ("bad-escape", "'\\u{FFFFFFFF}'"),
        ("unterminated-str", "'abc"),
        ("unterminated-tpl", "`abc${x"),
        ("unterminated-comment", "/* never closed"),
        ("lone-backslash", "a \\ b"),
    ];
    for (label, src) in edge {
        assert_streams_equal(label, src);
    }
}

/// Schema of `tests/fixtures/frontend_golden.json` (kept in sync with
/// `crates/experiments/src/bin/golden_frontend.rs`).
#[derive(Deserialize)]
struct FrontendGolden {
    dim: usize,
    max_ngrams: usize,
    scripts: Vec<GoldenScript>,
}

#[derive(Deserialize)]
struct GoldenScript {
    label: String,
    src: String,
    vector_bits: Vec<u32>,
}

#[test]
fn feature_vectors_bit_identical_to_pre_refactor_fixture() {
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/frontend_golden.json"
    ))
    .expect("fixture present");
    let golden: FrontendGolden = serde_json::from_str(&raw).expect("fixture parses");
    assert!(golden.scripts.len() >= 30, "fixture shrank: {}", golden.scripts.len());

    let analyses: Vec<_> = golden
        .scripts
        .iter()
        .map(|s| {
            analyze_script(&s.src).unwrap_or_else(|e| panic!("{} failed to parse: {}", s.label, e))
        })
        .collect();
    let space = VectorSpace::fit(analyses.iter(), golden.max_ngrams, FeatureConfig::default());
    assert_eq!(space.dim(), golden.dim, "vector dimensionality changed");

    for (s, a) in golden.scripts.iter().zip(&analyses) {
        let v = space.vectorize(a);
        assert_eq!(v.len(), s.vector_bits.len(), "{}: vector length changed", s.label);
        for (i, (got, want)) in v.iter().zip(&s.vector_bits).enumerate() {
            assert_eq!(
                got.to_bits(),
                *want,
                "{}: dim {} diverged (got {}, want {})",
                s.label,
                i,
                got,
                f32::from_bits(*want)
            );
        }
    }
}

#[test]
fn atoms_round_trip_through_print_and_reparse() {
    use jsdetect_codegen::to_source;
    use jsdetect_parser::parse;

    for (i, src) in regular_corpus(6, 7).iter().enumerate() {
        let prog = parse(src).unwrap_or_else(|e| panic!("regular:{} parse: {}", i, e));
        let printed = to_source(&prog);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("regular:{} reparse: {}", i, e));
        let reprinted = to_source(&reparsed);
        assert_eq!(printed, reprinted, "regular:{} print→reparse→print not a fixed point", i);

        // Interned names must dedup to the *same* atom across parses: equal
        // ids, not merely equal strings.
        let mut names_a = Vec::new();
        let mut names_b = Vec::new();
        collect_ident_atoms(&prog, &mut names_a);
        collect_ident_atoms(&reparsed, &mut names_b);
        assert_eq!(names_a.len(), names_b.len(), "regular:{} ident count changed", i);
        for (a, b) in names_a.iter().zip(&names_b) {
            assert_eq!(a.id(), b.id(), "regular:{} atom id diverged: {:?} vs {:?}", i, a, b);
        }
    }
}

fn collect_ident_atoms(prog: &jsdetect_ast::Program, out: &mut Vec<Atom>) {
    use jsdetect_ast::{walk, NodeRef};
    walk(prog, &mut |node, _depth| {
        if let NodeRef::Ident(id) = node {
            out.push(id.name);
        }
    });
}

//! Recursive-descent parser producing the ESTree-style AST.
//!
//! Covers the ES2022-level subset the reproduction needs: all classic
//! statements, functions (incl. async/generator), arrow functions, classes
//! with fields and private (`#name`) members, template literals,
//! destructuring, spread/rest, optional chaining (`?.`), nullish
//! coalescing (`??`), logical assignment (`&&=`/`||=`/`??=`), BigInt
//! literals, ES modules (`import`/`export` declarations, dynamic
//! `import()`, `import.meta`), and automatic semicolon insertion.
//!
//! Module declarations are accepted at any statement position rather than
//! only at a module-goal top level — wild scripts mix goals freely, and the
//! detector must not reject them. [`Program::module_goal`] reports whether
//! a parse actually contained module syntax. Arrow-function parameter
//! lists are parsed with backtracking over the raw lexer, and `/` is
//! rescanned as a regular expression whenever the parser sits at an
//! expression-start position.

use crate::error::ParseError;
use jsdetect_ast::*;
use jsdetect_guard::Budget;
use jsdetect_lexer::{Comment, Kw, Lexer, Punct, Token, TokenKind};

/// Maximum AST nesting depth accepted by the parser.
///
/// Protects against stack exhaustion on pathological inputs (deeply nested
/// parentheses or arrays), which matters because the property-based tests
/// feed the parser arbitrary byte strings. Budgeted entry points use the
/// budget's own `max_ast_depth` instead.
const MAX_DEPTH: u32 = jsdetect_guard::LEGACY_MAX_DEPTH;

/// Left-deep chains (`1+1+1+…`, `f()()()`, `a.b.b.b`) are built by loops,
/// so the recursion guard never sees their nesting — yet every recursive
/// consumer of the AST (metrics, flow, drop glue) descends them one frame
/// per link. Chains therefore charge one depth unit per this many links
/// while they grow, released when the chain's loop exits. Consumer frames
/// are much smaller than parser frames, so the grain keeps legitimate
/// minified chains (hundreds of links) inside the cap while bounding the
/// worst case at `grain × max_depth` AST levels.
const CHAIN_DEPTH_GRAIN: u32 = 8;

/// Parses a complete program.
///
/// # Examples
///
/// ```
/// use jsdetect_parser::parse;
/// let prog = parse("var x = 1 + 2;").unwrap();
/// assert_eq!(prog.body.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.parse_program()
}

/// Parses a program and returns the comments alongside.
pub fn parse_with_comments(src: &str) -> Result<(Program, Vec<Comment>), ParseError> {
    let mut p = Parser::new(src)?;
    let prog = p.parse_program()?;
    Ok((prog, p.lexer.into_comments()))
}

/// Parses under a [`Budget`]: tokens and recursion depth are charged as the
/// parse runs. A blown budget surfaces as a `ParseError` here — the precise
/// typed cause stays recorded in the budget for the caller to recover via
/// `Budget::take_violation`.
pub fn parse_with_budget(src: &str, budget: &Budget) -> Result<Program, ParseError> {
    Parser::new_with_budget(src, budget)?.parse_program()
}

/// [`parse_with_budget`], returning the comments alongside.
pub fn parse_with_comments_budget<'s>(
    src: &'s str,
    budget: &'s Budget,
) -> Result<(Program, Vec<Comment>), ParseError> {
    let mut p = Parser::new_with_budget(src, budget)?;
    let prog = p.parse_program()?;
    Ok((prog, p.lexer.into_comments()))
}

struct Parser<'s> {
    lexer: Lexer<'s>,
    cur: Token,
    peeked: Option<Token>,
    depth: u32,
    src_len: u32,
    budget: Option<&'s Budget>,
}

/// Snapshot for backtracking (arrow-function cover grammar).
struct State {
    lex_pos: u32,
    cur: Token,
    comments_len: usize,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let cur = lexer.next_token(false)?;
        Ok(Parser { lexer, cur, peeked: None, depth: 0, src_len: src.len() as u32, budget: None })
    }

    fn new_with_budget(src: &'s str, budget: &'s Budget) -> Result<Self, ParseError> {
        let mut lexer = Lexer::with_budget(src, budget);
        let cur = lexer.next_token(false)?;
        Ok(Parser {
            lexer,
            cur,
            peeked: None,
            depth: 0,
            src_len: src.len() as u32,
            budget: Some(budget),
        })
    }

    // ---- token plumbing -------------------------------------------------

    fn advance(&mut self) -> Result<(), ParseError> {
        self.cur = match self.peeked.take() {
            Some(t) => t,
            None => self.lexer.next_token(false)?,
        };
        Ok(())
    }

    fn peek(&mut self) -> Result<&Token, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_token(false)?);
        }
        Ok(self.peeked.as_ref().unwrap())
    }

    fn save(&self) -> State {
        State {
            lex_pos: match &self.peeked {
                // If we have peeked, the lexer has advanced past `peeked`;
                // restoring to the peeked token's start re-lexes it.
                Some(t) => t.span.start,
                None => self.lexer.pos(),
            },
            cur: self.cur,
            comments_len: self.lexer.comments_len(),
        }
    }

    fn restore(&mut self, st: State) {
        self.lexer.set_pos(st.lex_pos);
        self.lexer.truncate_comments(st.comments_len);
        self.cur = st.cur;
        self.peeked = None;
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.cur.span.start)
    }

    fn unexpected(&self, what: &str) -> ParseError {
        self.err_here(format!("unexpected {} while parsing {}", self.cur.kind, what))
    }

    fn is_punct(&self, p: Punct) -> bool {
        self.cur.is_punct(p)
    }

    fn is_kw(&self, k: Kw) -> bool {
        self.cur.is_kw(k)
    }

    fn is_ident(&self, name: &str) -> bool {
        self.cur.ident_name() == Some(name)
    }

    fn eat_punct(&mut self, p: Punct) -> Result<bool, ParseError> {
        if self.is_punct(p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p)? {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{}`, found {}", p.as_str(), self.cur.kind)))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.is_kw(k) {
            self.advance()
        } else {
            Err(self.err_here(format!("expected `{}`, found {}", k.as_str(), self.cur.kind)))
        }
    }

    /// Rescans the current token as a regex if it is `/` or `/=`; called at
    /// every expression-start position.
    fn rescan_regex_if_slash(&mut self) -> Result<(), ParseError> {
        if matches!(
            self.cur.kind,
            TokenKind::Punct(Punct::Slash) | TokenKind::Punct(Punct::SlashEq)
        ) && self.peeked.is_none()
        {
            self.cur = self.lexer.rescan_regex(self.cur.span.start, self.cur.newline_before)?;
        }
        Ok(())
    }

    fn check_depth_now(&mut self) -> Result<(), ParseError> {
        match self.budget {
            // The budget records the typed `AstDepthExceeded`; only the
            // stringly rendering travels through the legacy `ParseError`.
            Some(budget) => {
                if let Err(e) = budget.check_depth(self.depth) {
                    return Err(self.err_here(e.to_string()));
                }
            }
            None => {
                if self.depth > MAX_DEPTH {
                    return Err(self.err_here("nesting too deep"));
                }
            }
        }
        Ok(())
    }

    fn enter(&mut self) -> Result<DepthGuard, ParseError> {
        self.depth += 1;
        self.check_depth_now()?;
        Ok(DepthGuard)
    }

    fn leave(&mut self, _g: DepthGuard) {
        self.depth -= 1;
    }

    /// Charges one more link of an iteratively-built chain against the
    /// depth budget (see [`CHAIN_DEPTH_GRAIN`]). Call once per wrap inside
    /// a chain loop; pair with [`Parser::chain_release`] on every exit.
    fn chain_link(&mut self, links: &mut u32) -> Result<(), ParseError> {
        *links += 1;
        if links.is_multiple_of(CHAIN_DEPTH_GRAIN) {
            self.depth += 1;
            self.check_depth_now()?;
        }
        Ok(())
    }

    /// Releases the depth charged by `links` chain links. Exact for any
    /// final `links` value: the charge is `links / GRAIN` whether the loop
    /// finished or errored mid-chain.
    fn chain_release(&mut self, links: u32) {
        self.depth -= links / CHAIN_DEPTH_GRAIN;
    }

    /// Automatic semicolon insertion at the end of a statement.
    fn consume_semi(&mut self, what: &str) -> Result<(), ParseError> {
        if self.eat_punct(Punct::Semi)? {
            return Ok(());
        }
        if self.is_punct(Punct::RBrace) || self.cur.is_eof() || self.cur.newline_before {
            return Ok(());
        }
        Err(self.err_here(format!("expected `;` after {}, found {}", what, self.cur.kind)))
    }

    // ---- program --------------------------------------------------------

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut body = Vec::new();
        while !self.cur.is_eof() {
            body.push(self.parse_stmt()?);
        }
        Ok(Program { body, span: Span::new(0, self.src_len) })
    }

    // ---- statements -----------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let g = self.enter()?;
        let r = self.parse_stmt_inner();
        self.leave(g);
        r
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        match &self.cur.kind {
            TokenKind::Punct(Punct::LBrace) => self.parse_block(),
            TokenKind::Punct(Punct::Semi) => {
                let span = self.cur.span;
                self.advance()?;
                Ok(Stmt::Empty { span })
            }
            TokenKind::Keyword(kw) => match kw {
                Kw::Var => self.parse_var_stmt(VarKind::Var),
                Kw::Const => self.parse_var_stmt(VarKind::Const),
                Kw::Function => {
                    let f = self.parse_function(false)?;
                    Ok(Stmt::FunctionDecl(f))
                }
                Kw::Class => {
                    let c = self.parse_class()?;
                    Ok(Stmt::ClassDecl(c))
                }
                Kw::If => self.parse_if(),
                Kw::For => self.parse_for(),
                Kw::While => self.parse_while(),
                Kw::Do => self.parse_do_while(),
                Kw::Switch => self.parse_switch(),
                Kw::Try => self.parse_try(),
                Kw::Throw => self.parse_throw(),
                Kw::Return => self.parse_return(),
                Kw::Break => self.parse_break_continue(true),
                Kw::Continue => self.parse_break_continue(false),
                Kw::Debugger => {
                    let span = self.cur.span;
                    self.advance()?;
                    self.consume_semi("debugger statement")?;
                    Ok(Stmt::Debugger { span })
                }
                Kw::With => self.parse_with(),
                _ => self.parse_expr_stmt(start),
            },
            TokenKind::Ident(_) => {
                let name = self.cur.ident_atom().unwrap_or_default();
                // `let` declaration (contextual), `async function`, labels.
                if name == "let" {
                    let next = self.peek()?;
                    let starts_binding = matches!(&next.kind, TokenKind::Ident(_))
                        || next.is_punct(Punct::LBracket)
                        || next.is_punct(Punct::LBrace)
                        || matches!(&next.kind, TokenKind::Keyword(Kw::Yield));
                    if starts_binding {
                        return self.parse_var_stmt(VarKind::Let);
                    }
                } else if name == "async" {
                    let next = self.peek()?;
                    if next.is_kw(Kw::Function) && !next.newline_before {
                        self.advance()?; // async
                        let mut f = self.parse_function(false)?;
                        f.is_async = true;
                        return Ok(Stmt::FunctionDecl(f));
                    }
                } else if name == "import" {
                    // Declaration unless it is the expression form
                    // `import(...)` or `import.meta`, which fall through
                    // to the expression-statement path.
                    let next = self.peek()?;
                    if !next.is_punct(Punct::LParen) && !next.is_punct(Punct::Dot) {
                        return self.parse_import_decl();
                    }
                } else if name == "export" {
                    let next = self.peek()?;
                    let starts_export = next.is_punct(Punct::LBrace)
                        || next.is_punct(Punct::Star)
                        || matches!(
                            &next.kind,
                            TokenKind::Keyword(
                                Kw::Var | Kw::Const | Kw::Function | Kw::Class | Kw::Default
                            )
                        )
                        || matches!(next.ident_name(), Some("let" | "async"));
                    if starts_export {
                        return self.parse_export_decl();
                    }
                }
                // Label: `ident :`
                if self.peek()?.is_punct(Punct::Colon) {
                    let label = Ident { name, span: self.cur.span };
                    self.advance()?; // ident
                    self.advance()?; // :
                    let body = self.parse_stmt()?;
                    let span = Span::new(start, body.span().end);
                    return Ok(Stmt::Labeled { label, body: Box::new(body), span });
                }
                self.parse_expr_stmt(start)
            }
            _ => self.parse_expr_stmt(start),
        }
    }

    fn parse_block(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_punct(Punct::LBrace)?;
        let mut body = Vec::new();
        while !self.is_punct(Punct::RBrace) {
            if self.cur.is_eof() {
                return Err(self.err_here("unterminated block"));
            }
            body.push(self.parse_stmt()?);
        }
        let end = self.cur.span.end;
        self.advance()?;
        Ok(Stmt::Block { body, span: Span::new(start, end) })
    }

    fn parse_var_stmt(&mut self, kind: VarKind) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.advance()?; // var/let/const
        let decls = self.parse_var_declarators(kind, true)?;
        let end = decls.last().map(|d| d.span.end).unwrap_or(start);
        self.consume_semi("variable declaration")?;
        Ok(Stmt::VarDecl { kind, decls, span: Span::new(start, end) })
    }

    fn parse_var_declarators(
        &mut self,
        kind: VarKind,
        in_allowed: bool,
    ) -> Result<Vec<VarDeclarator>, ParseError> {
        let mut decls = Vec::new();
        loop {
            let id = self.parse_binding_pat()?;
            let init = if self.eat_punct(Punct::Eq)? {
                Some(self.parse_assignment(in_allowed)?)
            } else {
                if kind == VarKind::Const && !matches!(id, Pat::Ident(_)) {
                    // Destructuring const without init is invalid; identifier
                    // const without init tolerated (found in the wild).
                }
                None
            };
            let span = Span::new(
                id.span().start,
                init.as_ref().map(|e| e.span().end).unwrap_or(id.span().end),
            );
            decls.push(VarDeclarator { id, init, span });
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        Ok(decls)
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::If)?;
        self.expect_punct(Punct::LParen)?;
        let test = self.parse_expr(true)?;
        self.expect_punct(Punct::RParen)?;
        let consequent = Box::new(self.parse_stmt()?);
        let alternate = if self.is_kw(Kw::Else) {
            self.advance()?;
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        let end = alternate.as_ref().map(|s| s.span().end).unwrap_or_else(|| consequent.span().end);
        Ok(Stmt::If { test, consequent, alternate, span: Span::new(start, end) })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::For)?;
        // `for await (x of iterable)` — async iteration (ES2018). The
        // await marker does not change the AST shape we produce.
        if self.is_ident("await") {
            self.advance()?;
        }
        self.expect_punct(Punct::LParen)?;

        // Empty init: `for (;;)`.
        if self.eat_punct(Punct::Semi)? {
            return self.parse_for_rest(start, None);
        }

        // Declaration-led: `for (var/let/const ...`.
        let decl_kind = if self.is_kw(Kw::Var) {
            Some(VarKind::Var)
        } else if self.is_kw(Kw::Const) {
            Some(VarKind::Const)
        } else if self.is_ident("let") {
            let next = self.peek()?;
            let binding = matches!(&next.kind, TokenKind::Ident(_))
                || next.is_punct(Punct::LBracket)
                || next.is_punct(Punct::LBrace);
            if binding {
                Some(VarKind::Let)
            } else {
                None
            }
        } else {
            None
        };

        if let Some(kind) = decl_kind {
            self.advance()?; // var/let/const
            let pat = self.parse_binding_pat()?;
            if self.is_kw(Kw::In) {
                self.advance()?;
                let object = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let span = Span::new(start, body.span().end);
                return Ok(Stmt::ForIn {
                    target: ForTarget::Var { kind, pat },
                    object,
                    body,
                    span,
                });
            }
            if self.is_ident("of") {
                self.advance()?;
                let iterable = self.parse_assignment(true)?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let span = Span::new(start, body.span().end);
                return Ok(Stmt::ForOf {
                    target: ForTarget::Var { kind, pat },
                    iterable,
                    body,
                    span,
                });
            }
            // Classic for with declaration init.
            let mut decls = Vec::new();
            let init =
                if self.eat_punct(Punct::Eq)? { Some(self.parse_assignment(false)?) } else { None };
            let dspan = Span::new(
                pat.span().start,
                init.as_ref().map(|e| e.span().end).unwrap_or(pat.span().end),
            );
            decls.push(VarDeclarator { id: pat, init, span: dspan });
            if self.eat_punct(Punct::Comma)? {
                decls.extend(self.parse_var_declarators(kind, false)?);
            }
            self.expect_punct(Punct::Semi)?;
            return self.parse_for_rest(start, Some(ForInit::Var { kind, decls }));
        }

        // Expression-led.
        let first = self.parse_expr(false)?;
        if self.is_kw(Kw::In) {
            self.advance()?;
            let target = ForTarget::Pat(expr_to_pat(first)?);
            let object = self.parse_expr(true)?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.parse_stmt()?);
            let span = Span::new(start, body.span().end);
            return Ok(Stmt::ForIn { target, object, body, span });
        }
        if self.is_ident("of") {
            self.advance()?;
            let target = ForTarget::Pat(expr_to_pat(first)?);
            let iterable = self.parse_assignment(true)?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.parse_stmt()?);
            let span = Span::new(start, body.span().end);
            return Ok(Stmt::ForOf { target, iterable, body, span });
        }
        self.expect_punct(Punct::Semi)?;
        self.parse_for_rest(start, Some(ForInit::Expr(first)))
    }

    fn parse_for_rest(&mut self, start: u32, init: Option<ForInit>) -> Result<Stmt, ParseError> {
        let test = if self.is_punct(Punct::Semi) { None } else { Some(self.parse_expr(true)?) };
        self.expect_punct(Punct::Semi)?;
        let update = if self.is_punct(Punct::RParen) { None } else { Some(self.parse_expr(true)?) };
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = Span::new(start, body.span().end);
        Ok(Stmt::For { init, test, update, body, span })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::While)?;
        self.expect_punct(Punct::LParen)?;
        let test = self.parse_expr(true)?;
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = Span::new(start, body.span().end);
        Ok(Stmt::While { test, body, span })
    }

    fn parse_do_while(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Do)?;
        let body = Box::new(self.parse_stmt()?);
        self.expect_kw(Kw::While)?;
        self.expect_punct(Punct::LParen)?;
        let test = self.parse_expr(true)?;
        let end = self.cur.span.end;
        self.expect_punct(Punct::RParen)?;
        // ASI: `do ... while (x)` needs no semicolon.
        let _ = self.eat_punct(Punct::Semi)?;
        Ok(Stmt::DoWhile { body, test, span: Span::new(start, end) })
    }

    fn parse_switch(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Switch)?;
        self.expect_punct(Punct::LParen)?;
        let discriminant = self.parse_expr(true)?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases = Vec::new();
        let mut seen_default = false;
        while !self.is_punct(Punct::RBrace) {
            let cstart = self.cur.span.start;
            let test = if self.is_kw(Kw::Case) {
                self.advance()?;
                Some(self.parse_expr(true)?)
            } else if self.is_kw(Kw::Default) {
                if seen_default {
                    return Err(self.err_here("duplicate `default` clause"));
                }
                seen_default = true;
                self.advance()?;
                None
            } else {
                return Err(self.unexpected("switch case"));
            };
            self.expect_punct(Punct::Colon)?;
            let mut body = Vec::new();
            while !self.is_punct(Punct::RBrace) && !self.is_kw(Kw::Case) && !self.is_kw(Kw::Default)
            {
                if self.cur.is_eof() {
                    return Err(self.err_here("unterminated switch"));
                }
                body.push(self.parse_stmt()?);
            }
            let cend = body.last().map(|s| s.span().end).unwrap_or(cstart);
            cases.push(SwitchCase { test, body, span: Span::new(cstart, cend) });
        }
        let end = self.cur.span.end;
        self.advance()?;
        Ok(Stmt::Switch { discriminant, cases, span: Span::new(start, end) })
    }

    fn parse_try(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Try)?;
        let block = match self.parse_block()? {
            Stmt::Block { body, .. } => body,
            _ => unreachable!(),
        };
        let mut handler = None;
        if self.is_kw(Kw::Catch) {
            let cstart = self.cur.span.start;
            self.advance()?;
            let param = if self.eat_punct(Punct::LParen)? {
                let p = self.parse_binding_pat()?;
                self.expect_punct(Punct::RParen)?;
                Some(p)
            } else {
                None
            };
            let body = match self.parse_block()? {
                Stmt::Block { body, span } => {
                    handler = Some(CatchClause {
                        param,
                        body: Vec::new(),
                        span: Span::new(cstart, span.end),
                    });
                    body
                }
                _ => unreachable!(),
            };
            if let Some(h) = &mut handler {
                h.body = body;
            }
        }
        let finalizer = if self.is_kw(Kw::Finally) {
            self.advance()?;
            match self.parse_block()? {
                Stmt::Block { body, .. } => Some(body),
                _ => unreachable!(),
            }
        } else {
            None
        };
        if handler.is_none() && finalizer.is_none() {
            return Err(self.err_here("`try` requires `catch` or `finally`"));
        }
        let end = self.cur.span.start;
        Ok(Stmt::Try { block, handler, finalizer, span: Span::new(start, end) })
    }

    fn parse_throw(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Throw)?;
        if self.cur.newline_before {
            return Err(self.err_here("newline not allowed after `throw`"));
        }
        let arg = self.parse_expr(true)?;
        let end = arg.span().end;
        self.consume_semi("throw statement")?;
        Ok(Stmt::Throw { arg, span: Span::new(start, end) })
    }

    fn parse_return(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        let mut end = self.cur.span.end;
        self.expect_kw(Kw::Return)?;
        let arg = if self.is_punct(Punct::Semi)
            || self.is_punct(Punct::RBrace)
            || self.cur.is_eof()
            || self.cur.newline_before
        {
            None
        } else {
            let e = self.parse_expr(true)?;
            end = e.span().end;
            Some(e)
        };
        self.consume_semi("return statement")?;
        Ok(Stmt::Return { arg, span: Span::new(start, end) })
    }

    fn parse_break_continue(&mut self, is_break: bool) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        let mut end = self.cur.span.end;
        self.advance()?;
        let label = if let TokenKind::Ident(name) = &self.cur.kind {
            if self.cur.newline_before {
                None
            } else {
                let id = Ident { name: *name, span: self.cur.span };
                end = self.cur.span.end;
                self.advance()?;
                Some(id)
            }
        } else {
            None
        };
        self.consume_semi(if is_break { "break statement" } else { "continue statement" })?;
        let span = Span::new(start, end);
        Ok(if is_break { Stmt::Break { label, span } } else { Stmt::Continue { label, span } })
    }

    fn parse_with(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::With)?;
        self.expect_punct(Punct::LParen)?;
        let object = self.parse_expr(true)?;
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = Span::new(start, body.span().end);
        Ok(Stmt::With { object, body, span })
    }

    fn parse_expr_stmt(&mut self, start: u32) -> Result<Stmt, ParseError> {
        // `function`/`class` cannot start an expression statement.
        let expr = self.parse_expr(true)?;
        let end = expr.span().end;
        self.consume_semi("expression statement")?;
        Ok(Stmt::Expr { expr, span: Span::new(start, end) })
    }

    // ---- modules ---------------------------------------------------------

    /// Parses an `import` declaration. The caller has already ruled out the
    /// expression forms (`import(...)`, `import.meta`) by lookahead.
    fn parse_import_decl(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.advance()?; // import
                         // Bare side-effect import: `import "mod";`
        if matches!(self.cur.kind, TokenKind::Str(_)) {
            let source = self.parse_module_source()?;
            let end = source.span.end;
            self.consume_semi("import declaration")?;
            return Ok(Stmt::Import {
                specifiers: Vec::new(),
                source,
                span: Span::new(start, end),
            });
        }
        let mut specifiers = Vec::new();
        if let TokenKind::Ident(name) = &self.cur.kind {
            let local = Ident { name: *name, span: self.cur.span };
            self.advance()?;
            specifiers.push(ImportSpecifier::Default { local });
            if self.eat_punct(Punct::Comma)? {
                self.parse_import_clause_tail(&mut specifiers)?;
            }
        } else {
            self.parse_import_clause_tail(&mut specifiers)?;
        }
        if !self.is_ident("from") {
            return Err(self.err_here(format!(
                "expected `from` in import declaration, found {}",
                self.cur.kind
            )));
        }
        self.advance()?; // from
        let source = self.parse_module_source()?;
        let end = source.span.end;
        self.consume_semi("import declaration")?;
        Ok(Stmt::Import { specifiers, source, span: Span::new(start, end) })
    }

    /// Parses the namespace (`* as ns`) or named (`{a, b as c}`) part of an
    /// import clause, after any default binding and its comma.
    fn parse_import_clause_tail(
        &mut self,
        specifiers: &mut Vec<ImportSpecifier>,
    ) -> Result<(), ParseError> {
        if self.eat_punct(Punct::Star)? {
            if !self.is_ident("as") {
                return Err(self.err_here(format!(
                    "expected `as` in namespace import, found {}",
                    self.cur.kind
                )));
            }
            self.advance()?; // as
            let local = self.parse_binding_ident("namespace import binding")?;
            specifiers.push(ImportSpecifier::Namespace { local });
            return Ok(());
        }
        self.expect_punct(Punct::LBrace)?;
        while !self.is_punct(Punct::RBrace) {
            let (imported, ispan) = self.parse_module_export_name()?;
            let local = if self.is_ident("as") {
                self.advance()?;
                self.parse_binding_ident("import binding")?
            } else {
                Ident { name: imported, span: ispan }
            };
            specifiers.push(ImportSpecifier::Named { imported, local });
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(())
    }

    /// Parses an `export` declaration: `export * [as ns] from`, `export
    /// default <expr>`, `export {specs} [from]`, or `export <declaration>`.
    fn parse_export_decl(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur.span.start;
        self.advance()?; // export

        if self.eat_punct(Punct::Star)? {
            let exported = if self.is_ident("as") {
                self.advance()?;
                let (name, span) = self.parse_module_export_name()?;
                Some(Ident { name, span })
            } else {
                None
            };
            if !self.is_ident("from") {
                return Err(self.err_here(format!(
                    "expected `from` in export declaration, found {}",
                    self.cur.kind
                )));
            }
            self.advance()?; // from
            let source = self.parse_module_source()?;
            let end = source.span.end;
            self.consume_semi("export declaration")?;
            return Ok(Stmt::ExportAll { exported, source, span: Span::new(start, end) });
        }

        if self.is_kw(Kw::Default) {
            self.advance()?;
            // `function`/`class` parse as (possibly anonymous) expressions
            // here; the printer knows not to terminate them with `;`.
            let expr = self.parse_assignment(true)?;
            let end = expr.span().end;
            self.consume_semi("export declaration")?;
            return Ok(Stmt::ExportDefault { expr, span: Span::new(start, end) });
        }

        if self.is_punct(Punct::LBrace) {
            self.advance()?;
            let mut specifiers = Vec::new();
            while !self.is_punct(Punct::RBrace) {
                let (lname, lspan) = self.parse_module_export_name()?;
                let exported = if self.is_ident("as") {
                    self.advance()?;
                    let (ename, _) = self.parse_module_export_name()?;
                    ename
                } else {
                    lname
                };
                specifiers
                    .push(ExportSpecifier { local: Ident { name: lname, span: lspan }, exported });
                if !self.eat_punct(Punct::Comma)? {
                    break;
                }
            }
            let mut end = self.cur.span.end;
            self.expect_punct(Punct::RBrace)?;
            let source = if self.is_ident("from") {
                self.advance()?;
                let s = self.parse_module_source()?;
                end = s.span.end;
                Some(s)
            } else {
                None
            };
            self.consume_semi("export declaration")?;
            return Ok(Stmt::ExportNamed {
                decl: None,
                specifiers,
                source,
                span: Span::new(start, end),
            });
        }

        // `export var/let/const/function/class/async function ...`
        let decl = self.parse_stmt()?;
        let end = decl.span().end;
        Ok(Stmt::ExportNamed {
            decl: Some(Box::new(decl)),
            specifiers: Vec::new(),
            source: None,
            span: Span::new(start, end),
        })
    }

    /// A module specifier string literal (`from "mod"`, `import "mod"`).
    fn parse_module_source(&mut self) -> Result<Lit, ParseError> {
        match &self.cur.kind {
            TokenKind::Str(s) => {
                let lit = Lit {
                    value: LitValue::Str(*s),
                    raw: span_raw_placeholder(),
                    span: self.cur.span,
                };
                self.advance()?;
                Ok(lit)
            }
            _ => Err(self.unexpected("module specifier")),
        }
    }

    /// An import/export specifier name. Keywords are valid module export
    /// names (`import { default as d }`), so both token kinds are accepted.
    fn parse_module_export_name(&mut self) -> Result<(Atom, Span), ParseError> {
        let span = self.cur.span;
        let name = match &self.cur.kind {
            TokenKind::Ident(n) => *n,
            TokenKind::Keyword(kw) => kw.atom(),
            _ => return Err(self.unexpected("import/export specifier")),
        };
        self.advance()?;
        Ok((name, span))
    }

    /// A plain identifier binding (no destructuring), e.g. an import local.
    fn parse_binding_ident(&mut self, what: &str) -> Result<Ident, ParseError> {
        match &self.cur.kind {
            TokenKind::Ident(n) => {
                let id = Ident { name: *n, span: self.cur.span };
                self.advance()?;
                Ok(id)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    // ---- functions & classes -------------------------------------------

    /// Parses `function [name](params) { body }`; `expr_ctx` allows an
    /// anonymous function.
    fn parse_function(&mut self, expr_ctx: bool) -> Result<Function, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Function)?;
        let is_generator = self.eat_punct(Punct::Star)?;
        let id = if let TokenKind::Ident(name) = &self.cur.kind {
            let id = Ident { name: *name, span: self.cur.span };
            self.advance()?;
            Some(id)
        } else if !expr_ctx {
            return Err(self.err_here("function declaration requires a name"));
        } else {
            None
        };
        let params = self.parse_params()?;
        let (body, end) = self.parse_fn_body()?;
        Ok(Function {
            id,
            params,
            body,
            is_generator,
            is_async: false,
            span: Span::new(start, end),
        })
    }

    fn parse_params(&mut self) -> Result<Vec<Pat>, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        while !self.is_punct(Punct::RParen) {
            if self.is_punct(Punct::Ellipsis) {
                let rstart = self.cur.span.start;
                self.advance()?;
                let arg = self.parse_binding_pat()?;
                let span = Span::new(rstart, arg.span().end);
                params.push(Pat::Rest { arg: Box::new(arg), span });
                break;
            }
            let mut p = self.parse_binding_pat()?;
            if self.eat_punct(Punct::Eq)? {
                let value = self.parse_assignment(true)?;
                let span = Span::new(p.span().start, value.span().end);
                p = Pat::Assign { target: Box::new(p), value: Box::new(value), span };
            }
            params.push(p);
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(params)
    }

    fn parse_fn_body(&mut self) -> Result<(Vec<Stmt>, u32), ParseError> {
        match self.parse_block()? {
            Stmt::Block { body, span } => Ok((body, span.end)),
            _ => unreachable!(),
        }
    }

    fn parse_class(&mut self) -> Result<Class, ParseError> {
        let start = self.cur.span.start;
        self.expect_kw(Kw::Class)?;
        let id = if let TokenKind::Ident(name) = &self.cur.kind {
            let id = Ident { name: *name, span: self.cur.span };
            self.advance()?;
            Some(id)
        } else {
            None
        };
        let super_class = if self.is_kw(Kw::Extends) {
            self.advance()?;
            Some(Box::new(self.parse_lhs_expr()?))
        } else {
            None
        };
        self.expect_punct(Punct::LBrace)?;
        let mut body = Vec::new();
        while !self.is_punct(Punct::RBrace) {
            if self.cur.is_eof() {
                return Err(self.err_here("unterminated class body"));
            }
            if self.eat_punct(Punct::Semi)? {
                continue;
            }
            body.push(self.parse_class_member()?);
        }
        let end = self.cur.span.end;
        self.advance()?;
        Ok(Class { id, super_class, body, span: Span::new(start, end) })
    }

    fn parse_class_member(&mut self) -> Result<ClassMember, ParseError> {
        let start = self.cur.span.start;
        let mut is_static = false;
        if self.is_ident("static") && !self.peek()?.is_punct(Punct::LParen) {
            is_static = true;
            self.advance()?;
        }
        let mut is_async = false;
        let mut is_generator = false;
        let mut kind = MethodKind::Method;

        if self.is_ident("async")
            && !self.peek()?.is_punct(Punct::LParen)
            && !self.peek()?.is_punct(Punct::Eq)
            && !self.peek()?.newline_before
        {
            is_async = true;
            self.advance()?;
        }
        if self.is_punct(Punct::Star) {
            is_generator = true;
            self.advance()?;
        }
        if (self.is_ident("get") || self.is_ident("set"))
            && !self.peek()?.is_punct(Punct::LParen)
            && !self.peek()?.is_punct(Punct::Eq)
        {
            kind = if self.is_ident("get") { MethodKind::Get } else { MethodKind::Set };
            self.advance()?;
        }

        let (key, computed) = self.parse_prop_key()?;

        if self.is_punct(Punct::LParen) {
            if kind == MethodKind::Method
                && !is_static
                && key.static_name().as_deref() == Some("constructor")
            {
                kind = MethodKind::Constructor;
            }
            let params = self.parse_params()?;
            let (body, end) = self.parse_fn_body()?;
            let f = Function {
                id: None,
                params,
                body,
                is_generator,
                is_async,
                span: Span::new(start, end),
            };
            Ok(ClassMember {
                key,
                value: ClassMemberValue::Method(f),
                kind,
                is_static,
                computed,
                span: Span::new(start, end),
            })
        } else {
            // Field: `name = value;` or `name;`
            let value =
                if self.eat_punct(Punct::Eq)? { Some(self.parse_assignment(true)?) } else { None };
            let end = value.as_ref().map(|v| v.span().end).unwrap_or(self.cur.span.start);
            self.consume_semi("class field")?;
            Ok(ClassMember {
                key,
                value: ClassMemberValue::Field(value),
                kind: MethodKind::Field,
                is_static,
                computed,
                span: Span::new(start, end),
            })
        }
    }

    /// Parses a property key (identifier, keyword-as-name, string/number
    /// literal, or computed `[expr]`). Returns `(key, computed)`.
    fn parse_prop_key(&mut self) -> Result<(PropKey, bool), ParseError> {
        match &self.cur.kind {
            TokenKind::Ident(name) => {
                let id = Ident { name: *name, span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Ident(id), false))
            }
            TokenKind::Keyword(kw) => {
                // Keywords are valid property names: `{new: 1}`, `obj.class`.
                let id = Ident { name: kw.atom(), span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Ident(id), false))
            }
            TokenKind::Str(s) => {
                let lit = Lit { value: LitValue::Str(*s), raw: Atom::empty(), span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Lit(lit), false))
            }
            TokenKind::Num(n) => {
                let lit = Lit { value: LitValue::Num(*n), raw: Atom::empty(), span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Lit(lit), false))
            }
            TokenKind::BigInt(d) => {
                let lit =
                    Lit { value: LitValue::BigInt(*d), raw: Atom::empty(), span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Lit(lit), false))
            }
            TokenKind::PrivateName(n) => {
                let id = Ident { name: *n, span: self.cur.span };
                self.advance()?;
                Ok((PropKey::Private(id), false))
            }
            TokenKind::Punct(Punct::LBracket) => {
                self.advance()?;
                let e = self.parse_assignment(true)?;
                self.expect_punct(Punct::RBracket)?;
                Ok((PropKey::Computed(Box::new(e)), true))
            }
            _ => Err(self.unexpected("property key")),
        }
    }

    // ---- expressions -----------------------------------------------------

    /// Parses a (possibly comma-separated sequence) expression.
    fn parse_expr(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_expr_inner(in_allowed);
        self.leave(g);
        r
    }

    fn parse_expr_inner(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        let first = self.parse_assignment(in_allowed)?;
        if !self.is_punct(Punct::Comma) {
            return Ok(first);
        }
        let start = first.span().start;
        let mut exprs = vec![first];
        while self.eat_punct(Punct::Comma)? {
            exprs.push(self.parse_assignment(in_allowed)?);
        }
        let end = exprs.last().unwrap().span().end;
        Ok(Expr::Sequence { exprs, span: Span::new(start, end) })
    }

    /// Parses an assignment-level expression (includes arrows, ternary,
    /// yield).
    fn parse_assignment(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_assignment_inner(in_allowed);
        self.leave(g);
        r
    }

    fn parse_assignment_inner(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        self.rescan_regex_if_slash()?;

        // yield-expression.
        if self.is_kw(Kw::Yield) {
            let start = self.cur.span.start;
            let mut end = self.cur.span.end;
            self.advance()?;
            let delegate = if !self.cur.newline_before && self.is_punct(Punct::Star) {
                self.advance()?;
                true
            } else {
                false
            };
            let arg = if self.cur.newline_before
                || self.is_punct(Punct::Semi)
                || self.is_punct(Punct::RParen)
                || self.is_punct(Punct::RBrace)
                || self.is_punct(Punct::RBracket)
                || self.is_punct(Punct::Comma)
                || self.is_punct(Punct::Colon)
                || self.cur.is_eof()
            {
                None
            } else {
                let e = self.parse_assignment(in_allowed)?;
                end = e.span().end;
                Some(Box::new(e))
            };
            return Ok(Expr::Yield { arg, delegate, span: Span::new(start, end) });
        }

        // Arrow functions. Three shapes: `x => ...`, `(params) => ...`,
        // `async x => ...` / `async (params) => ...`.
        if let Some(arrow) = self.try_parse_arrow()? {
            return Ok(arrow);
        }

        let lhs = self.parse_conditional(in_allowed)?;

        // Assignment operators.
        let op = match &self.cur.kind {
            TokenKind::Punct(p) => assign_op_of(*p),
            _ => None,
        };
        if let Some(op) = op {
            let target = expr_to_pat(lhs)?;
            self.advance()?;
            let value = self.parse_assignment(in_allowed)?;
            let span = Span::new(target.span().start, value.span().end);
            return Ok(Expr::Assign { op, target: Box::new(target), value: Box::new(value), span });
        }
        Ok(lhs)
    }

    /// Attempts to parse an arrow function at the current position,
    /// backtracking on failure. Returns `Ok(None)` if the input is not an
    /// arrow function.
    fn try_parse_arrow(&mut self) -> Result<Option<Expr>, ParseError> {
        let start = self.cur.span.start;

        // `ident => ...`
        if let TokenKind::Ident(name) = &self.cur.kind {
            let name = *name;
            if name != "async" {
                let next = self.peek()?;
                if next.is_punct(Punct::Arrow) && !next.newline_before {
                    let param = Pat::Ident(Ident { name, span: self.cur.span });
                    self.advance()?; // ident
                    self.advance()?; // =>
                    return Ok(Some(self.finish_arrow(start, vec![param], false)?));
                }
            } else {
                // `async x => ...` / `async (params) => ...`
                let next = self.peek()?;
                if !next.newline_before {
                    if let TokenKind::Ident(pname) = &next.kind {
                        let pname = *pname;
                        let pspan = next.span;
                        let st = self.save();
                        self.advance()?; // async
                        self.advance()?; // param ident
                        if self.is_punct(Punct::Arrow) && !self.cur.newline_before {
                            self.advance()?; // =>
                            let param = Pat::Ident(Ident { name: pname, span: pspan });
                            return Ok(Some(self.finish_arrow(start, vec![param], true)?));
                        }
                        self.restore(st);
                    } else if next.is_punct(Punct::LParen) {
                        let st = self.save();
                        self.advance()?; // async
                        match self.try_paren_arrow(start, true)? {
                            Some(e) => return Ok(Some(e)),
                            None => self.restore(st),
                        }
                    }
                }
            }
        } else if self.is_punct(Punct::LParen) {
            let st = self.save();
            match self.try_paren_arrow(start, false)? {
                Some(e) => return Ok(Some(e)),
                None => self.restore(st),
            }
        }
        Ok(None)
    }

    /// Speculatively parses `(params) => body`; returns `None` (without
    /// consuming) if the parenthesized fragment is not an arrow head.
    fn try_paren_arrow(&mut self, start: u32, is_async: bool) -> Result<Option<Expr>, ParseError> {
        let st = self.save();
        let params = match self.parse_params() {
            Ok(p) => p,
            Err(_) => {
                self.restore(st);
                return Ok(None);
            }
        };
        if self.is_punct(Punct::Arrow) && !self.cur.newline_before {
            self.advance()?;
            Ok(Some(self.finish_arrow(start, params, is_async)?))
        } else {
            self.restore(st);
            Ok(None)
        }
    }

    fn finish_arrow(
        &mut self,
        start: u32,
        params: Vec<Pat>,
        is_async: bool,
    ) -> Result<Expr, ParseError> {
        if self.is_punct(Punct::LBrace) {
            let (body, end) = self.parse_fn_body()?;
            Ok(Expr::Arrow {
                params,
                body: ArrowBody::Block(body),
                is_async,
                span: Span::new(start, end),
            })
        } else {
            let e = self.parse_assignment(true)?;
            let end = e.span().end;
            Ok(Expr::Arrow {
                params,
                body: ArrowBody::Expr(Box::new(e)),
                is_async,
                span: Span::new(start, end),
            })
        }
    }

    fn parse_conditional(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        let test = self.parse_binary(0, in_allowed)?;
        if !self.is_punct(Punct::Question) {
            return Ok(test);
        }
        self.advance()?;
        let consequent = self.parse_assignment(true)?;
        self.expect_punct(Punct::Colon)?;
        let alternate = self.parse_assignment(in_allowed)?;
        let span = Span::new(test.span().start, alternate.span().end);
        Ok(Expr::Conditional {
            test: Box::new(test),
            consequent: Box::new(consequent),
            alternate: Box::new(alternate),
            span,
        })
    }

    /// Precedence-climbing binary/logical expression parser.
    fn parse_binary(&mut self, min_prec: u8, in_allowed: bool) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_binary_inner(min_prec, in_allowed);
        self.leave(g);
        r
    }

    fn parse_binary_inner(&mut self, min_prec: u8, in_allowed: bool) -> Result<Expr, ParseError> {
        let left = self.parse_unary(in_allowed)?;
        let mut links = 0u32;
        let r = self.parse_binary_chain(left, min_prec, in_allowed, &mut links);
        self.chain_release(links);
        r
    }

    fn parse_binary_chain(
        &mut self,
        mut left: Expr,
        min_prec: u8,
        in_allowed: bool,
        links: &mut u32,
    ) -> Result<Expr, ParseError> {
        loop {
            let (prec, right_assoc, kind) = match &self.cur.kind {
                TokenKind::Keyword(Kw::In) if !in_allowed => break,
                TokenKind::Keyword(Kw::In) => {
                    (BinaryOp::In.precedence(), false, BinKind::Bin(BinaryOp::In))
                }
                TokenKind::Keyword(Kw::Instanceof) => {
                    (BinaryOp::InstanceOf.precedence(), false, BinKind::Bin(BinaryOp::InstanceOf))
                }
                TokenKind::Punct(p) => match binary_op_of(*p) {
                    Some(op) => (op.precedence(), op == BinaryOp::Exp, BinKind::Bin(op)),
                    None => match logical_op_of(*p) {
                        Some(op) => (op.precedence(), false, BinKind::Log(op)),
                        None => break,
                    },
                },
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.chain_link(links)?;
            self.advance()?;
            self.rescan_regex_if_slash()?;
            let next_min = if right_assoc { prec } else { prec + 1 };
            let right = self.parse_binary(next_min, in_allowed)?;
            let span = Span::new(left.span().start, right.span().end);
            left = match kind {
                BinKind::Bin(op) => {
                    Expr::Binary { op, left: Box::new(left), right: Box::new(right), span }
                }
                BinKind::Log(op) => {
                    Expr::Logical { op, left: Box::new(left), right: Box::new(right), span }
                }
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_unary_inner(in_allowed);
        self.leave(g);
        r
    }

    fn parse_unary_inner(&mut self, in_allowed: bool) -> Result<Expr, ParseError> {
        self.rescan_regex_if_slash()?;
        let start = self.cur.span.start;
        let op = match &self.cur.kind {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Minus),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Keyword(Kw::Typeof) => Some(UnaryOp::TypeOf),
            TokenKind::Keyword(Kw::Void) => Some(UnaryOp::Void),
            TokenKind::Keyword(Kw::Delete) => Some(UnaryOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            self.advance()?;
            let arg = self.parse_unary(in_allowed)?;
            let span = Span::new(start, arg.span().end);
            return Ok(Expr::Unary { op, arg: Box::new(arg), span });
        }
        // Prefix update.
        let upd = match &self.cur.kind {
            TokenKind::Punct(Punct::PlusPlus) => Some(UpdateOp::Increment),
            TokenKind::Punct(Punct::MinusMinus) => Some(UpdateOp::Decrement),
            _ => None,
        };
        if let Some(op) = upd {
            self.advance()?;
            let arg = self.parse_unary(in_allowed)?;
            let span = Span::new(start, arg.span().end);
            return Ok(Expr::Update { op, prefix: true, arg: Box::new(arg), span });
        }
        // `await expr` (contextual).
        if self.is_ident("await") {
            let next = self.peek()?;
            let arg_follows = !matches!(
                &next.kind,
                TokenKind::Eof
                    | TokenKind::Punct(Punct::Semi)
                    | TokenKind::Punct(Punct::RParen)
                    | TokenKind::Punct(Punct::RBrace)
                    | TokenKind::Punct(Punct::RBracket)
                    | TokenKind::Punct(Punct::Comma)
                    | TokenKind::Punct(Punct::Colon)
            ) && !matches!(&next.kind, TokenKind::Punct(p) if binary_op_of(*p).is_some() || logical_op_of(*p).is_some() || assign_op_of(*p).is_some())
                && !next.is_punct(Punct::Arrow)
                && !next.is_punct(Punct::Question)
                && !next.is_punct(Punct::Dot);
            if arg_follows {
                self.advance()?;
                let arg = self.parse_unary(in_allowed)?;
                let span = Span::new(start, arg.span().end);
                return Ok(Expr::Await { arg: Box::new(arg), span });
            }
        }
        // Postfix update binds tighter than binary ops.
        let mut e = self.parse_lhs_expr()?;
        if !self.cur.newline_before {
            let upd = match &self.cur.kind {
                TokenKind::Punct(Punct::PlusPlus) => Some(UpdateOp::Increment),
                TokenKind::Punct(Punct::MinusMinus) => Some(UpdateOp::Decrement),
                _ => None,
            };
            if let Some(op) = upd {
                let span = Span::new(e.span().start, self.cur.span.end);
                self.advance()?;
                e = Expr::Update { op, prefix: false, arg: Box::new(e), span };
            }
        }
        Ok(e)
    }

    /// Parses a left-hand-side expression: primary with call/member/new
    /// chains, template tags, and optional chaining.
    fn parse_lhs_expr(&mut self) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_lhs_inner();
        self.leave(g);
        r
    }

    fn parse_lhs_inner(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur.span.start;
        let e = if self.is_kw(Kw::New) {
            // `new.target` or `new Callee(args)`.
            if self.peek()?.is_punct(Punct::Dot) {
                let meta = Ident { name: "new".into(), span: self.cur.span };
                self.advance()?; // new
                self.advance()?; // .
                let property = match &self.cur.kind {
                    TokenKind::Ident(n) => Ident { name: *n, span: self.cur.span },
                    _ => return Err(self.unexpected("meta property")),
                };
                let span = Span::new(start, self.cur.span.end);
                self.advance()?;
                Expr::MetaProperty { meta, property, span }
            } else {
                self.advance()?; // new
                let callee = self.parse_member_only()?;
                let (args, end) = if self.is_punct(Punct::LParen) {
                    let (a, e) = self.parse_args()?;
                    (a, e)
                } else {
                    (Vec::new(), callee.span().end)
                };
                Expr::New { callee: Box::new(callee), args, span: Span::new(start, end) }
            }
        } else {
            self.parse_primary()?
        };

        let mut links = 0u32;
        let r = self.parse_lhs_chain(e, &mut links);
        self.chain_release(links);
        r
    }

    fn parse_lhs_chain(&mut self, mut e: Expr, links: &mut u32) -> Result<Expr, ParseError> {
        loop {
            match &self.cur.kind {
                TokenKind::Punct(Punct::Dot) => {
                    self.chain_link(links)?;
                    self.advance()?;
                    if let TokenKind::PrivateName(n) = &self.cur.kind {
                        let prop = Ident { name: *n, span: self.cur.span };
                        let span = Span::new(e.span().start, self.cur.span.end);
                        self.advance()?;
                        e = Expr::Member {
                            object: Box::new(e),
                            property: MemberProp::Private(prop),
                            optional: false,
                            span,
                        };
                        continue;
                    }
                    let name = match &self.cur.kind {
                        TokenKind::Ident(n) => *n,
                        TokenKind::Keyword(kw) => kw.atom(),
                        _ => return Err(self.unexpected("property name")),
                    };
                    let pspan = self.cur.span;
                    self.advance()?;
                    let span = Span::new(e.span().start, pspan.end);
                    e = Expr::Member {
                        object: Box::new(e),
                        property: MemberProp::Ident(Ident { name, span: pspan }),
                        optional: false,
                        span,
                    };
                }
                TokenKind::Punct(Punct::OptionalChain) => {
                    self.chain_link(links)?;
                    self.advance()?;
                    match &self.cur.kind {
                        TokenKind::Punct(Punct::LParen) => {
                            let (args, end) = self.parse_args()?;
                            let span = Span::new(e.span().start, end);
                            e = Expr::Call { callee: Box::new(e), args, span };
                        }
                        TokenKind::Punct(Punct::LBracket) => {
                            self.advance()?;
                            let idx = self.parse_expr(true)?;
                            let end = self.cur.span.end;
                            self.expect_punct(Punct::RBracket)?;
                            let span = Span::new(e.span().start, end);
                            e = Expr::Member {
                                object: Box::new(e),
                                property: MemberProp::Computed(Box::new(idx)),
                                optional: true,
                                span,
                            };
                        }
                        TokenKind::Ident(n) => {
                            let prop = Ident { name: *n, span: self.cur.span };
                            let span = Span::new(e.span().start, self.cur.span.end);
                            self.advance()?;
                            e = Expr::Member {
                                object: Box::new(e),
                                property: MemberProp::Ident(prop),
                                optional: true,
                                span,
                            };
                        }
                        TokenKind::Keyword(kw) => {
                            let prop = Ident { name: kw.atom(), span: self.cur.span };
                            let span = Span::new(e.span().start, self.cur.span.end);
                            self.advance()?;
                            e = Expr::Member {
                                object: Box::new(e),
                                property: MemberProp::Ident(prop),
                                optional: true,
                                span,
                            };
                        }
                        TokenKind::PrivateName(n) => {
                            let prop = Ident { name: *n, span: self.cur.span };
                            let span = Span::new(e.span().start, self.cur.span.end);
                            self.advance()?;
                            e = Expr::Member {
                                object: Box::new(e),
                                property: MemberProp::Private(prop),
                                optional: true,
                                span,
                            };
                        }
                        _ => return Err(self.unexpected("optional chain")),
                    }
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.chain_link(links)?;
                    self.advance()?;
                    let idx = self.parse_expr(true)?;
                    let end = self.cur.span.end;
                    self.expect_punct(Punct::RBracket)?;
                    let span = Span::new(e.span().start, end);
                    e = Expr::Member {
                        object: Box::new(e),
                        property: MemberProp::Computed(Box::new(idx)),
                        optional: false,
                        span,
                    };
                }
                TokenKind::Punct(Punct::LParen) => {
                    self.chain_link(links)?;
                    let (args, end) = self.parse_args()?;
                    let span = Span::new(e.span().start, end);
                    e = Expr::Call { callee: Box::new(e), args, span };
                }
                TokenKind::TemplateNoSub { .. } | TokenKind::TemplateHead { .. } => {
                    self.chain_link(links)?;
                    let (quasis, exprs, end) = self.parse_template_parts()?;
                    let span = Span::new(e.span().start, end);
                    e = Expr::TaggedTemplate { tag: Box::new(e), quasis, exprs, span };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Like [`Parser::parse_lhs_inner`] but stops before call arguments —
    /// used for `new Callee`. Depth-guarded: `new new new …` recurses here
    /// without passing through `parse_unary`.
    fn parse_member_only(&mut self) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.parse_member_only_inner();
        self.leave(g);
        r
    }

    fn parse_member_only_inner(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur.span.start;
        let e = if self.is_kw(Kw::New) {
            self.advance()?;
            let callee = self.parse_member_only()?;
            let (args, end) = if self.is_punct(Punct::LParen) {
                self.parse_args()?
            } else {
                (Vec::new(), callee.span().end)
            };
            Expr::New { callee: Box::new(callee), args, span: Span::new(start, end) }
        } else {
            self.parse_primary()?
        };
        let mut links = 0u32;
        let r = self.parse_member_only_chain(e, &mut links);
        self.chain_release(links);
        r
    }

    fn parse_member_only_chain(
        &mut self,
        mut e: Expr,
        links: &mut u32,
    ) -> Result<Expr, ParseError> {
        loop {
            match &self.cur.kind {
                TokenKind::Punct(Punct::Dot) => {
                    self.chain_link(links)?;
                    self.advance()?;
                    if let TokenKind::PrivateName(n) = &self.cur.kind {
                        let prop = Ident { name: *n, span: self.cur.span };
                        let span = Span::new(e.span().start, self.cur.span.end);
                        self.advance()?;
                        e = Expr::Member {
                            object: Box::new(e),
                            property: MemberProp::Private(prop),
                            optional: false,
                            span,
                        };
                        continue;
                    }
                    let name = match &self.cur.kind {
                        TokenKind::Ident(n) => *n,
                        TokenKind::Keyword(kw) => kw.atom(),
                        _ => return Err(self.unexpected("property name")),
                    };
                    let pspan = self.cur.span;
                    self.advance()?;
                    let span = Span::new(e.span().start, pspan.end);
                    e = Expr::Member {
                        object: Box::new(e),
                        property: MemberProp::Ident(Ident { name, span: pspan }),
                        optional: false,
                        span,
                    };
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.chain_link(links)?;
                    self.advance()?;
                    let idx = self.parse_expr(true)?;
                    let end = self.cur.span.end;
                    self.expect_punct(Punct::RBracket)?;
                    let span = Span::new(e.span().start, end);
                    e = Expr::Member {
                        object: Box::new(e),
                        property: MemberProp::Computed(Box::new(idx)),
                        optional: false,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self) -> Result<(Vec<Expr>, u32), ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        while !self.is_punct(Punct::RParen) {
            if self.is_punct(Punct::Ellipsis) {
                let start = self.cur.span.start;
                self.advance()?;
                let arg = self.parse_assignment(true)?;
                let span = Span::new(start, arg.span().end);
                args.push(Expr::Spread { arg: Box::new(arg), span });
            } else {
                args.push(self.parse_assignment(true)?);
            }
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        let end = self.cur.span.end;
        self.expect_punct(Punct::RParen)?;
        Ok((args, end))
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        self.rescan_regex_if_slash()?;
        let span = self.cur.span;
        match &self.cur.kind {
            TokenKind::Num(n) => {
                let raw = span_raw_placeholder();
                let e = Expr::Lit(Lit { value: LitValue::Num(*n), raw, span });
                self.advance()?;
                Ok(e)
            }
            TokenKind::BigInt(d) => {
                let e = Expr::Lit(Lit {
                    value: LitValue::BigInt(*d),
                    raw: span_raw_placeholder(),
                    span,
                });
                self.advance()?;
                Ok(e)
            }
            TokenKind::Str(s) => {
                let e =
                    Expr::Lit(Lit { value: LitValue::Str(*s), raw: span_raw_placeholder(), span });
                self.advance()?;
                Ok(e)
            }
            TokenKind::Regex { pattern, flags } => {
                let e = Expr::Lit(Lit {
                    value: LitValue::Regex { pattern: *pattern, flags: *flags },
                    raw: span_raw_placeholder(),
                    span,
                });
                self.advance()?;
                Ok(e)
            }
            TokenKind::Keyword(Kw::True) => {
                self.advance()?;
                Ok(Expr::Lit(Lit { value: LitValue::Bool(true), raw: Atom::empty(), span }))
            }
            TokenKind::Keyword(Kw::False) => {
                self.advance()?;
                Ok(Expr::Lit(Lit { value: LitValue::Bool(false), raw: Atom::empty(), span }))
            }
            TokenKind::Keyword(Kw::Null) => {
                self.advance()?;
                Ok(Expr::Lit(Lit { value: LitValue::Null, raw: Atom::empty(), span }))
            }
            TokenKind::Keyword(Kw::This) => {
                self.advance()?;
                Ok(Expr::This { span })
            }
            TokenKind::Keyword(Kw::Super) => {
                self.advance()?;
                Ok(Expr::Super { span })
            }
            TokenKind::Keyword(Kw::Function) => {
                let f = self.parse_function(true)?;
                Ok(Expr::Function(f))
            }
            TokenKind::Keyword(Kw::Class) => {
                let c = self.parse_class()?;
                Ok(Expr::Class(c))
            }
            TokenKind::Ident(name) => {
                let name = *name;
                if name == "async" && self.peek()?.is_kw(Kw::Function) {
                    self.advance()?; // async
                    let mut f = self.parse_function(true)?;
                    f.is_async = true;
                    return Ok(Expr::Function(f));
                }
                if name == "import" {
                    if self.peek()?.is_punct(Punct::LParen) {
                        // Dynamic import. The two-argument form
                        // `import(x, opts)` is not modeled.
                        self.advance()?; // import
                        self.expect_punct(Punct::LParen)?;
                        let arg = self.parse_assignment(true)?;
                        let end = self.cur.span.end;
                        self.expect_punct(Punct::RParen)?;
                        return Ok(Expr::ImportCall {
                            arg: Box::new(arg),
                            span: Span::new(span.start, end),
                        });
                    }
                    if self.peek()?.is_punct(Punct::Dot) {
                        // `import.meta`, mirroring `new.target`.
                        let meta = Ident { name, span };
                        self.advance()?; // import
                        self.advance()?; // .
                        let property = match &self.cur.kind {
                            TokenKind::Ident(n) => Ident { name: *n, span: self.cur.span },
                            _ => return Err(self.unexpected("meta property")),
                        };
                        let mspan = Span::new(span.start, self.cur.span.end);
                        self.advance()?;
                        return Ok(Expr::MetaProperty { meta, property, span: mspan });
                    }
                }
                let e = Expr::Ident(Ident { name, span });
                self.advance()?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LParen) => {
                self.advance()?;
                let e = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LBracket) => self.parse_array_literal(),
            TokenKind::Punct(Punct::LBrace) => self.parse_object_literal(),
            TokenKind::TemplateNoSub { .. } | TokenKind::TemplateHead { .. } => {
                let start = self.cur.span.start;
                let (quasis, exprs, end) = self.parse_template_parts()?;
                Ok(Expr::Template { quasis, exprs, span: Span::new(start, end) })
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn parse_array_literal(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur.span.start;
        self.expect_punct(Punct::LBracket)?;
        let mut elements = Vec::new();
        while !self.is_punct(Punct::RBracket) {
            if self.is_punct(Punct::Comma) {
                // Hole.
                elements.push(None);
                self.advance()?;
                continue;
            }
            if self.is_punct(Punct::Ellipsis) {
                let sstart = self.cur.span.start;
                self.advance()?;
                let arg = self.parse_assignment(true)?;
                let span = Span::new(sstart, arg.span().end);
                elements.push(Some(Expr::Spread { arg: Box::new(arg), span }));
            } else {
                elements.push(Some(self.parse_assignment(true)?));
            }
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        let end = self.cur.span.end;
        self.expect_punct(Punct::RBracket)?;
        Ok(Expr::Array { elements, span: Span::new(start, end) })
    }

    fn parse_object_literal(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur.span.start;
        self.expect_punct(Punct::LBrace)?;
        let mut props = Vec::new();
        while !self.is_punct(Punct::RBrace) {
            props.push(self.parse_object_prop()?);
            if !self.eat_punct(Punct::Comma)? {
                break;
            }
        }
        let end = self.cur.span.end;
        self.expect_punct(Punct::RBrace)?;
        Ok(Expr::Object { props, span: Span::new(start, end) })
    }

    fn parse_object_prop(&mut self) -> Result<Property, ParseError> {
        let start = self.cur.span.start;

        // Spread property `{...e}` modeled as init property with spread value.
        if self.is_punct(Punct::Ellipsis) {
            self.advance()?;
            let arg = self.parse_assignment(true)?;
            let span = Span::new(start, arg.span().end);
            return Ok(Property {
                key: PropKey::Ident(Ident::new("...")),
                value: Expr::Spread { arg: Box::new(arg), span },
                kind: PropKind::Init,
                computed: false,
                shorthand: false,
                method: false,
                span,
            });
        }

        let mut is_async = false;
        let mut is_generator = false;
        let mut kind = PropKind::Init;

        if self.is_ident("async") {
            let next = self.peek()?;
            let key_follows = matches!(
                &next.kind,
                TokenKind::Ident(_) | TokenKind::Keyword(_) | TokenKind::Str(_) | TokenKind::Num(_)
            ) || next.is_punct(Punct::LBracket)
                || next.is_punct(Punct::Star);
            if key_follows && !next.newline_before {
                is_async = true;
                self.advance()?;
            }
        }
        if self.is_punct(Punct::Star) {
            is_generator = true;
            self.advance()?;
        }
        if (self.is_ident("get") || self.is_ident("set")) && !is_async && !is_generator {
            let next = self.peek()?;
            let key_follows = matches!(
                &next.kind,
                TokenKind::Ident(_) | TokenKind::Keyword(_) | TokenKind::Str(_) | TokenKind::Num(_)
            ) || next.is_punct(Punct::LBracket);
            if key_follows {
                kind = if self.is_ident("get") { PropKind::Get } else { PropKind::Set };
                self.advance()?;
            }
        }

        let (key, computed) = self.parse_prop_key()?;

        // Method / getter / setter.
        if self.is_punct(Punct::LParen) {
            let params = self.parse_params()?;
            let (body, end) = self.parse_fn_body()?;
            let f = Function {
                id: None,
                params,
                body,
                is_generator,
                is_async,
                span: Span::new(start, end),
            };
            return Ok(Property {
                key,
                value: Expr::Function(f),
                kind,
                computed,
                shorthand: false,
                method: kind == PropKind::Init,
                span: Span::new(start, end),
            });
        }
        if kind != PropKind::Init {
            return Err(self.err_here("getter/setter requires a parameter list"));
        }

        // `key: value`.
        if self.eat_punct(Punct::Colon)? {
            let value = self.parse_assignment(true)?;
            let span = Span::new(start, value.span().end);
            return Ok(Property {
                key,
                value,
                kind: PropKind::Init,
                computed,
                shorthand: false,
                method: false,
                span,
            });
        }

        // Shorthand `{a}` or `{a = default}` (the latter only valid in
        // patterns; parsed as assignment for cover-grammar purposes).
        let name = match &key {
            PropKey::Ident(i) => *i,
            _ => return Err(self.err_here("expected `:` after property key")),
        };
        let mut value = Expr::Ident(name);
        if self.eat_punct(Punct::Eq)? {
            let default = self.parse_assignment(true)?;
            let span = Span::new(start, default.span().end);
            value = Expr::Assign {
                op: AssignOp::Assign,
                target: Box::new(Pat::Ident(name)),
                value: Box::new(default),
                span,
            };
        }
        let span = Span::new(start, value.span().end);
        Ok(Property {
            key,
            value,
            kind: PropKind::Init,
            computed: false,
            shorthand: true,
            method: false,
            span,
        })
    }

    /// Parses the quasis/expressions of a template literal starting at the
    /// current `TemplateNoSub`/`TemplateHead` token.
    fn parse_template_parts(
        &mut self,
    ) -> Result<(Vec<TemplateElement>, Vec<Expr>, u32), ParseError> {
        let mut quasis = Vec::new();
        let mut exprs = Vec::new();
        match self.cur.kind {
            TokenKind::TemplateNoSub { cooked, raw } => {
                let end = self.cur.span.end;
                quasis.push(TemplateElement { cooked, raw, tail: true, span: self.cur.span });
                self.advance()?;
                Ok((quasis, exprs, end))
            }
            TokenKind::TemplateHead { cooked, raw } => {
                quasis.push(TemplateElement { cooked, raw, tail: false, span: self.cur.span });
                self.advance()?;
                loop {
                    exprs.push(self.parse_expr(true)?);
                    // The expression ends at a `}` which must be re-lexed as
                    // a template continuation.
                    if !self.is_punct(Punct::RBrace) {
                        return Err(self.err_here("expected `}` in template literal"));
                    }
                    let tok = self.lexer.continue_template(self.cur.span.start)?;
                    self.peeked = None;
                    let tspan = tok.span;
                    match tok.kind {
                        TokenKind::TemplateMiddle { cooked, raw } => {
                            quasis.push(TemplateElement { cooked, raw, tail: false, span: tspan });
                            self.advance()?;
                        }
                        TokenKind::TemplateTail { cooked, raw } => {
                            quasis.push(TemplateElement { cooked, raw, tail: true, span: tspan });
                            self.advance()?;
                            return Ok((quasis, exprs, tspan.end));
                        }
                        _ => unreachable!(),
                    }
                }
            }
            _ => Err(self.unexpected("template literal")),
        }
    }
}

enum BinKind {
    Bin(BinaryOp),
    Log(LogicalOp),
}

fn span_raw_placeholder() -> Atom {
    Atom::empty()
}

fn binary_op_of(p: Punct) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match p {
        Punct::EqEq => EqEq,
        Punct::NotEq => NotEq,
        Punct::EqEqEq => EqEqEq,
        Punct::NotEqEq => NotEqEq,
        Punct::Lt => Lt,
        Punct::LtEq => LtEq,
        Punct::Gt => Gt,
        Punct::GtEq => GtEq,
        Punct::Shl => Shl,
        Punct::Shr => Shr,
        Punct::UShr => UShr,
        Punct::Plus => Add,
        Punct::Minus => Sub,
        Punct::Star => Mul,
        Punct::Slash => Div,
        Punct::Percent => Mod,
        Punct::StarStar => Exp,
        Punct::Pipe => BitOr,
        Punct::Caret => BitXor,
        Punct::Amp => BitAnd,
        _ => return None,
    })
}

fn logical_op_of(p: Punct) -> Option<LogicalOp> {
    Some(match p {
        Punct::AmpAmp => LogicalOp::And,
        Punct::PipePipe => LogicalOp::Or,
        Punct::QuestionQuestion => LogicalOp::NullishCoalescing,
        _ => return None,
    })
}

fn assign_op_of(p: Punct) -> Option<AssignOp> {
    use AssignOp::*;
    Some(match p {
        Punct::Eq => Assign,
        Punct::PlusEq => AddAssign,
        Punct::MinusEq => SubAssign,
        Punct::StarEq => MulAssign,
        Punct::SlashEq => DivAssign,
        Punct::PercentEq => ModAssign,
        Punct::StarStarEq => ExpAssign,
        Punct::ShlEq => ShlAssign,
        Punct::ShrEq => ShrAssign,
        Punct::UShrEq => UShrAssign,
        Punct::AmpEq => BitAndAssign,
        Punct::PipeEq => BitOrAssign,
        Punct::CaretEq => BitXorAssign,
        Punct::AmpAmpEq => AndAssign,
        Punct::PipePipeEq => OrAssign,
        Punct::QuestionQuestionEq => NullishAssign,
        _ => return None,
    })
}

impl<'s> Parser<'s> {
    // ---- patterns --------------------------------------------------------

    /// Depth-guarded: nested array/object patterns recurse here without
    /// passing through the expression-level guards.
    fn parse_binding_pat(&mut self) -> Result<Pat, ParseError> {
        let g = self.enter()?;
        let r = self.parse_binding_pat_inner();
        self.leave(g);
        r
    }

    fn parse_binding_pat_inner(&mut self) -> Result<Pat, ParseError> {
        match &self.cur.kind {
            TokenKind::Ident(name) => {
                let id = Ident { name: *name, span: self.cur.span };
                self.advance()?;
                Ok(Pat::Ident(id))
            }
            TokenKind::Keyword(Kw::Yield) => {
                // `yield` usable as binding name in sloppy non-generator code.
                let id = Ident { name: "yield".into(), span: self.cur.span };
                self.advance()?;
                Ok(Pat::Ident(id))
            }
            TokenKind::Punct(Punct::LBracket) => {
                let start = self.cur.span.start;
                self.advance()?;
                let mut elements = Vec::new();
                while !self.is_punct(Punct::RBracket) {
                    if self.eat_punct(Punct::Comma)? {
                        elements.push(None);
                        continue;
                    }
                    if self.is_punct(Punct::Ellipsis) {
                        let rstart = self.cur.span.start;
                        self.advance()?;
                        let arg = self.parse_binding_pat()?;
                        let span = Span::new(rstart, arg.span().end);
                        elements.push(Some(Pat::Rest { arg: Box::new(arg), span }));
                        break;
                    }
                    let mut p = self.parse_binding_pat()?;
                    if self.eat_punct(Punct::Eq)? {
                        let value = self.parse_assignment(true)?;
                        let span = Span::new(p.span().start, value.span().end);
                        p = Pat::Assign { target: Box::new(p), value: Box::new(value), span };
                    }
                    elements.push(Some(p));
                    if !self.eat_punct(Punct::Comma)? {
                        break;
                    }
                }
                let end = self.cur.span.end;
                self.expect_punct(Punct::RBracket)?;
                Ok(Pat::Array { elements, span: Span::new(start, end) })
            }
            TokenKind::Punct(Punct::LBrace) => {
                let start = self.cur.span.start;
                self.advance()?;
                let mut props = Vec::new();
                while !self.is_punct(Punct::RBrace) {
                    if self.is_punct(Punct::Ellipsis) {
                        let rstart = self.cur.span.start;
                        self.advance()?;
                        let arg = self.parse_binding_pat()?;
                        let span = Span::new(rstart, arg.span().end);
                        props.push(ObjectPatProp {
                            key: PropKey::Ident(Ident::new("...")),
                            value: Pat::Rest { arg: Box::new(arg), span },
                            computed: false,
                            shorthand: false,
                            span,
                        });
                        break;
                    }
                    let pstart = self.cur.span.start;
                    let (key, computed) = self.parse_prop_key()?;
                    let (value, shorthand) = if self.eat_punct(Punct::Colon)? {
                        let mut p = self.parse_binding_pat()?;
                        if self.eat_punct(Punct::Eq)? {
                            let v = self.parse_assignment(true)?;
                            let span = Span::new(p.span().start, v.span().end);
                            p = Pat::Assign { target: Box::new(p), value: Box::new(v), span };
                        }
                        (p, false)
                    } else {
                        // Shorthand: `{a}` or `{a = default}`.
                        let name = match &key {
                            PropKey::Ident(i) => *i,
                            _ => return Err(self.err_here("invalid shorthand pattern")),
                        };
                        let mut p = Pat::Ident(name);
                        if self.eat_punct(Punct::Eq)? {
                            let v = self.parse_assignment(true)?;
                            let span = Span::new(p.span().start, v.span().end);
                            p = Pat::Assign { target: Box::new(p), value: Box::new(v), span };
                        }
                        (p, true)
                    };
                    let pend = value.span().end;
                    props.push(ObjectPatProp {
                        key,
                        value,
                        computed,
                        shorthand,
                        span: Span::new(pstart, pend),
                    });
                    if !self.eat_punct(Punct::Comma)? {
                        break;
                    }
                }
                let end = self.cur.span.end;
                self.expect_punct(Punct::RBrace)?;
                Ok(Pat::Object { props, span: Span::new(start, end) })
            }
            _ => Err(self.unexpected("binding pattern")),
        }
    }
}

struct DepthGuard;

/// Reinterprets an expression as an assignment-target pattern
/// (`for (x of ...)`, `[a, b] = c`).
pub(crate) fn expr_to_pat(e: Expr) -> Result<Pat, ParseError> {
    let pos = e.span().start;
    match e {
        Expr::Ident(i) => Ok(Pat::Ident(i)),
        Expr::Member { .. } => Ok(Pat::Member(Box::new(e))),
        Expr::Array { elements, span } => {
            let mut pats = Vec::new();
            for el in elements {
                match el {
                    None => pats.push(None),
                    Some(Expr::Spread { arg, span }) => {
                        let p = expr_to_pat(*arg)?;
                        pats.push(Some(Pat::Rest { arg: Box::new(p), span }));
                    }
                    Some(e) => pats.push(Some(expr_to_pat(e)?)),
                }
            }
            Ok(Pat::Array { elements: pats, span })
        }
        Expr::Object { props, span } => {
            let mut out = Vec::new();
            for p in props {
                let value = match p.value {
                    // `{...rest}` in assignment position → object rest.
                    Expr::Spread { arg, span } => {
                        Pat::Rest { arg: Box::new(expr_to_pat(*arg)?), span }
                    }
                    v => expr_to_pat(v)?,
                };
                out.push(ObjectPatProp {
                    key: p.key,
                    value,
                    computed: p.computed,
                    shorthand: p.shorthand,
                    span: p.span,
                });
            }
            Ok(Pat::Object { props: out, span })
        }
        Expr::Assign { op: AssignOp::Assign, target, value, span } => {
            Ok(Pat::Assign { target, value, span })
        }
        _ => Err(ParseError::new("invalid assignment target", pos)),
    }
}

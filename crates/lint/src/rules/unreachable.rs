//! `unreachable-code`: statements no execution path can reach.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Flags statements the control-flow graph cannot reach from any entry
/// root, plus blocks guarded by statically false opaque predicates — the
/// two shapes dead-code injection leaves behind (paper §II-A).
pub struct UnreachableCode;

impl Rule for UnreachableCode {
    fn name(&self) -> &'static str {
        "unreachable-code"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for n in ctx.graph.control_flow.unreachable_nodes() {
            out.push(Diagnostic {
                rule: self.name(),
                span: n.span,
                severity: self.severity(),
                message: "statement is unreachable from any entry point".to_string(),
                data: vec![("kind", format!("{:?}", n.kind))],
            });
        }
        let scopes = &ctx.graph.scopes;
        for ob in &ctx.facts.opaque_branches {
            let Some(values) = ctx.facts.const_strings.get(&ob.ident) else { continue };
            if values.len() != 1 || values[0] == ob.expected {
                continue;
            }
            // The guard variable's initializer must be its only write,
            // otherwise the comparison is not statically decidable.
            let reassigned = scopes
                .bindings()
                .iter()
                .enumerate()
                .any(|(id, b)| b.name == ob.ident && scopes.rw_counts(id).1 > 1);
            if reassigned {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                span: ob.body_span,
                severity: self.severity(),
                message: format!(
                    "block guarded by statically false comparison: '{}' is always \"{}\", never \"{}\"",
                    ob.ident, values[0], ob.expected
                ),
                data: vec![
                    ("state_var", ob.ident.to_string()),
                    ("expected", ob.expected.to_string()),
                    ("actual", values[0].to_string()),
                ],
            });
        }
    }
}

//! Equivalence suite for the columnar rewrite.
//!
//! The columnar presorted-CART path (`DecisionTree::fit_dataset`,
//! `RandomForest::fit_dataset`) must produce *bit-identical* predictions
//! to the legacy row-major implementation preserved in
//! `jsdetect_ml::reference` — same splits, same thresholds, same leaf
//! probabilities — for any fixed seed. These tests pin that, plus the
//! deliberate per-tree seeding change, batch-vs-serial equality, thread
//! invariance, and serde stability.

use jsdetect_ml::reference::{RowMajorForest, RowMajorTree};
use jsdetect_ml::{
    Dataset, DatasetError, DecisionTree, ForestParams, MaxFeatures, RandomForest, SplitMode,
    TreeParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic synthetic data with heavy value ties (quantized levels)
/// to stress the tie-skipping sweep, plus a nonlinear label rule with
/// label noise.
fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..d)
            .map(|j| {
                if j % 3 == 0 {
                    // Quantized: many exact duplicates per column.
                    rng.gen_range(0..8) as f32
                } else {
                    (rng.gen_range(0..10_000) as f32) / 2_500.0 - 2.0
                }
            })
            .collect();
        let noisy = rng.gen_range(0..20) == 0;
        let label = (row[0] > 3.0) ^ (row[1] * row[1] > 1.0) ^ noisy;
        x.push(row);
        y.push(label);
    }
    (x, y)
}

#[test]
fn tree_matches_row_major_reference_exactly() {
    let (x, y) = synthetic(400, 13, 7);
    for max_features in [MaxFeatures::All, MaxFeatures::Sqrt, MaxFeatures::Fixed(4)] {
        let params = TreeParams { max_features, ..Default::default() };
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let old = RowMajorTree::fit(&x, &y, &params, &mut StdRng::seed_from_u64(seed));
            let new = DecisionTree::fit(&x, &y, &params, &mut StdRng::seed_from_u64(seed));
            assert_eq!(old.node_count(), new.node_count(), "structure differs (seed {})", seed);
            for row in &x {
                let po = old.predict_proba(row);
                let pn = new.predict_proba(row);
                assert!(
                    po == pn,
                    "prediction differs: old {} vs new {} (seed {}, {:?})",
                    po,
                    pn,
                    seed,
                    max_features
                );
            }
        }
    }
}

#[test]
fn tree_matches_reference_under_shallow_and_strict_params() {
    let (x, y) = synthetic(250, 9, 11);
    let params = TreeParams {
        max_depth: 4,
        min_samples_split: 10,
        min_samples_leaf: 5,
        max_features: MaxFeatures::Sqrt,
        split_mode: SplitMode::Exact,
    };
    let old = RowMajorTree::fit(&x, &y, &params, &mut StdRng::seed_from_u64(3));
    let new = DecisionTree::fit(&x, &y, &params, &mut StdRng::seed_from_u64(3));
    for row in &x {
        assert_eq!(old.predict_proba(row), new.predict_proba(row));
    }
}

#[test]
fn forest_matches_row_major_reference_exactly() {
    let (x, y) = synthetic(300, 10, 5);
    let params = ForestParams { n_trees: 12, seed: 99, ..Default::default() };
    // Both sides use the *current* hash-mixed per-tree seeding, so this
    // isolates the data-path rewrite (columnar + index bootstrap + flat
    // nodes) from the deliberate seeding change tested below.
    let old = RowMajorForest::fit(&x, &y, &params);
    let new = RandomForest::fit(&x, &y, &params);
    for row in &x {
        let po = old.predict_proba(row);
        let pn = new.predict_proba(row);
        assert!(po == pn, "forest prediction differs: old {} vs new {}", po, pn);
    }
}

/// Wide matrices land in the subsampled √d regime, where the exact split
/// search switches from maintained presorted arrays to per-node machinery:
/// counting sorts over shared distinct-value rank tables (forests),
/// rank-packed u32 sorts for high-cardinality columns, and packed-u64
/// sorts when no rank table exists (standalone trees). All of them must
/// still reproduce the row-major reference bit for bit.
#[test]
fn wide_matrix_per_node_paths_match_reference_exactly() {
    let (x, y) = synthetic(220, 120, 41);
    let tree_params = TreeParams::default();
    for seed in [0u64, 8, 1234] {
        let old = RowMajorTree::fit(&x, &y, &tree_params, &mut StdRng::seed_from_u64(seed));
        let new = DecisionTree::fit(&x, &y, &tree_params, &mut StdRng::seed_from_u64(seed));
        assert_eq!(old.node_count(), new.node_count(), "tree structure differs (seed {})", seed);
        for row in &x {
            assert_eq!(old.predict_proba(row), new.predict_proba(row), "seed {}", seed);
        }
    }
    let params = ForestParams { n_trees: 6, seed: 77, ..Default::default() };
    let old = RowMajorForest::fit(&x, &y, &params);
    let new = RandomForest::fit(&x, &y, &params);
    for row in &x {
        let po = old.predict_proba(row);
        let pn = new.predict_proba(row);
        assert!(po == pn, "wide forest prediction differs: old {} vs new {}", po, pn);
    }
}

#[test]
fn forest_without_bootstrap_matches_reference() {
    let (x, y) = synthetic(200, 8, 17);
    let params = ForestParams { n_trees: 6, bootstrap: false, seed: 1, ..Default::default() };
    let old = RowMajorForest::fit(&x, &y, &params);
    let new = RandomForest::fit(&x, &y, &params);
    for row in &x {
        assert_eq!(old.predict_proba(row), new.predict_proba(row));
    }
}

/// The per-tree seeding fix (hash-mix the tree index instead of
/// `(seed + i) * γ`, whose streams were one SplitMix64 step apart for
/// consecutive trees) deliberately changes fitted forests. This fixture
/// keeps the change visible: the legacy stream still runs through the
/// reference forest, and its predictions must differ from the current
/// seeding on the same data.
#[test]
fn seeding_change_is_deliberate_and_visible() {
    let (x, y) = synthetic(300, 10, 23);
    let params = ForestParams { n_trees: 8, seed: 4, ..Default::default() };
    let legacy_seed =
        |i: usize| -> u64 { params.seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) };
    let legacy = RowMajorForest::fit_with_seeds(&x, &y, &params, &legacy_seed);
    let current = RandomForest::fit(&x, &y, &params);
    // Consecutive legacy seeds really are one generator step apart.
    assert_eq!(
        legacy_seed(1),
        legacy_seed(0).wrapping_add(0x9E3779B97F4A7C15),
        "legacy scheme no longer reproduces the correlated stream this fixture documents"
    );
    let differs = x.iter().any(|row| legacy.predict_proba(row) != current.predict_proba(row));
    assert!(differs, "seeding fix changed nothing — fixture is stale");
    // And pinning the other direction: driving the reference forest with
    // the *new* seeds reproduces the current model exactly.
    let bridged = RowMajorForest::fit_with_seeds(&x, &y, &params, &|i| params.tree_seed(i));
    for row in &x {
        assert_eq!(bridged.predict_proba(row), current.predict_proba(row));
    }
}

#[test]
fn batch_prediction_matches_serial_on_random_data() {
    let (x, y) = synthetic(350, 11, 31);
    let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 10, ..Default::default() });
    let data = Dataset::from_rows(&x).unwrap();
    let batch = forest.predict_proba_batch(&data);
    assert_eq!(batch.len(), x.len());
    for (row, b) in x.iter().zip(&batch) {
        assert_eq!(*b, forest.predict_proba(row));
    }
}

#[test]
fn fit_is_invariant_to_thread_count() {
    let (x, y) = synthetic(220, 9, 13);
    let data = Dataset::from_rows(&x).unwrap();
    let params = ForestParams { n_trees: 11, seed: 8, ..Default::default() };
    let one = RandomForest::fit_dataset_threads(&data, &y, &params, 1);
    let two = RandomForest::fit_dataset_threads(&data, &y, &params, 2);
    let eight = RandomForest::fit_dataset_threads(&data, &y, &params, 8);
    let probe = Dataset::from_rows(&x).unwrap();
    let (pa, pb, pc) = (
        one.predict_proba_batch(&probe),
        two.predict_proba_batch(&probe),
        eight.predict_proba_batch(&probe),
    );
    assert_eq!(pa, pb);
    assert_eq!(pa, pc);
}

#[test]
fn serde_roundtrip_of_flattened_forest_preserves_predictions() {
    let (x, y) = synthetic(150, 7, 19);
    let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 5, ..Default::default() });
    let json = serde_json::to_string(&forest).unwrap();
    let mut back: RandomForest = serde_json::from_str(&json).unwrap();
    back.rebuild_index();
    for row in &x {
        assert_eq!(back.predict_proba(row), forest.predict_proba(row));
    }
}

#[test]
fn dataset_rejects_ragged_and_empty_input() {
    assert!(matches!(Dataset::from_rows(&[]), Err(DatasetError::Empty)));
    let ragged = vec![vec![1.0, 2.0], vec![3.0]];
    assert!(matches!(Dataset::from_rows(&ragged), Err(DatasetError::Ragged { row: 1, .. })));
}

#[test]
fn histogram_mode_stays_close_to_exact_on_separable_data() {
    let (x, y) = synthetic(300, 8, 29);
    let exact = TreeParams { max_features: MaxFeatures::All, ..Default::default() };
    let hist = TreeParams {
        max_features: MaxFeatures::All,
        split_mode: SplitMode::Histogram { bins: 64 },
        ..Default::default()
    };
    let te = DecisionTree::fit(&x, &y, &exact, &mut StdRng::seed_from_u64(1));
    let th = DecisionTree::fit(&x, &y, &hist, &mut StdRng::seed_from_u64(1));
    let agree = x
        .iter()
        .zip(&y)
        .filter(|(row, _)| (te.predict_proba(row) >= 0.5) == (th.predict_proba(row) >= 0.5))
        .count();
    assert!(agree as f64 / x.len() as f64 > 0.9, "{}/{} agree", agree, x.len());
}

//! Multi-task (multi-label) classification: binary relevance and
//! classifier chains (paper §II-C / §III-D3).
//!
//! A multi-task system with `C` classes runs `C` binary classifiers.
//! Under the *independence assumption* (binary relevance) they are fitted
//! and evaluated separately; in a *classifier chain* the classifier at
//! position `p` additionally receives the labels of positions `0..p` as
//! features (ground truth while training, thresholded predictions at
//! inference) [38], [41], [43].
//!
//! Both fitting and batch inference run over the columnar [`Dataset`];
//! chain augmentation is an O(rows) [`Dataset::push_column`] instead of a
//! push onto every row vector.

use crate::bayes::GaussianNb;
use crate::dataset::{Dataset, DatasetError};
use crate::forest::{ForestParams, RandomForest};
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which base classifier the multi-task system uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BaseParams {
    /// Random forest (the paper's selected model).
    Forest(ForestParams),
    /// Single CART tree.
    Tree(TreeParams, u64),
    /// Gaussian naive Bayes (NoFus-style baseline).
    Bayes,
}

/// A fitted base model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BaseModel {
    /// Random forest.
    Forest(RandomForest),
    /// Single tree.
    Tree(DecisionTree),
    /// Gaussian naive Bayes.
    Bayes(GaussianNb),
}

impl BaseModel {
    fn fit(params: &BaseParams, data: &Dataset, y: &[bool], label_idx: usize) -> BaseModel {
        match params {
            BaseParams::Forest(p) => {
                let mut p = p.clone();
                // Decorrelate per-label forests.
                p.seed = p.seed.wrapping_add(label_idx as u64 * 7919);
                BaseModel::Forest(RandomForest::fit_dataset(data, y, &p))
            }
            BaseParams::Tree(p, seed) => {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(label_idx as u64 * 7919));
                let idx: Vec<u32> = (0..data.n_rows() as u32).collect();
                BaseModel::Tree(DecisionTree::fit_dataset(data, &idx, y, p, &mut rng))
            }
            BaseParams::Bayes => BaseModel::Bayes(GaussianNb::fit_dataset(data, y)),
        }
    }

    fn predict_proba(&self, row: &[f32]) -> f32 {
        match self {
            BaseModel::Forest(m) => m.predict_proba(row),
            BaseModel::Tree(m) => m.predict_proba(row),
            BaseModel::Bayes(m) => m.predict_proba(row),
        }
    }

    fn predict_proba_batch(&self, data: &Dataset) -> Vec<f32> {
        match self {
            BaseModel::Forest(m) => m.predict_proba_batch(data),
            BaseModel::Tree(m) => m.predict_proba_batch(data),
            BaseModel::Bayes(m) => m.predict_proba_batch(data),
        }
    }
}

/// Multi-label strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Independent per-label classifiers.
    BinaryRelevance,
    /// Chained classifiers (label `p` sees labels `0..p`).
    ClassifierChain,
}

/// A fitted multi-task classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLabel {
    strategy: Strategy,
    models: Vec<BaseModel>,
    n_features: usize,
}

impl MultiLabel {
    /// Fits one binary classifier per label column from row-major samples
    /// (convenience wrapper that builds a columnar [`Dataset`] once).
    ///
    /// `labels[i]` is the label vector for row `i`; all rows must have the
    /// same number of labels.
    ///
    /// # Panics
    ///
    /// Panics on empty input, ragged feature rows, or ragged label rows.
    pub fn fit(
        x: &[Vec<f32>],
        labels: &[Vec<bool>],
        strategy: Strategy,
        base: &BaseParams,
    ) -> Self {
        let data = match Dataset::from_rows(x) {
            Ok(d) => d,
            Err(DatasetError::Empty) => panic!("cannot fit on an empty dataset"),
            Err(e) => panic!("invalid training matrix: {}", e),
        };
        Self::fit_dataset(&data, labels, strategy, base)
    }

    /// Fits one binary classifier per label column over a columnar dataset.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch or ragged label rows.
    pub fn fit_dataset(
        data: &Dataset,
        labels: &[Vec<bool>],
        strategy: Strategy,
        base: &BaseParams,
    ) -> Self {
        assert_eq!(data.n_rows(), labels.len(), "feature/label length mismatch");
        let n_labels = labels[0].len();
        assert!(labels.iter().all(|l| l.len() == n_labels), "ragged label rows");
        let n_features = data.n_cols();

        let mut models = Vec::with_capacity(n_labels);
        match strategy {
            Strategy::BinaryRelevance => {
                for j in 0..n_labels {
                    let y: Vec<bool> = labels.iter().map(|l| l[j]).collect();
                    models.push(BaseModel::fit(base, data, &y, j));
                }
            }
            Strategy::ClassifierChain => {
                // Augment features with the ground-truth labels of all
                // previous positions: one pushed column per position.
                let mut augmented = data.clone();
                for j in 0..n_labels {
                    let y: Vec<bool> = labels.iter().map(|l| l[j]).collect();
                    models.push(BaseModel::fit(base, &augmented, &y, j));
                    if j + 1 < n_labels {
                        let col: Vec<f32> = y.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
                        augmented.push_column(&col);
                    }
                }
            }
        }
        MultiLabel { strategy, models, n_features }
    }

    /// Per-label positive probabilities for one row.
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        match self.strategy {
            Strategy::BinaryRelevance => self.models.iter().map(|m| m.predict_proba(row)).collect(),
            Strategy::ClassifierChain => {
                let mut augmented = row.to_vec();
                let mut probs = Vec::with_capacity(self.models.len());
                for (j, m) in self.models.iter().enumerate() {
                    let p = m.predict_proba(&augmented);
                    probs.push(p);
                    if j + 1 < self.models.len() {
                        augmented.push(if p >= 0.5 { 1.0 } else { 0.0 });
                    }
                }
                probs
            }
        }
    }

    /// Per-label positive probabilities for every dataset row, using each
    /// base model's batch path. Row `i` of the result equals
    /// `predict_proba(row_i)` exactly: chained label columns are
    /// thresholded per row just like the serial path.
    ///
    /// # Panics
    ///
    /// Panics if `data.n_cols() != n_features`.
    pub fn predict_proba_batch(&self, data: &Dataset) -> Vec<Vec<f32>> {
        assert_eq!(data.n_cols(), self.n_features, "feature width mismatch");
        let n = data.n_rows();
        let mut per_label: Vec<Vec<f32>> = Vec::with_capacity(self.models.len());
        match self.strategy {
            Strategy::BinaryRelevance => {
                for m in &self.models {
                    per_label.push(m.predict_proba_batch(data));
                }
            }
            Strategy::ClassifierChain => {
                let mut augmented = data.clone();
                for (j, m) in self.models.iter().enumerate() {
                    let probs = m.predict_proba_batch(&augmented);
                    if j + 1 < self.models.len() {
                        let col: Vec<f32> =
                            probs.iter().map(|&p| if p >= 0.5 { 1.0 } else { 0.0 }).collect();
                        augmented.push_column(&col);
                    }
                    per_label.push(probs);
                }
            }
        }
        // Transpose label-major to row-major.
        (0..n).map(|r| per_label.iter().map(|col| col[r]).collect()).collect()
    }

    /// Hard label set at the 0.5 threshold.
    pub fn predict(&self, row: &[f32]) -> Vec<bool> {
        self.predict_proba(row).into_iter().map(|p| p >= 0.5).collect()
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.models.len()
    }

    /// The strategy used.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Validates every forest base model's flattened node arrays after
    /// deserialization (see [`RandomForest::rebuild_index`]).
    ///
    /// # Panics
    ///
    /// Panics if a serialized forest is corrupt.
    pub fn rebuild_index(&mut self) {
        for m in &mut self.models {
            if let BaseModel::Forest(f) = m {
                f.rebuild_index();
            }
        }
    }

    /// Feature importances of the classifier for `label` (forest base
    /// only; other bases return `None`). With classifier chains, features
    /// beyond the base width are the chained label predictions.
    pub fn feature_importances(&self, label: usize) -> Option<Vec<f64>> {
        let width = self.n_features
            + match self.strategy {
                Strategy::BinaryRelevance => 0,
                Strategy::ClassifierChain => label,
            };
        match self.models.get(label)? {
            BaseModel::Forest(f) => Some(f.feature_importances(width)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three correlated labels over 2-D points:
    /// l0: x>0.5, l1: y>0.5, l2: l0 AND l1 (correlated with both).
    fn dataset(n: usize) -> (Vec<Vec<f32>>, Vec<Vec<bool>>) {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f32 / 16.0;
            let b = (i % 13) as f32 / 12.0;
            x.push(vec![a, b]);
            labels.push(vec![a > 0.5, b > 0.5, a > 0.5 && b > 0.5]);
        }
        (x, labels)
    }

    fn forest_base() -> BaseParams {
        BaseParams::Forest(ForestParams { n_trees: 8, ..Default::default() })
    }

    #[test]
    fn binary_relevance_learns_labels() {
        let (x, labels) = dataset(300);
        let ml = MultiLabel::fit(&x, &labels, Strategy::BinaryRelevance, &forest_base());
        let mut correct = 0;
        for (xi, li) in x.iter().zip(&labels) {
            if ml.predict(xi) == *li {
                correct += 1;
            }
        }
        assert!(correct as f64 / x.len() as f64 > 0.9, "{}/{}", correct, x.len());
    }

    #[test]
    fn chain_learns_labels() {
        let (x, labels) = dataset(300);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let mut correct = 0;
        for (xi, li) in x.iter().zip(&labels) {
            if ml.predict(xi) == *li {
                correct += 1;
            }
        }
        assert!(correct as f64 / x.len() as f64 > 0.9, "{}/{}", correct, x.len());
    }

    #[test]
    fn proba_len_matches_labels() {
        let (x, labels) = dataset(60);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        assert_eq!(ml.n_labels(), 3);
        assert_eq!(ml.predict_proba(&x[0]).len(), 3);
    }

    #[test]
    fn bayes_base_works() {
        let (x, labels) = dataset(200);
        let ml = MultiLabel::fit(&x, &labels, Strategy::BinaryRelevance, &BaseParams::Bayes);
        let p = ml.predict_proba(&[0.9, 0.9]);
        assert!(p[0] > 0.5 && p[1] > 0.5);
    }

    #[test]
    fn tree_base_works() {
        let (x, labels) = dataset(200);
        let ml = MultiLabel::fit(
            &x,
            &labels,
            Strategy::ClassifierChain,
            &BaseParams::Tree(TreeParams::default(), 3),
        );
        let p = ml.predict(&[0.9, 0.1]);
        assert_eq!(p, vec![true, false, false]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (x, labels) = dataset(40);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let _ = ml.predict_proba(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let (x, labels) = dataset(60);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let mut back: MultiLabel =
            serde_json::from_str(&serde_json::to_string(&ml).unwrap()).unwrap();
        back.rebuild_index();
        assert_eq!(back.predict_proba(&x[3]), ml.predict_proba(&x[3]));
    }

    #[test]
    fn deterministic() {
        let (x, labels) = dataset(100);
        let a = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let b = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        assert_eq!(a.predict_proba(&x[7]), b.predict_proba(&x[7]));
    }

    #[test]
    fn batch_matches_serial_for_every_base_and_strategy() {
        let (x, labels) = dataset(80);
        let data = Dataset::from_rows(&x).unwrap();
        let bases = [forest_base(), BaseParams::Tree(TreeParams::default(), 3), BaseParams::Bayes];
        for base in &bases {
            for strategy in [Strategy::BinaryRelevance, Strategy::ClassifierChain] {
                let ml = MultiLabel::fit(&x, &labels, strategy, base);
                let batch = ml.predict_proba_batch(&data);
                for (row, b) in x.iter().zip(&batch) {
                    assert_eq!(*b, ml.predict_proba(row), "strategy {:?}", strategy);
                }
            }
        }
    }
}

//! Convenience constructors for synthesized AST nodes.
//!
//! The transformation passes and the corpus generator build large amounts
//! of AST by hand; these helpers keep that code readable. All nodes carry
//! [`Span::DUMMY`].

use crate::atom::Atom;
use crate::nodes::*;
use crate::ops::*;
use crate::span::Span;

/// An identifier expression.
pub fn ident(name: impl Into<Atom>) -> Expr {
    Expr::Ident(Ident::new(name))
}

/// A string literal expression.
pub fn str_lit(s: impl Into<Atom>) -> Expr {
    Expr::Lit(Lit::str(s))
}

/// A numeric literal expression.
pub fn num_lit(n: f64) -> Expr {
    Expr::Lit(Lit::num(n))
}

/// A boolean literal expression.
pub fn bool_lit(b: bool) -> Expr {
    Expr::Lit(Lit::bool(b))
}

/// The `null` literal.
pub fn null_lit() -> Expr {
    Expr::Lit(Lit::null())
}

/// An array literal.
pub fn array(elements: Vec<Expr>) -> Expr {
    Expr::Array { elements: elements.into_iter().map(Some).collect(), span: Span::DUMMY }
}

/// A call expression.
pub fn call(callee: Expr, args: Vec<Expr>) -> Expr {
    Expr::Call { callee: Box::new(callee), args, span: Span::DUMMY }
}

/// A `new` expression.
pub fn new_expr(callee: Expr, args: Vec<Expr>) -> Expr {
    Expr::New { callee: Box::new(callee), args, span: Span::DUMMY }
}

/// Dot-notation member access: `object.name`.
pub fn member(object: Expr, name: impl Into<Atom>) -> Expr {
    Expr::Member {
        object: Box::new(object),
        property: MemberProp::Ident(Ident::new(name)),
        optional: false,
        span: Span::DUMMY,
    }
}

/// Bracket-notation member access: `object[index]`.
pub fn index(object: Expr, idx: Expr) -> Expr {
    Expr::Member {
        object: Box::new(object),
        property: MemberProp::Computed(Box::new(idx)),
        optional: false,
        span: Span::DUMMY,
    }
}

/// A method call: `object.name(args)`.
pub fn method_call(object: Expr, name: impl Into<Atom>, args: Vec<Expr>) -> Expr {
    call(member(object, name), args)
}

/// A binary expression.
pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
    Expr::Binary { op, left: Box::new(left), right: Box::new(right), span: Span::DUMMY }
}

/// A logical expression.
pub fn logical(op: LogicalOp, left: Expr, right: Expr) -> Expr {
    Expr::Logical { op, left: Box::new(left), right: Box::new(right), span: Span::DUMMY }
}

/// A unary expression.
pub fn unary(op: UnaryOp, arg: Expr) -> Expr {
    Expr::Unary { op, arg: Box::new(arg), span: Span::DUMMY }
}

/// A conditional (ternary) expression.
pub fn conditional(test: Expr, consequent: Expr, alternate: Expr) -> Expr {
    Expr::Conditional {
        test: Box::new(test),
        consequent: Box::new(consequent),
        alternate: Box::new(alternate),
        span: Span::DUMMY,
    }
}

/// A plain assignment: `target = value` (as an expression).
pub fn assign(target: Pat, value: Expr) -> Expr {
    Expr::Assign {
        op: AssignOp::Assign,
        target: Box::new(target),
        value: Box::new(value),
        span: Span::DUMMY,
    }
}

/// Assignment to an identifier: `name = value`.
pub fn assign_ident(name: impl Into<Atom>, value: Expr) -> Expr {
    assign(Pat::Ident(Ident::new(name)), value)
}

/// An expression statement.
pub fn expr_stmt(expr: Expr) -> Stmt {
    Stmt::Expr { expr, span: Span::DUMMY }
}

/// A block statement.
pub fn block(body: Vec<Stmt>) -> Stmt {
    Stmt::Block { body, span: Span::DUMMY }
}

/// A `return` statement.
pub fn ret(arg: Option<Expr>) -> Stmt {
    Stmt::Return { arg, span: Span::DUMMY }
}

/// A variable declaration with a single declarator.
pub fn var_decl(kind: VarKind, name: impl Into<Atom>, init: Option<Expr>) -> Stmt {
    Stmt::VarDecl {
        kind,
        decls: vec![VarDeclarator { id: Pat::Ident(Ident::new(name)), init, span: Span::DUMMY }],
        span: Span::DUMMY,
    }
}

/// An `if` statement.
pub fn if_stmt(test: Expr, consequent: Stmt, alternate: Option<Stmt>) -> Stmt {
    Stmt::If {
        test,
        consequent: Box::new(consequent),
        alternate: alternate.map(Box::new),
        span: Span::DUMMY,
    }
}

/// A `while` statement.
pub fn while_stmt(test: Expr, body: Stmt) -> Stmt {
    Stmt::While { test, body: Box::new(body), span: Span::DUMMY }
}

/// A function declaration.
pub fn fn_decl(name: impl Into<Atom>, params: Vec<&str>, body: Vec<Stmt>) -> Stmt {
    Stmt::FunctionDecl(function(Some(name.into()), params, body))
}

/// A function expression.
pub fn fn_expr(params: Vec<&str>, body: Vec<Stmt>) -> Expr {
    Expr::Function(function(None, params, body))
}

/// Builds a [`Function`] payload with identifier parameters.
pub fn function(name: Option<Atom>, params: Vec<&str>, body: Vec<Stmt>) -> Function {
    Function {
        id: name.map(Ident::new),
        params: params.into_iter().map(|p| Pat::Ident(Ident::new(p))).collect(),
        body,
        is_generator: false,
        is_async: false,
        span: Span::DUMMY,
    }
}

/// A program from a list of statements.
pub fn program(body: Vec<Stmt>) -> Program {
    Program { body, span: Span::DUMMY }
}

/// `String.fromCharCode(args)` — frequent in string obfuscation.
pub fn from_char_code(args: Vec<Expr>) -> Expr {
    method_call(ident("String"), "fromCharCode", args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NodeKind;
    use crate::visit::kind_stream;

    #[test]
    fn builds_plausible_member_chain() {
        let e = method_call(ident("console"), "log", vec![str_lit("hi")]);
        match &e {
            Expr::Call { callee, args, .. } => {
                assert!(matches!(**callee, Expr::Member { .. }));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn var_decl_shape() {
        let s = var_decl(VarKind::Const, "x", Some(num_lit(1.0)));
        match &s {
            Stmt::VarDecl { kind, decls, .. } => {
                assert_eq!(*kind, VarKind::Const);
                assert_eq!(decls.len(), 1);
                assert!(decls[0].init.is_some());
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn program_kind_stream_starts_with_program() {
        let p = program(vec![expr_stmt(call(ident("f"), vec![]))]);
        let ks = kind_stream(&p);
        assert_eq!(ks[0], NodeKind::Program);
        assert!(ks.contains(&NodeKind::CallExpression));
    }

    #[test]
    fn index_uses_bracket_notation() {
        let e = index(ident("arr"), num_lit(0.0));
        match e {
            Expr::Member { property: MemberProp::Computed(_), .. } => {}
            other => panic!("expected computed member, got {:?}", other),
        }
    }
}

//! Figure 6 — proportion of transformed scripts over 65 months
//! (2015-05 .. 2020-09) for Alexa Top 2k and npm Top 2k.
//!
//! Paper targets: a steady rise for Alexa; three npm phases (noisy ~7.4%,
//! stable ~17.95%, then ~15.17%).

use jsdetect_corpus::{alexa_population, npm_population};
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct MonthPoint {
    month: usize,
    alexa_pct: f64,
    npm_pct: f64,
    alexa_truth_pct: f64,
    npm_truth_pct: f64,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let sites = args.scaled(12);
    let packages = args.scaled(16);
    let stride = 4usize;
    let mut points = Vec::new();

    for month in (0..jsdetect_corpus::N_MONTHS).step_by(stride) {
        let alexa = alexa_population(month, sites, 0, args.seed ^ (month as u64));
        // Top-2k packages: sample both rank halves.
        let mut npm = npm_population(month, packages / 2, 0, args.seed ^ (month as u64) ^ 0x99);
        npm.extend(npm_population(month, packages / 2, 1000, args.seed ^ (month as u64) ^ 0x9a));
        let rate = |pop: &[jsdetect_corpus::WildScript]| -> (f64, f64) {
            let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
            let l1 = detectors.level1.predict_many(&srcs);
            let mut tr = 0usize;
            let mut n = 0usize;
            for p in l1.iter().flatten() {
                n += 1;
                if p.is_transformed() {
                    tr += 1;
                }
            }
            let truth = pop.iter().filter(|s| s.is_transformed()).count() as f64 / pop.len() as f64;
            (100.0 * tr as f64 / n.max(1) as f64, 100.0 * truth)
        };
        let (a, at) = rate(&alexa);
        let (n, nt) = rate(&npm);
        eprintln!("[fig6] month {:>2}: alexa {:.1}% npm {:.1}%", month, a, n);
        points.push(MonthPoint {
            month,
            alexa_pct: a,
            npm_pct: n,
            alexa_truth_pct: at,
            npm_truth_pct: nt,
        });
    }

    println!("Figure 6 — transformed-script proportion over time");
    println!("{:-<66}", "");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "month", "alexa", "npm", "alexa-truth", "npm-truth"
    );
    for p in &points {
        println!(
            "{:>6} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            p.month, p.alexa_pct, p.npm_pct, p.alexa_truth_pct, p.npm_truth_pct
        );
    }

    // Shape checks against the paper.
    let first_third: f64 = points.iter().take(points.len() / 3).map(|p| p.alexa_pct).sum::<f64>()
        / (points.len() / 3).max(1) as f64;
    let last_third: f64 =
        points.iter().skip(2 * points.len() / 3).map(|p| p.alexa_pct).sum::<f64>()
            / (points.len() - 2 * points.len() / 3).max(1) as f64;
    println!("\nAlexa rises from ~{:.1}% to ~{:.1}% (paper: steady rise)", first_third, last_third);
    let npm_early: f64 = points.iter().filter(|p| p.month < 12).map(|p| p.npm_pct).sum::<f64>()
        / points.iter().filter(|p| p.month < 12).count().max(1) as f64;
    let npm_mid: f64 =
        points.iter().filter(|p| (12..49).contains(&p.month)).map(|p| p.npm_pct).sum::<f64>()
            / points.iter().filter(|p| (12..49).contains(&p.month)).count().max(1) as f64;
    println!(
        "npm phases: early ~{:.1}% (paper 7.4%), middle ~{:.1}% (paper 17.95%)",
        npm_early, npm_mid
    );
    or_exit(write_json(&args, "fig6_longitudinal", &points));
}

//! Deterministic pathological-input generator (the chaos corpus).
//!
//! Every case is a reproducible adversarial script drawn from the failure
//! modes wild-scale scanning actually meets (ISSUE 4 / paper §IV): nesting
//! bombs that recurse parsers off the stack, megabyte one-liners, token
//! floods, truncated escapes, null bytes, JSFuck- and packer-shaped soup.
//! The hardened pipeline must survive the whole set, classifying each file
//! as ok / degraded / rejected — never crashing the process.
//!
//! The generator is pure (no RNG, no clock): the same case list and bytes
//! on every run, so CI failures bisect cleanly.

/// One pathological input with a stable name.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Stable case name, usable as a file stem.
    pub name: &'static str,
    /// The script bytes (valid UTF-8; encoding attacks live inside string
    /// escapes so the cases stay writable as `.js` files).
    pub src: String,
}

/// Builds the full chaos corpus, in a fixed order.
///
/// Includes at minimum a 50k-deep `((((…))))` nesting bomb and a one-liner
/// over 8 MB, per the ISSUE-4 acceptance criteria.
///
/// # Examples
///
/// ```
/// let corpus = jsdetect_corpus::chaos_corpus();
/// assert!(corpus.len() >= 25);
/// assert!(corpus.iter().any(|c| c.src.len() >= 8 * 1024 * 1024));
/// ```
pub fn chaos_corpus() -> Vec<ChaosCase> {
    let mut cases = Vec::new();
    let mut case = |name: &'static str, src: String| cases.push(ChaosCase { name, src });

    // --- nesting bombs: every recursive parser path -----------------------
    case("paren_bomb_50k", format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000)));
    case("bracket_bomb", format!("x = {}1{};", "[".repeat(40_000), "]".repeat(40_000)));
    case("brace_object_bomb", format!("x = {}1{};", "{a:".repeat(40_000), "}".repeat(40_000)));
    case("unary_bomb", format!("x = {}1;", "!".repeat(60_000)));
    case("ternary_bomb", {
        let mut s = String::from("x = ");
        for _ in 0..30_000 {
            s.push_str("a ? ");
        }
        s.push('1');
        for _ in 0..30_000 {
            s.push_str(" : 0");
        }
        s.push(';');
        s
    });
    case("new_bomb", format!("{}a;", "new ".repeat(50_000)));
    case("binding_pattern_bomb", format!("var {}a{} = x;", "[".repeat(40_000), "]".repeat(40_000)));
    case("arrow_bomb", format!("{}1{};", "() => (".repeat(20_000), ")".repeat(20_000)));
    case("binary_chain", {
        let mut s = String::from("x = 1");
        for _ in 0..200_000 {
            s.push_str("+1");
        }
        s.push(';');
        s
    });
    case("call_chain", format!("f{};", "()".repeat(100_000)));
    case("member_chain", format!("a{};", ".b".repeat(100_000)));

    // --- size and token floods -------------------------------------------
    // ≥ 8 MB single line, but only a handful of tokens: must pass `wild()`
    // limits (giant minified bundles are legitimate inputs).
    case("eight_mb_one_liner", format!("var s = \"{}\";", "A".repeat(9 * 1024 * 1024)));
    // Over the 10 MB wild() input cap: rejected before any work.
    case("twelve_mb_input", format!("var s = \"{}\";", "B".repeat(12 * 1024 * 1024)));
    // More than wild()'s 2M-token budget on one line.
    case("token_flood", "a;".repeat(1_100_000));
    case("comment_flood", format!("{}var x = 1;", "/* c */ ".repeat(120_000)));
    case("array_of_numbers_flood", {
        let mut s = String::from("var a = [");
        for i in 0..300_000u32 {
            s.push_str(&format!("{},", i % 10));
        }
        s.push_str("];");
        s
    });

    // --- malformed / hostile encodings -----------------------------------
    case("null_bytes_in_string", "var x = 'a\\u0000b'; var y = \"\u{0}\";".to_string());
    case("truncated_unicode_escape", "var x = '\\u12".to_string());
    case("lone_surrogate_escape", "var x = '\\uD800';".to_string());
    case("unterminated_string", "var x = 'never closed".to_string());
    case("unterminated_template", format!("var t = `abc${{x}}{}", "y".repeat(1_000)));
    case("unterminated_block_comment", format!("/* {}", "comment ".repeat(10_000)));
    case("unterminated_regex", "var r = /[a-".to_string());
    case("bom_and_unicode_separators", "\u{FEFF}var x\u{2028}= 1;\u{2029}f(x);".to_string());
    case("bare_garbage", "### @@@ %%% ~~~ ⊕⊕⊕".to_string());

    // --- obfuscation-shaped soup -----------------------------------------
    case("jsfuck_soup", {
        let unit = "[][(![]+[])[+[]]+(![]+[])[!+[]+!+[]]]";
        format!("x = {};", vec![unit; 2_000].join("+"))
    });
    case("packer_like_eval", {
        let payload = "x9k2".repeat(30_000);
        format!(
            "eval(function(p,a,c,k,e,d){{while(c--)if(k[c])p=p.replace(new RegExp(c,'g'),k[c]);\
             return p}}('{}',62,4,'a|b|c|d'.split('|'),0,{{}}))",
            payload
        )
    });
    case("deep_but_legal_nesting", {
        // Nesting well inside the depth cap — the guard counts parser
        // recursion frames, several per syntactic level, so this sits
        // around 120 of the 150 budgeted frames. Must stay `ok`, pinning
        // the guard against over-tightening.
        let depth = 18;
        format!("x = {}1{};", "(".repeat(depth), ")".repeat(depth))
    });
    case("string_concat_obfuscation", {
        let parts: Vec<String> = (0..20_000).map(|i| format!("\"s{}\"", i % 100)).collect();
        format!("var s = {};", parts.join("+"))
    });
    case("hex_identifier_soup", {
        let mut s = String::new();
        for i in 0..20_000u32 {
            s.push_str(&format!("var _0x{:x} = _0x{:x};", i + 1, i));
        }
        s
    });
    case("nested_templates", {
        let depth = 120;
        let mut s = String::from("x = ");
        for _ in 0..depth {
            s.push_str("`${");
        }
        s.push('1');
        for _ in 0..depth {
            s.push_str("}`");
        }
        s.push(';');
        s
    });

    // --- module-flavored chaos -------------------------------------------
    // Import clause with tens of thousands of named specifiers: legal,
    // flat (no recursion), must survive within resource budgets.
    case("import_specifier_flood", {
        let mut s = String::from("import { ");
        for i in 0..30_000u32 {
            s.push_str(&format!("n{} as a{}, ", i, i));
        }
        s.push_str("last } from 'm';\nconsole.log(last);");
        s
    });
    // A bundler-shaped wall of re-exports: one `export *` per line.
    case("export_star_chain", {
        let mut s = String::new();
        for i in 0..40_000u32 {
            s.push_str(&format!("export * from 'mod{}';\n", i));
        }
        s
    });
    // Class body flooded with private fields and methods — stresses the
    // `#name` lexing path and class-body parsing, flat again.
    case("private_member_flood", {
        let mut s = String::from("class C {\n");
        for i in 0..25_000u32 {
            s.push_str(&format!("  #f{} = {};\n  m{}() {{ return this.#f{}; }}\n", i, i, i, i));
        }
        s.push_str("}\nnew C();");
        s
    });
    // Dynamic import call chain: import(...) nested in its own argument.
    case("dynamic_import_bomb", {
        let depth = 20_000;
        format!("x = {}'m'{};", "import(".repeat(depth), ")".repeat(depth))
    });
    // Hostile module soup: truncated import clause at EOF.
    case("truncated_import_clause", "import { a, b, c".to_string());

    // --- degenerate small inputs -----------------------------------------
    case("empty_file", String::new());
    case("whitespace_only", " \t\n\r  \u{00A0}\u{2003} ".to_string());
    case("single_null_like", "null".to_string());

    cases
}

/// Writes every chaos case to `dir` as `<name>.js`, creating the directory
/// if needed. Returns the written paths. IO failures propagate with the
/// offending path in the message (no panics on unwritable targets).
pub fn write_chaos_corpus(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Error;
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::other(format!("cannot create {}: {}", dir.display(), e)))?;
    let mut paths = Vec::new();
    for case in chaos_corpus() {
        let path = dir.join(format!("{}.js", case.name));
        std::fs::write(&path, &case.src)
            .map_err(|e| Error::other(format!("cannot write {}: {}", path.display(), e)))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_meets_acceptance_floor() {
        let corpus = chaos_corpus();
        assert!(corpus.len() >= 25, "need ≥25 cases, have {}", corpus.len());
        // The two named acceptance inputs.
        let bomb = corpus.iter().find(|c| c.name == "paren_bomb_50k").unwrap();
        assert!(bomb.src.starts_with(&"(".repeat(50_000)));
        let big = corpus.iter().find(|c| c.name == "eight_mb_one_liner").unwrap();
        assert!(big.src.len() >= 8 * 1024 * 1024);
        assert!(!big.src.contains('\n'), "the big case must be one line");
    }

    #[test]
    fn corpus_is_deterministic_and_names_unique() {
        let a = chaos_corpus();
        let b = chaos_corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.src, y.src);
        }
        let mut names: Vec<_> = a.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "duplicate case names");
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("jsdetect-chaos-{}", std::process::id()));
        let paths = write_chaos_corpus(&dir).expect("write chaos corpus");
        assert_eq!(paths.len(), chaos_corpus().len());
        for p in &paths {
            assert!(p.exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! ECMA-262 spec-conformance harness.
//!
//! The table below keys fixture groups to spec sections (§13 Expressions,
//! §14 Statements, §15 Functions & Classes, §16 Scripts & Modules),
//! seeded from the pmatos/jsse phase-04 parser checklist. Every section
//! is either **supported** — each fixture must parse, print, and reparse
//! with an identical pre-order node-kind stream, and printing must reach
//! a fixed point in both readable and minified modes — or explicitly
//! **unsupported**, in which case a probe source must *fail* to parse.
//!
//! The unsupported markers are load-bearing: if the parser gains support
//! for a construct, its probe starts parsing and the marker fails,
//! forcing this table (and the README syntax matrix) to be updated in the
//! same change. Silent partial support is the failure mode this harness
//! exists to prevent.

use jsdetect_suite::ast::kind_stream;
use jsdetect_suite::codegen::{to_minified, to_source};
use jsdetect_suite::parser::parse;

/// What the harness expects of one spec section.
enum Expect {
    /// Every fixture round-trips: parse → print → reparse with identical
    /// kind streams, and printing is a fixed point (both modes).
    Supported(&'static [&'static str]),
    /// Explicitly out of scope: the probe must fail to parse.
    Unsupported { probe: &'static str, reason: &'static str },
}

struct Section {
    /// ECMA-262 section (phase-04 checklist numbering).
    spec: &'static str,
    title: &'static str,
    expect: Expect,
}

use Expect::{Supported, Unsupported};

const SECTIONS: &[Section] = &[
    // ---- §13.2 Primary Expressions ---------------------------------------
    Section {
        spec: "13.2.1",
        title: "this",
        expect: Supported(&["this.x = this;"]),
    },
    Section {
        spec: "13.2.2",
        title: "IdentifierReference",
        expect: Supported(&["foo; $bar; _baz; \\u0061bc;"]),
    },
    Section {
        spec: "13.2.3",
        title: "Literal (null, boolean, numeric, string)",
        expect: Supported(&[
            "var a = null, b = true, c = false;",
            "var n = [0, 1.5, .5, 5., 1e3, 0.25e-2, 0x1F, 0o17, 0b1010, 1_000_000];",
            "var s = ['', 'a\\nb', \"q\", '\\x41\\u0041\\u{1F600}'];",
        ]),
    },
    Section {
        spec: "13.2.3-bigint",
        title: "BigInt literal",
        expect: Supported(&[
            "var z = 0n;",
            "var h = 0x1fn + 0xFFn;",
            "var d = 123n; var b = 0b101n; var o = 0o17n;",
            "var k = { 42n: 'answer' }[42n];",
        ]),
    },
    Section {
        spec: "13.2.4",
        title: "ArrayLiteral (elision, spread)",
        expect: Supported(&["var a = [1, , 3, ...rest, [nested, []]];"]),
    },
    Section {
        spec: "13.2.5",
        title: "ObjectLiteral (shorthand, computed, methods, spread)",
        expect: Supported(&[
            "var o = { a: 1, b, [k]: 2, 'str': 3, 4: 5, m() { return 1; }, ...spread };",
            "var p = { get x() { return 1; }, set x(v) {} };",
        ]),
    },
    Section {
        spec: "13.2.6",
        title: "FunctionExpression / AsyncFunctionExpression / generator",
        expect: Supported(&[
            "var f = function named() { return 1; };",
            "var g = function* gen() { yield 1; yield* inner(); };",
            "var h = async function () { return await p; };",
        ]),
    },
    Section {
        spec: "13.2.7",
        title: "ClassExpression",
        expect: Supported(&["var C = class Sub extends Base { m() { return super.m(); } };"]),
    },
    Section {
        spec: "13.2.8",
        title: "RegularExpressionLiteral",
        expect: Supported(&["var r = /a[/]b\\/c/gi; if (x) /re(?:x)*/.test(s);"]),
    },
    Section {
        spec: "13.2.9",
        title: "TemplateLiteral",
        expect: Supported(&["var t = `a${1 + `inner${x}tail`}b${`${y}`}c`;"]),
    },
    Section {
        spec: "13.2.10",
        title: "CoverParenthesizedExpressionAndArrowParameterList",
        expect: Supported(&["var v = (1, 2); var w = (x) => x; var u = (a, b) => a + b;"]),
    },
    // ---- §13.3 Left-Hand Side Expressions --------------------------------
    Section {
        spec: "13.3.2",
        title: "MemberExpression (dot, bracket, super property)",
        expect: Supported(&[
            "a.b.c['d'][0].e;",
            "class C extends B { m() { return super.x + super['y']; } }",
        ]),
    },
    Section {
        spec: "13.3.3",
        title: "Meta properties (new.target, import.meta)",
        expect: Supported(&[
            "function f() { return new.target; }",
            "const u = import.meta.url; log(import.meta);",
        ]),
    },
    Section {
        spec: "13.3.4",
        title: "new expression",
        expect: Supported(&["new C; new C(); new a.b.C(1, 2); new new F()();"]),
    },
    Section {
        spec: "13.3.5",
        title: "CallExpression (call, super())",
        expect: Supported(&[
            "f(); f(1, ...rest); a.b(c)(d);",
            "class C extends B { constructor() { super(1); } }",
        ]),
    },
    Section {
        spec: "13.3.6",
        title: "Tagged templates",
        expect: Supported(&["tag`a${x}b`; a.b`raw`;"]),
    },
    Section {
        spec: "13.3.7",
        title: "OptionalExpression (?.)",
        expect: Supported(&["a?.b; a?.[k]; a?.(1); a?.b.c?.['d']; obj?.#p;"]),
    },
    Section {
        spec: "13.3.10",
        title: "ImportCall (dynamic import())",
        expect: Supported(&[
            "const m = import('./mod.js');",
            "import(base + name).then(use);",
            "async function load() { return await import(spec); }",
        ]),
    },
    Section {
        spec: "13.3.10-options",
        title: "import() second argument (import attributes)",
        expect: Unsupported {
            probe: "import('./m.js', { with: { type: 'json' } });",
            reason: "two-argument dynamic import is not modeled in the AST",
        },
    },
    // ---- §13.4–§13.5 Update & Unary --------------------------------------
    Section {
        spec: "13.4",
        title: "Update expressions",
        expect: Supported(&["i++; i--; ++i; --i; a[i]++;"]),
    },
    Section {
        spec: "13.5",
        title: "Unary expressions (delete, void, typeof, +, -, ~, !, await)",
        expect: Supported(&[
            "delete a.b; void 0; typeof x; +n; -n; ~n; !b;",
            "async function f() { return await g(); }",
        ]),
    },
    // ---- §13.6–§13.12 Binary operators -----------------------------------
    Section {
        spec: "13.6",
        title: "Exponentiation",
        expect: Supported(&["var p = 2 ** 10 ** 2;"]),
    },
    Section {
        spec: "13.7",
        title: "Multiplicative",
        expect: Supported(&["var m = a * b / c % d;"]),
    },
    Section {
        spec: "13.8",
        title: "Additive",
        expect: Supported(&["var s = a + b - c + 'str';"]),
    },
    Section {
        spec: "13.9",
        title: "Shift",
        expect: Supported(&["var sh = a << 2 >> 1 >>> 3;"]),
    },
    Section {
        spec: "13.10",
        title: "Relational (<, >, <=, >=, instanceof, in)",
        expect: Supported(&["a < b; a > b; a <= b; a >= b; a instanceof C; k in o;"]),
    },
    Section {
        spec: "13.10-brand",
        title: "Private brand check (#x in obj)",
        expect: Unsupported {
            probe: "class C { #x; static has(o) { return #x in o; } }",
            reason: "a private name is only parsed as a member key, not a relational operand",
        },
    },
    Section {
        spec: "13.11",
        title: "Equality",
        expect: Supported(&["a == b; a != b; a === b; a !== b;"]),
    },
    Section {
        spec: "13.12",
        title: "Bitwise AND/XOR/OR",
        expect: Supported(&["var bits = a & b ^ c | d;"]),
    },
    // ---- §13.13–§13.16 Logical, conditional, assignment, comma -----------
    Section {
        spec: "13.13",
        title: "Logical (&&, ||, ??)",
        expect: Supported(&["a && b || c; x ?? y ?? z;"]),
    },
    Section {
        spec: "13.14",
        title: "Conditional",
        expect: Supported(&["var c = p ? q : r ? s : t;"]),
    },
    Section {
        spec: "13.15",
        title: "Assignment (simple, compound, destructuring)",
        expect: Supported(&[
            "x = 1; x += 2; x -= 3; x *= 4; x /= 5; x %= 6; x **= 2;",
            "x <<= 1; x >>= 1; x >>>= 1; x &= 1; x ^= 1; x |= 1;",
            "x &&= a; x ||= b; x ??= c;",
            "[a, b = 1, ...rest] = arr; ({ p, q: { r }, ...others } = obj);",
        ]),
    },
    Section {
        spec: "13.16",
        title: "Comma operator",
        expect: Supported(&["var seq = (a, b, c);"]),
    },
    // ---- §14 Statements & Declarations -----------------------------------
    Section {
        spec: "14.2",
        title: "Block",
        expect: Supported(&["{ var x = 1; { x; } }"]),
    },
    Section {
        spec: "14.3",
        title: "let / const / var declarations (incl. destructuring)",
        expect: Supported(&[
            "var a = 1; let b = 2; const c = 3;",
            "let [x, y = 2] = pair; const { k, v } = entry;",
        ]),
    },
    Section {
        spec: "14.4",
        title: "Empty statement",
        expect: Supported(&[";;;"]),
    },
    Section {
        spec: "14.5",
        title: "Expression statement",
        expect: Supported(&["f(); x + 1;"]),
    },
    Section {
        spec: "14.6",
        title: "if",
        expect: Supported(&["if (a) b(); else if (c) d(); else e();"]),
    },
    Section {
        spec: "14.7",
        title: "Iteration (do, while, for, for-in, for-of, for-await-of)",
        expect: Supported(&[
            "do { f(); } while (cond);",
            "while (cond) f();",
            "for (var i = 0; i < 10; i++) f(i);",
            "for (;;) break;",
            "for (var k in obj) use(k);",
            "for (const v of iter) use(v);",
            "async function drain(it) { for await (const c of it) use(c); }",
        ]),
    },
    Section {
        spec: "14.8-14.9",
        title: "continue / break (with labels)",
        expect: Supported(&["outer: for (;;) { for (;;) { continue outer; } break outer; }"]),
    },
    Section {
        spec: "14.10",
        title: "return",
        expect: Supported(&["function f() { return; } function g() { return 1; }"]),
    },
    Section {
        spec: "14.11",
        title: "with",
        expect: Supported(&["with (obj) { prop(); }"]),
    },
    Section {
        spec: "14.12",
        title: "switch",
        expect: Supported(&["switch (x) { case 1: a(); break; default: b(); }"]),
    },
    Section {
        spec: "14.13",
        title: "Labelled statement",
        expect: Supported(&["lbl: { break lbl; }"]),
    },
    Section {
        spec: "14.14-14.15",
        title: "throw / try",
        expect: Supported(&[
            "try { risky(); } catch (e) { handle(e); } finally { cleanup(); }",
            "try { risky(); } catch { recover(); }",
            "throw new Error('x');",
        ]),
    },
    Section {
        spec: "14.16",
        title: "debugger",
        expect: Supported(&["debugger;"]),
    },
    // ---- §15 Functions & Classes -----------------------------------------
    Section {
        spec: "15.1-15.2",
        title: "Function declarations & parameter lists",
        expect: Supported(&["function f(a, b = 1, { c }, [d], ...rest) { return a; }"]),
    },
    Section {
        spec: "15.3",
        title: "Arrow functions",
        expect: Supported(&[
            "const f = x => x + 1;",
            "const g = (a, b = 2) => { return a + b; };",
            "const h = () => ({ wrapped: true });",
        ]),
    },
    Section {
        spec: "15.4",
        title: "Method definitions (incl. get/set, async, generator)",
        expect: Supported(&[
            "class C { m() {} get p() { return 1; } set p(v) {} async a() {} *g() {} async *ag() {} static s() {} }",
        ]),
    },
    Section {
        spec: "15.5-15.6",
        title: "Generators & async generators",
        expect: Supported(&[
            "function* g() { yield 1; yield* other(); }",
            "async function* ag() { yield await p; }",
        ]),
    },
    Section {
        spec: "15.7",
        title: "Class definitions (fields, private members, static)",
        expect: Supported(&[
            "class A extends B { constructor() { super(); } }",
            "class F { x = 1; static y = 2; z; }",
            "class P { #secret = 0; static #count; #bump() { return ++this.#secret; } get #v() { return this.#secret; } static #sm() {} }",
            "class Q { check() { return this.#a + other.#a; } #a = 1; }",
        ]),
    },
    Section {
        spec: "15.7-static-block",
        title: "Class static initialization blocks",
        expect: Unsupported {
            probe: "class C { static { init(); } }",
            reason: "static {} blocks are not modeled; class bodies only carry methods and fields",
        },
    },
    Section {
        spec: "15.8-15.9",
        title: "Async functions & async arrows",
        expect: Supported(&[
            "async function f() { await g(); }",
            "const h = async x => await x; const k = async (a, b) => a + b;",
        ]),
    },
    // ---- §16.2 Modules ---------------------------------------------------
    Section {
        spec: "16.2.2",
        title: "Imports (default, named, namespace, bare)",
        expect: Supported(&[
            "import d from 'm';",
            "import { a } from 'm';",
            "import { a, b as c, default as dd } from 'm';",
            "import * as ns from 'm';",
            "import d, { a, b as c } from 'm';",
            "import d, * as ns from 'm';",
            "import 'side-effect';",
        ]),
    },
    Section {
        spec: "16.2.3",
        title: "Exports (named, re-export, star, default, declarations)",
        expect: Supported(&[
            "export { a, b as c };",
            "export { a, b as c } from 'm';",
            "export * from 'm';",
            "export * as ns from 'm';",
            "export default 40 + 2;",
            "export default function () {}",
            "export default function named() {}",
            "export default class {}",
            "export default async function () {}",
            "export var v = 1; export let l = 2; export const c = 3;",
            "export function f() {} export async function g() {}",
            "export class K {}",
        ]),
    },
    Section {
        spec: "16.2.3-string-names",
        title: "String module export names",
        expect: Unsupported {
            probe: "export { x as 'string name' };",
            reason: "module export names are atoms; arbitrary string names are not modeled",
        },
    },
    Section {
        spec: "16.2.2-attributes",
        title: "Import attributes (with clause)",
        expect: Unsupported {
            probe: "import cfg from './c.json' with { type: 'json' };",
            reason: "import attributes are a post-ES2022 proposal; the clause is rejected",
        },
    },
];

/// Asserts the parse → print → reparse property for one fixture: identical
/// pre-order kind streams and a printing fixed point, in both modes.
fn assert_conformance_roundtrip(spec: &str, src: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("§{spec}: fixture does not parse: {e}\n  {src}"));
    let stream1 = kind_stream(&p1);
    for (mode, printed) in [("readable", to_source(&p1)), ("minified", to_minified(&p1))] {
        let p2 = parse(&printed).unwrap_or_else(|e| {
            panic!("§{spec} [{mode}]: printed form does not reparse: {e}\n  src: {src}\n  printed: {printed}")
        });
        assert_eq!(
            stream1,
            kind_stream(&p2),
            "§{spec} [{mode}]: kind stream changed across print→reparse\n  src: {src}\n  printed: {printed}"
        );
        let reprinted = if mode == "readable" { to_source(&p2) } else { to_minified(&p2) };
        assert_eq!(
            printed, reprinted,
            "§{spec} [{mode}]: printing is not a fixed point\n  src: {src}"
        );
    }
}

#[test]
fn supported_sections_roundtrip() {
    let mut fixtures = 0usize;
    for s in SECTIONS {
        if let Supported(cases) = &s.expect {
            assert!(!cases.is_empty(), "§{}: empty fixture list", s.spec);
            for src in *cases {
                assert_conformance_roundtrip(s.spec, src);
                fixtures += 1;
            }
        }
    }
    assert!(fixtures >= 60, "conformance corpus shrank: {fixtures} fixtures");
}

#[test]
fn unsupported_sections_are_explicit_markers() {
    for s in SECTIONS {
        if let Unsupported { probe, reason } = &s.expect {
            assert!(!reason.is_empty(), "§{}: unsupported marker needs a reason", s.spec);
            assert!(
                parse(probe).is_err(),
                "§{} ({}): probe now parses — the parser gained support; \
                 move this section to Supported and update the README syntax matrix.\n  probe: {probe}",
                s.spec,
                s.title,
            );
        }
    }
}

/// Module-syntax fixtures must set the module goal; plain scripts must not.
#[test]
fn module_goal_detection() {
    for s in SECTIONS {
        let is_module_section = s.spec.starts_with("16.2.2") || s.spec.starts_with("16.2.3");
        if let Supported(cases) = &s.expect {
            for src in *cases {
                let p = parse(src).unwrap();
                if is_module_section {
                    assert!(p.module_goal(), "§{}: module fixture not module-goal: {src}", s.spec);
                } else if !src.contains("import") && !src.contains("export") {
                    assert!(!p.module_goal(), "§{}: script fixture flagged module: {src}", s.spec);
                }
            }
        }
    }
    // Expression-position dynamic import / import.meta alone do not make a
    // module goal — only declarations do.
    assert!(!parse("const p = import('./m.js');").unwrap().module_goal());
    assert!(!parse("log(import.meta.url);").unwrap().module_goal());
}

/// The table must keep covering every chapter the phase-04 checklist names:
/// a census over spec-section prefixes, so sections cannot silently vanish.
#[test]
fn checklist_chapters_are_covered() {
    let required = [
        "13.2", "13.3", "13.4", "13.5", "13.6", "13.7", "13.8", "13.9", "13.10", "13.11", "13.12",
        "13.13", "13.14", "13.15", "13.16", "14.", "15.", "16.2.2", "16.2.3",
    ];
    for prefix in required {
        assert!(
            SECTIONS.iter().any(|s| s.spec.starts_with(prefix)),
            "no conformance section covers §{prefix}"
        );
    }
    // Spec ids must be unique so failures are addressable.
    let mut ids: Vec<_> = SECTIONS.iter().map(|s| s.spec).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(before, ids.len(), "duplicate spec section ids");
}

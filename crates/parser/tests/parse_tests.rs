//! Integration tests for the parser: construct coverage, ASI, precedence,
//! and error behaviour.

use jsdetect_ast::*;
use jsdetect_parser::parse;

fn p(src: &str) -> Program {
    match parse(src) {
        Ok(p) => p,
        Err(e) => panic!("failed to parse {:?}: {}", src, e),
    }
}

fn kinds(src: &str) -> Vec<NodeKind> {
    kind_stream(&p(src))
}

fn first_expr(src: &str) -> Expr {
    match p(src).body.into_iter().next().unwrap() {
        Stmt::Expr { expr, .. } => expr,
        other => panic!("expected expression statement, got {:?}", other),
    }
}

// ---- statements -----------------------------------------------------------

#[test]
fn var_declarations_all_kinds() {
    for (src, kind) in [
        ("var a = 1;", VarKind::Var),
        ("let a = 1;", VarKind::Let),
        ("const a = 1;", VarKind::Const),
    ] {
        match &p(src).body[0] {
            Stmt::VarDecl { kind: k, decls, .. } => {
                assert_eq!(*k, kind);
                assert_eq!(decls.len(), 1);
            }
            other => panic!("unexpected {:?}", other),
        }
    }
}

#[test]
fn multi_declarator() {
    match &p("var a = 1, b, c = 3;").body[0] {
        Stmt::VarDecl { decls, .. } => {
            assert_eq!(decls.len(), 3);
            assert!(decls[0].init.is_some());
            assert!(decls[1].init.is_none());
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn let_as_plain_identifier() {
    // `let` not followed by a binding is an ordinary identifier.
    let e = first_expr("let + 1;");
    assert!(matches!(e, Expr::Binary { .. }));
}

#[test]
fn if_else_chain() {
    let ks = kinds("if (a) b(); else if (c) d(); else e();");
    assert_eq!(ks.iter().filter(|k| **k == NodeKind::IfStatement).count(), 2);
}

#[test]
fn for_classic() {
    match &p("for (var i = 0; i < 10; i++) sum += i;").body[0] {
        Stmt::For { init: Some(ForInit::Var { .. }), test: Some(_), update: Some(_), .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_all_parts_empty() {
    match &p("for (;;) break;").body[0] {
        Stmt::For { init: None, test: None, update: None, .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_expr_init() {
    match &p("for (i = 0; i < n; ++i) {}").body[0] {
        Stmt::For { init: Some(ForInit::Expr(_)), .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_in_with_declaration() {
    match &p("for (var k in obj) use(k);").body[0] {
        Stmt::ForIn { target: ForTarget::Var { kind: VarKind::Var, .. }, .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_in_with_expression_target() {
    match &p("for (k in obj) {}").body[0] {
        Stmt::ForIn { target: ForTarget::Pat(Pat::Ident(i)), .. } => assert_eq!(i.name, "k"),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_of_with_const() {
    match &p("for (const x of xs) f(x);").body[0] {
        Stmt::ForOf { target: ForTarget::Var { kind: VarKind::Const, .. }, .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn for_of_destructuring() {
    match &p("for (const [a, b] of pairs) {}").body[0] {
        Stmt::ForOf { target: ForTarget::Var { pat: Pat::Array { .. }, .. }, .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn while_and_do_while() {
    assert!(kinds("while (x) { x--; }").contains(&NodeKind::WhileStatement));
    assert!(kinds("do { x++; } while (x < 5);").contains(&NodeKind::DoWhileStatement));
    // do-while without trailing semicolon (ASI).
    assert!(kinds("do x++; while (x < 5)\ny()").contains(&NodeKind::DoWhileStatement));
}

#[test]
fn switch_with_cases_and_default() {
    match &p("switch (x) { case 1: a(); break; case 2: case 3: b(); break; default: c(); }").body[0]
    {
        Stmt::Switch { cases, .. } => {
            assert_eq!(cases.len(), 4);
            assert!(cases[3].test.is_none());
            assert!(cases[1].body.is_empty()); // fallthrough case 2
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn duplicate_default_rejected() {
    assert!(parse("switch (x) { default: a(); default: b(); }").is_err());
}

#[test]
fn try_catch_finally() {
    match &p("try { f(); } catch (e) { g(e); } finally { h(); }").body[0] {
        Stmt::Try { handler: Some(h), finalizer: Some(fin), .. } => {
            assert!(h.param.is_some());
            assert_eq!(fin.len(), 1);
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn optional_catch_binding() {
    match &p("try { f(); } catch { g(); }").body[0] {
        Stmt::Try { handler: Some(h), .. } => assert!(h.param.is_none()),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn try_without_handler_rejected() {
    assert!(parse("try { f(); }").is_err());
}

#[test]
fn throw_statement() {
    assert!(kinds("throw new Error('x');").contains(&NodeKind::ThrowStatement));
    // Newline after throw is a syntax error.
    assert!(parse("throw\nnew Error('x');").is_err());
}

#[test]
fn labeled_break_continue() {
    let src = "outer: for (;;) { for (;;) { if (a) break outer; continue outer; } }";
    let ks = kinds(src);
    assert!(ks.contains(&NodeKind::LabeledStatement));
    assert!(ks.contains(&NodeKind::BreakStatement));
    assert!(ks.contains(&NodeKind::ContinueStatement));
}

#[test]
fn with_statement() {
    assert!(kinds("with (obj) { prop = 1; }").contains(&NodeKind::WithStatement));
}

#[test]
fn debugger_and_empty() {
    let ks = kinds("debugger;;");
    assert!(ks.contains(&NodeKind::DebuggerStatement));
    assert!(ks.contains(&NodeKind::EmptyStatement));
}

// ---- functions & classes ---------------------------------------------------

#[test]
fn function_declaration_and_expression() {
    match &p("function add(a, b) { return a + b; }").body[0] {
        Stmt::FunctionDecl(f) => {
            assert_eq!(f.id.as_ref().unwrap().name, "add");
            assert_eq!(f.params.len(), 2);
        }
        other => panic!("unexpected {:?}", other),
    }
    let e = first_expr("(function (x) { return x; });");
    assert!(matches!(e, Expr::Function(f) if f.id.is_none()));
}

#[test]
fn generator_and_async_functions() {
    match &p("function* gen() { yield 1; yield* inner(); }").body[0] {
        Stmt::FunctionDecl(f) => assert!(f.is_generator),
        other => panic!("unexpected {:?}", other),
    }
    match &p("async function go() { await step(); }").body[0] {
        Stmt::FunctionDecl(f) => assert!(f.is_async),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn default_and_rest_params() {
    match &p("function f(a, b = 2, ...rest) {}").body[0] {
        Stmt::FunctionDecl(f) => {
            assert_eq!(f.params.len(), 3);
            assert!(matches!(f.params[1], Pat::Assign { .. }));
            assert!(matches!(f.params[2], Pat::Rest { .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn arrow_functions_all_shapes() {
    assert!(matches!(first_expr("x => x + 1;"), Expr::Arrow { body: ArrowBody::Expr(_), .. }));
    assert!(matches!(
        first_expr("() => 0;"),
        Expr::Arrow { ref params, .. } if params.is_empty()
    ));
    assert!(matches!(
        first_expr("(a, b) => { return a * b; };"),
        Expr::Arrow { body: ArrowBody::Block(_), .. }
    ));
    assert!(matches!(first_expr("async x => await x;"), Expr::Arrow { is_async: true, .. }));
    assert!(matches!(first_expr("async (a, b) => a + b;"), Expr::Arrow { is_async: true, .. }));
    assert!(matches!(
        first_expr("({a, b}) => a + b;"),
        Expr::Arrow { ref params, .. } if matches!(params[0], Pat::Object { .. })
    ));
    assert!(matches!(
        first_expr("(a = 1, ...rest) => rest;"),
        Expr::Arrow { ref params, .. } if params.len() == 2
    ));
}

#[test]
fn parenthesized_expr_is_not_arrow() {
    assert!(matches!(first_expr("(a + b);"), Expr::Binary { .. }));
    assert!(matches!(first_expr("(a, b);"), Expr::Sequence { .. }));
}

#[test]
fn nested_arrows() {
    let e = first_expr("a => b => a + b;");
    match e {
        Expr::Arrow { body: ArrowBody::Expr(inner), .. } => {
            assert!(matches!(*inner, Expr::Arrow { .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn class_declaration_full() {
    let src = r#"
        class Point extends Base {
            constructor(x, y) { super(); this.x = x; this.y = y; }
            get length() { return 2; }
            set length(v) { this._l = v; }
            static origin() { return new Point(0, 0); }
            *iter() { yield this.x; }
            async load() { await fetch('/'); }
            [Symbol.iterator]() { return this.iter(); }
            count = 0;
            static instances;
        }
    "#;
    match &p(src).body[0] {
        Stmt::ClassDecl(c) => {
            assert_eq!(c.id.as_ref().unwrap().name, "Point");
            assert!(c.super_class.is_some());
            assert_eq!(c.body.len(), 9);
            assert!(matches!(c.body[0].kind, MethodKind::Constructor));
            assert!(matches!(c.body[1].kind, MethodKind::Get));
            assert!(matches!(c.body[2].kind, MethodKind::Set));
            assert!(c.body[3].is_static);
            assert!(c.body[6].computed);
            assert!(matches!(c.body[7].kind, MethodKind::Field));
            assert!(c.body[8].is_static && matches!(c.body[8].kind, MethodKind::Field));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn class_expression() {
    assert!(matches!(first_expr("(class { m() {} });"), Expr::Class(_)));
}

// ---- expressions ------------------------------------------------------------

#[test]
fn precedence_mul_over_add() {
    match first_expr("1 + 2 * 3;") {
        Expr::Binary { op: BinaryOp::Add, right, .. } => {
            assert!(matches!(*right, Expr::Binary { op: BinaryOp::Mul, .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn left_associativity_of_sub() {
    match first_expr("a - b - c;") {
        Expr::Binary { op: BinaryOp::Sub, left, .. } => {
            assert!(matches!(*left, Expr::Binary { op: BinaryOp::Sub, .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn exponent_right_associative() {
    match first_expr("a ** b ** c;") {
        Expr::Binary { op: BinaryOp::Exp, right, .. } => {
            assert!(matches!(*right, Expr::Binary { op: BinaryOp::Exp, .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn logical_and_binds_tighter_than_or() {
    match first_expr("a || b && c;") {
        Expr::Logical { op: LogicalOp::Or, right, .. } => {
            assert!(matches!(*right, Expr::Logical { op: LogicalOp::And, .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn ternary_expression() {
    assert!(matches!(first_expr("a ? b : c;"), Expr::Conditional { .. }));
    // Nested in alternate (right associative).
    match first_expr("a ? b : c ? d : e;") {
        Expr::Conditional { alternate, .. } => {
            assert!(matches!(*alternate, Expr::Conditional { .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn assignment_operators() {
    for src in ["a = 1;", "a += 1;", "a **= 2;", "a >>>= 1;", "a &&= b;", "a ??= b;"] {
        assert!(matches!(first_expr(src), Expr::Assign { .. }), "failed: {}", src);
    }
}

#[test]
fn assignment_right_associative() {
    match first_expr("a = b = 1;") {
        Expr::Assign { value, .. } => assert!(matches!(*value, Expr::Assign { .. })),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn destructuring_assignment() {
    match first_expr("[a, b] = pair;") {
        Expr::Assign { target, .. } => assert!(matches!(*target, Pat::Array { .. })),
        other => panic!("unexpected {:?}", other),
    }
    match first_expr("({a, b} = obj);") {
        Expr::Assign { target, .. } => assert!(matches!(*target, Pat::Object { .. })),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn member_access_dot_and_bracket() {
    match first_expr("a.b.c;") {
        Expr::Member { object, property: MemberProp::Ident(p), .. } => {
            assert_eq!(p.name, "c");
            assert!(matches!(*object, Expr::Member { .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
    assert!(matches!(
        first_expr("a['b'];"),
        Expr::Member { property: MemberProp::Computed(_), .. }
    ));
}

#[test]
fn keyword_property_names() {
    assert!(matches!(first_expr("obj.class;"), Expr::Member { .. }));
    assert!(matches!(first_expr("obj.new;"), Expr::Member { .. }));
    let e = first_expr("({new: 1, for: 2, class: 3});");
    assert!(matches!(e, Expr::Object { ref props, .. } if props.len() == 3));
}

#[test]
fn calls_and_new() {
    assert!(matches!(first_expr("f(1, 2)(3);"), Expr::Call { .. }));
    match first_expr("new Foo(1);") {
        Expr::New { args, .. } => assert_eq!(args.len(), 1),
        other => panic!("unexpected {:?}", other),
    }
    // `new` without arguments.
    assert!(matches!(first_expr("new Foo;"), Expr::New { ref args, .. } if args.is_empty()));
    // `new a.b.C()` — member callee.
    match first_expr("new ns.Cls(1);") {
        Expr::New { callee, .. } => assert!(matches!(*callee, Expr::Member { .. })),
        other => panic!("unexpected {:?}", other),
    }
    // Chained call on new: `new C().m()`.
    assert!(matches!(first_expr("new C().m();"), Expr::Call { .. }));
}

#[test]
fn new_target_meta_property() {
    let src = "function f() { if (new.target) return 1; }";
    assert!(kinds(src).contains(&NodeKind::MetaProperty));
}

#[test]
fn spread_in_calls_and_arrays() {
    let ks = kinds("f(...args); [1, ...rest];");
    assert_eq!(ks.iter().filter(|k| **k == NodeKind::SpreadElement).count(), 2);
}

#[test]
fn array_holes() {
    match first_expr("[1, , 3];") {
        Expr::Array { elements, .. } => {
            assert_eq!(elements.len(), 3);
            assert!(elements[1].is_none());
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn object_literal_features() {
    let src = "({a: 1, 'b': 2, 3: 'c', [k]: 4, short, m() {}, get g() { return 1; }, set s(v) {}, ...spread});";
    match first_expr(src) {
        Expr::Object { props, .. } => {
            assert_eq!(props.len(), 9);
            assert!(props[3].computed);
            assert!(props[4].shorthand);
            assert!(props[5].method);
            assert!(matches!(props[6].kind, PropKind::Get));
            assert!(matches!(props[7].kind, PropKind::Set));
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn sequence_expression() {
    match first_expr("a, b, c;") {
        Expr::Sequence { exprs, .. } => assert_eq!(exprs.len(), 3),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn unary_and_update() {
    assert!(matches!(first_expr("typeof x;"), Expr::Unary { op: UnaryOp::TypeOf, .. }));
    assert!(matches!(first_expr("void 0;"), Expr::Unary { op: UnaryOp::Void, .. }));
    assert!(matches!(first_expr("delete a.b;"), Expr::Unary { op: UnaryOp::Delete, .. }));
    assert!(matches!(first_expr("!x;"), Expr::Unary { op: UnaryOp::Not, .. }));
    assert!(matches!(first_expr("-x;"), Expr::Unary { op: UnaryOp::Minus, .. }));
    assert!(matches!(first_expr("++x;"), Expr::Update { prefix: true, .. }));
    assert!(matches!(first_expr("x--;"), Expr::Update { prefix: false, .. }));
}

#[test]
fn double_negation_idiom() {
    // `!!x` and `!0` minifier idioms.
    match first_expr("!!x;") {
        Expr::Unary { op: UnaryOp::Not, arg, .. } => {
            assert!(matches!(*arg, Expr::Unary { op: UnaryOp::Not, .. }));
        }
        other => panic!("unexpected {:?}", other),
    }
    assert!(matches!(first_expr("!0;"), Expr::Unary { .. }));
}

#[test]
fn template_literals() {
    match first_expr("`a${x}b${y}c`;") {
        Expr::Template { quasis, exprs, .. } => {
            assert_eq!(quasis.len(), 3);
            assert_eq!(exprs.len(), 2);
            assert_eq!(quasis[0].cooked, "a");
            assert!(quasis[2].tail);
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn tagged_template() {
    assert!(matches!(first_expr("tag`x${1}y`;"), Expr::TaggedTemplate { .. }));
}

#[test]
fn optional_chaining() {
    assert!(matches!(first_expr("a?.b;"), Expr::Member { optional: true, .. }));
    assert!(matches!(
        first_expr("a?.[0];"),
        Expr::Member { optional: true, property: MemberProp::Computed(_), .. }
    ));
    assert!(matches!(first_expr("f?.(1);"), Expr::Call { .. }));
}

#[test]
fn regex_literals_in_expression_positions() {
    assert!(matches!(first_expr("/ab/g;"), Expr::Lit(Lit { value: LitValue::Regex { .. }, .. })));
    // After `(`:
    assert!(kinds("f(/x/);").contains(&NodeKind::Literal));
    // After `=`:
    match &p("var re = /y[a-z]+/i;").body[0] {
        Stmt::VarDecl { decls, .. } => {
            assert!(matches!(
                decls[0].init,
                Some(Expr::Lit(Lit { value: LitValue::Regex { .. }, .. }))
            ));
        }
        other => panic!("unexpected {:?}", other),
    }
    // After `return`:
    assert!(parse("function f() { return /z/; }").is_ok());
    // Division is not regex.
    match first_expr("a / b / c;") {
        Expr::Binary { op: BinaryOp::Div, .. } => {}
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn yield_expressions() {
    let src = "function* g() { yield; yield 1; yield* other(); }";
    let prog = p(src);
    let mut yields = 0;
    walk(&prog, &mut |n, _| {
        if n.kind() == NodeKind::YieldExpression {
            yields += 1;
        }
    });
    assert_eq!(yields, 3);
}

// ---- ASI -------------------------------------------------------------------

#[test]
fn asi_between_statements() {
    let prog = p("a = 1\nb = 2\nc = 3");
    assert_eq!(prog.body.len(), 3);
}

#[test]
fn asi_return() {
    // `return` followed by newline returns undefined.
    let src = "function f() { return\n1; }";
    let prog = p(src);
    match &prog.body[0] {
        Stmt::FunctionDecl(f) => {
            assert!(matches!(f.body[0], Stmt::Return { arg: None, .. }));
            // The `1;` becomes a separate expression statement.
            assert_eq!(f.body.len(), 2);
        }
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn asi_before_rbrace_and_eof() {
    assert!(parse("{ a = 1 }").is_ok());
    assert!(parse("a = 1").is_ok());
}

#[test]
fn asi_postfix_restriction() {
    // Newline before `++` starts a new statement.
    let prog = p("a\n++b");
    assert_eq!(prog.body.len(), 2);
}

#[test]
fn missing_semicolon_without_newline_is_error() {
    assert!(parse("a = 1 b = 2").is_err());
}

#[test]
fn asi_break_continue_labels() {
    // Newline after break ends the statement (label belongs to next stmt).
    let src = "x: for (;;) { break\nx; }";
    let prog = p(src);
    match &prog.body[0] {
        Stmt::Labeled { body, .. } => match &**body {
            Stmt::For { body, .. } => match &**body {
                Stmt::Block { body, .. } => {
                    assert!(matches!(body[0], Stmt::Break { label: None, .. }));
                }
                other => panic!("unexpected {:?}", other),
            },
            other => panic!("unexpected {:?}", other),
        },
        other => panic!("unexpected {:?}", other),
    }
}

// ---- errors ------------------------------------------------------------------

#[test]
fn syntax_errors_are_errors_not_panics() {
    for src in [
        "var;",
        "if (",
        "function () {}", // declaration requires name
        "for (var i = 0 i < 1;) {}",
        "a ==== b;",
        "class {",
        "({a:});",
        "[1, 2",
        "x ? y;",
        "*;",
    ] {
        assert!(parse(src).is_err(), "expected error for {:?}", src);
    }
}

#[test]
fn deeply_nested_input_errors_instead_of_overflowing() {
    let src = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
    assert!(parse(&src).is_err());
    let arr = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
    assert!(parse(&arr).is_err());
}

#[test]
fn fifty_k_deep_paren_bomb_errors_instead_of_overflowing() {
    // The ISSUE-4 regression input: 50k-deep `((((…))))`.
    let src = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
    assert!(parse(&src).is_err());
}

#[test]
fn new_chain_and_binding_pattern_bombs_error_instead_of_overflowing() {
    // `new new new … a` recurses through parse_member_only, which used to
    // have no depth guard.
    let src = format!("{}a", "new ".repeat(50_000));
    assert!(parse(&src).is_err());
    // Nested binding patterns recurse through parse_binding_pat, which also
    // used to have no depth guard.
    let pat = format!("var {}a{} = x;", "[".repeat(50_000), "]".repeat(50_000));
    assert!(parse(&pat).is_err());
    let obj = format!("var {}a{} = x;", "{a:".repeat(50_000), "}".repeat(50_000));
    assert!(parse(&obj).is_err());
}

#[test]
fn iterative_chain_bombs_error_instead_of_overflowing() {
    // Left-deep chains are built by parser loops, not recursion, so the
    // plain recursion guard never fires on them — but downstream recursive
    // consumers (and drop glue) descend one frame per link. The chain
    // charge must bound them all the same.
    let binary = format!("x = 1{};", "+1".repeat(200_000));
    assert!(parse(&binary).is_err());
    let call = format!("f{};", "()".repeat(100_000));
    assert!(parse(&call).is_err());
    let member = format!("a{};", ".b".repeat(100_000));
    assert!(parse(&member).is_err());
    let new_member = format!("new a{};", ".b".repeat(100_000));
    assert!(parse(&new_member).is_err());
    // Moderate chains — routine in minified bundles — still parse.
    let legit_binary = format!("x = 1{};", "+1".repeat(500));
    assert!(parse(&legit_binary).is_ok());
    let legit_member = format!("a{};", ".b".repeat(500));
    assert!(parse(&legit_member).is_ok());
}

#[test]
fn budgeted_parse_records_typed_depth_violation() {
    use jsdetect_guard::{AnalysisError, Budget, Limits};
    let src = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
    let budget = Budget::new(&Limits::wild());
    assert!(jsdetect_parser::parse_with_budget(&src, &budget).is_err());
    assert_eq!(
        budget.take_violation(),
        Some(AnalysisError::AstDepthExceeded { limit: Limits::wild().max_ast_depth })
    );
    // A shallow program under the same preset parses fine and records
    // nothing.
    let budget = Budget::new(&Limits::wild());
    assert!(jsdetect_parser::parse_with_budget("var x = (1 + 2) * 3;", &budget).is_ok());
    assert!(budget.take_violation().is_none());
    assert!(budget.tokens_used() > 0);
}

#[test]
fn realistic_program_parses() {
    let src = r#"
        (function (global, factory) {
            typeof exports === 'object' && typeof module !== 'undefined'
                ? factory(exports)
                : typeof define === 'function' && define.amd
                    ? define(['exports'], factory)
                    : factory((global = global || self).lib = {});
        }(this, function (exports) {
            'use strict';
            var VERSION = '1.2.3';
            function assign(target) {
                for (var i = 1; i < arguments.length; i++) {
                    var src = arguments[i];
                    for (var key in src) {
                        if (Object.prototype.hasOwnProperty.call(src, key)) {
                            target[key] = src[key];
                        }
                    }
                }
                return target;
            }
            var cache = {};
            function memoize(fn) {
                return function (arg) {
                    return cache[arg] !== undefined ? cache[arg] : (cache[arg] = fn(arg));
                };
            }
            exports.assign = assign;
            exports.memoize = memoize;
            exports.VERSION = VERSION;
            Object.defineProperty(exports, '__esModule', { value: true });
        }));
    "#;
    let prog = p(src);
    assert_eq!(prog.body.len(), 1);
}

#[test]
fn minified_style_program_parses() {
    let src = "var a=function(t,e){return t&&e?t+e:t||e},b=a(1,2),c=!0,d=b>2?[1,2,3].map(function(t){return t*2}):[];c&&d.forEach(function(t){console.log(t)});";
    assert!(parse(src).is_ok());
}

#[test]
fn obfuscated_style_program_parses() {
    let src = r#"var _0x1a2b=['\x48\x65\x6c\x6c\x6f','log'];(function(_0xc,_0xd){var _0xe=function(_0xf){while(--_0xf){_0xc['push'](_0xc['shift']());}};_0xe(++_0xd);}(_0x1a2b,0x1a3));var _0x3c4d=function(_0x10,_0x11){_0x10=_0x10-0x0;var _0x12=_0x1a2b[_0x10];return _0x12;};console[_0x3c4d('0x1')](_0x3c4d('0x0'));"#;
    assert!(parse(src).is_ok());
}

#[test]
fn getter_setter_named_get_set() {
    // `get` / `set` as ordinary property names and methods.
    assert!(parse("({get: 1, set: 2});").is_ok());
    assert!(parse("({get() { return 1; }, set() {}});").is_ok());
    assert!(parse("obj.get(1); obj.set(1);").is_ok());
}

#[test]
fn async_as_identifier() {
    assert!(parse("var async = 1; async = async + 1;").is_ok());
    assert!(parse("async();").is_ok());
}

#[test]
fn in_operator_inside_for_parens() {
    // `in` must be allowed inside parenthesized sub-expressions of for-init.
    assert!(parse("for (var x = ('a' in obj); x; x = false) {}").is_ok());
}

#[test]
fn comments_do_not_affect_ast() {
    let a = p("var x = 1; // trailing\n/* block */ var y = 2;");
    let b = p("var x = 1; var y = 2;");
    assert_eq!(kind_stream(&a), kind_stream(&b));
}

#[test]
fn spans_are_well_formed() {
    let src = "function f(a) { return a ? a + 1 : 0; }";
    let prog = p(src);
    walk(&prog, &mut |n, _| {
        let span = match n {
            NodeRef::Stmt(s) => s.span(),
            NodeRef::Expr(e) => e.span(),
            NodeRef::Pat(pat) => pat.span(),
            _ => return,
        };
        assert!(span.start <= span.end);
        assert!(span.end as usize <= src.len());
    });
}

use jsdetect_ast::visit::NodeRef;

//! `comma-sequence-density`: abnormally long comma-sequence chains.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Minimum sequence length before a chain is worth flagging. Hand-written
/// code rarely strings more than two or three expressions through the
/// comma operator; statement-merging minifiers and flatteners routinely
/// produce much longer chains.
const MIN_CHAIN_LEN: usize = 4;

/// Flags comma-sequence expressions with [`MIN_CHAIN_LEN`] or more
/// elements — the construct statement-merging minification leaves behind
/// and the normalize sequence pass unflattens.
pub struct CommaSequenceDensity;

impl Rule for CommaSequenceDensity {
    fn name(&self) -> &'static str {
        "comma-sequence-density"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for &(span, len) in &ctx.facts.sequence_chains {
            if len >= MIN_CHAIN_LEN {
                out.push(Diagnostic {
                    rule: self.name(),
                    span,
                    severity: self.severity(),
                    message: format!("comma-sequence chain of {} expressions", len),
                    data: vec![("chain_len", len.to_string())],
                });
            }
        }
    }
}

//! The sharded on-disk store with an in-memory LRU front.
//!
//! Layout: `<dir>/<2-hex shard>/<32-hex hash prefix>-<preset>.jdc`, 256
//! shards keyed by the first digest byte. Writers publish with
//! write-to-tmp + atomic rename, so readers (in this process or another)
//! never observe a half-written record; a per-shard mutex serializes this
//! process's IO per shard so two workers that miss on the same script
//! don't interleave tmp files. Cross-process writers are safe without
//! file locks because both sides publish byte-identical content for the
//! same key and rename is atomic — last writer wins with the same bytes.
//!
//! Every failure mode degrades to a recompute, never an abort: a corrupt
//! record (truncated, bit-flipped, zero-length) is evicted from disk and
//! counted under `cache/corrupt_evicted`; a record from another
//! feature-space or schema version is left for `gc` and counted under
//! `cache/stale_version`; both count a `cache/miss` so hit-rate math stays
//! honest.

use crate::blake::ContentHash;
use crate::lru::LruMap;
use crate::record::{decode, encode, CacheRecord};
use jsdetect_guard::Limits;
use jsdetect_obs::names;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of two-hex-prefix shard directories.
pub const N_SHARDS: usize = 256;

/// Default in-memory LRU capacity (records).
pub const DEFAULT_LRU_CAPACITY: usize = 4096;

/// File extension of cache records.
pub const RECORD_EXT: &str = "jdc";

/// Stable tag naming the limits a cached verdict was produced under.
///
/// Named presets map to themselves; any other [`Limits`] value gets a
/// content-derived `custom-<12 hex>` tag, so two different custom budgets
/// can never replay each other's verdicts.
pub fn preset_tag(limits: &Limits) -> String {
    for (name, preset) in [
        ("wild", Limits::wild()),
        ("trusted", Limits::trusted()),
        ("interactive", Limits::interactive()),
        ("unbounded", Limits::unbounded()),
    ] {
        if *limits == preset {
            return name.to_string();
        }
    }
    let json = serde_json::to_string(limits).unwrap_or_default();
    let digest = ContentHash::of(json.as_bytes()).to_hex();
    format!("custom-{}", &digest[..12])
}

/// Configuration for one opened cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Root directory of the store.
    pub dir: PathBuf,
    /// Feature-space version the cached payloads must match
    /// (`jsdetect_features::FEATURE_SPACE_VERSION` in production; tests
    /// inject other values to exercise invalidation).
    pub feature_version: u32,
    /// Limits preset tag (see [`preset_tag`]) baked into every key.
    pub preset: String,
    /// When set, lookups work but misses are never published back.
    pub readonly: bool,
    /// Capacity of the in-memory LRU front, in records.
    pub lru_capacity: usize,
}

impl CacheConfig {
    /// A read-write config for `dir` under the current feature-space
    /// version and the given limits.
    pub fn new(dir: impl Into<PathBuf>, limits: &Limits) -> CacheConfig {
        CacheConfig {
            dir: dir.into(),
            feature_version: jsdetect_features::FEATURE_SPACE_VERSION,
            preset: preset_tag(limits),
            readonly: false,
            lru_capacity: DEFAULT_LRU_CAPACITY,
        }
    }
}

/// Number of *extra* publish attempts after the first failure.
pub const PUBLISH_RETRIES: u32 = 2;

/// A fault hook for publish: called with the attempt index (0-based); a
/// `true` return makes that attempt fail without touching disk. Tests and
/// the serve chaos layer inject these to exercise the retry path.
pub type PublishInjector = Box<dyn Fn(u32) -> bool + Send + Sync>;

/// A content-addressed feature-vector cache:
/// `(content hash, feature-space version, limits preset) → CacheRecord`.
pub struct AnalysisCache {
    config: CacheConfig,
    /// Per-shard IO locks; index = first digest byte.
    shards: Vec<Mutex<()>>,
    lru: Mutex<LruMap<[u8; ContentHash::PREFIX_LEN], Arc<CacheRecord>>>,
    tmp_seq: AtomicU64,
    publish_injector: Mutex<Option<PublishInjector>>,
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCache").field("config", &self.config).finish_non_exhaustive()
    }
}

impl AnalysisCache {
    /// Opens (creating if needed) the store rooted at `config.dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error when the root directory cannot be
    /// created (readonly opens tolerate a missing directory: every lookup
    /// just misses).
    pub fn open(config: CacheConfig) -> std::io::Result<AnalysisCache> {
        if !config.readonly {
            std::fs::create_dir_all(&config.dir)?;
        }
        let shards = (0..N_SHARDS).map(|_| Mutex::new(())).collect();
        let lru = Mutex::new(LruMap::new(config.lru_capacity));
        Ok(AnalysisCache {
            config,
            shards,
            lru,
            tmp_seq: AtomicU64::new(0),
            publish_injector: Mutex::new(None),
        })
    }

    /// Installs (or clears) a publish fault injector; see
    /// [`PublishInjector`].
    pub fn set_publish_injector(&self, injector: Option<PublishInjector>) {
        *self.publish_injector.lock().unwrap_or_else(|e| e.into_inner()) = injector;
    }

    /// The configuration this cache was opened with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The on-disk path of `hash`'s record.
    pub fn record_path(&self, hash: &ContentHash) -> PathBuf {
        self.config.dir.join(hash.shard()).join(format!(
            "{}-{}.{}",
            hash.prefix_hex(),
            self.config.preset,
            RECORD_EXT
        ))
    }

    fn lru_key(hash: &ContentHash) -> [u8; ContentHash::PREFIX_LEN] {
        hash.0[..ContentHash::PREFIX_LEN].try_into().expect("prefix length")
    }

    fn shard_lock(&self, hash: &ContentHash) -> std::sync::MutexGuard<'_, ()> {
        self.shards[hash.shard_index()].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks one content hash up. `None` is always a recompute signal; the
    /// reason (plain miss, stale version, corrupt record) is reported
    /// through the `cache/*` counters.
    pub fn get(&self, hash: &ContentHash) -> Option<Arc<CacheRecord>> {
        let _t = jsdetect_obs::span(names::SPAN_CACHE_GET);
        if let Some(rec) =
            self.lru.lock().unwrap_or_else(|e| e.into_inner()).get(&Self::lru_key(hash))
        {
            jsdetect_obs::counter_add(names::CTR_CACHE_HIT, 1);
            return Some(rec);
        }
        let path = self.record_path(hash);
        let bytes = {
            let _guard = self.shard_lock(hash);
            match std::fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    jsdetect_obs::counter_add(names::CTR_CACHE_MISS, 1);
                    return None;
                }
            }
        };
        match decode(&bytes, hash, self.config.feature_version, &self.config.preset) {
            Ok(rec) => {
                jsdetect_obs::counter_add(names::CTR_CACHE_HIT, 1);
                let rec = Arc::new(rec);
                self.lru
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(Self::lru_key(hash), rec.clone());
                Some(rec)
            }
            Err(e) if e.is_stale() => {
                // Valid record from another version: recompute (and let
                // `put` overwrite / `gc` collect it), but never delete a
                // file another feature-space version could still serve.
                jsdetect_obs::counter_add(names::CTR_CACHE_STALE_VERSION, 1);
                jsdetect_obs::counter_add(names::CTR_CACHE_MISS, 1);
                None
            }
            Err(_) => {
                // Corrupt on disk: evict the file so the next pass
                // rewrites it, and drop any memory copy.
                jsdetect_obs::counter_add(names::CTR_CACHE_CORRUPT_EVICTED, 1);
                jsdetect_obs::counter_add(names::CTR_CACHE_MISS, 1);
                let _guard = self.shard_lock(hash);
                let _ = std::fs::remove_file(&path);
                self.lru.lock().unwrap_or_else(|e| e.into_inner()).remove(&Self::lru_key(hash));
                None
            }
        }
    }

    /// Publishes one record under `hash`. A transient write failure is
    /// retried up to [`PUBLISH_RETRIES`] times with a short jittered
    /// backoff (counted under `cache/publish_retried`); a publish that
    /// still fails is counted (`cache/publish_failed`) and swallowed: a
    /// cache that cannot write degrades to a slower scan, never a failed
    /// one.
    pub fn put(&self, hash: &ContentHash, record: &CacheRecord) {
        if self.config.readonly {
            return;
        }
        let _t = jsdetect_obs::span(names::SPAN_CACHE_PUT);
        let bytes = encode(record, hash, self.config.feature_version, &self.config.preset);
        let path = self.record_path(hash);
        let shard_dir = path.parent().expect("record path has a shard directory");
        for attempt in 0..=PUBLISH_RETRIES {
            if attempt > 0 {
                jsdetect_obs::counter_add(names::CTR_CACHE_PUBLISH_RETRIED, 1);
                // Deterministic jitter: the cache carries no RNG, but the
                // content hash is uniform — derive the stagger from it so
                // two workers retrying the same shard don't collide in
                // lockstep.
                let jitter = u64::from(hash.0[attempt as usize % hash.0.len()]) % 3;
                std::thread::sleep(std::time::Duration::from_millis(
                    (1u64 << (attempt - 1)) + jitter,
                ));
            }
            if self.publish_attempt(hash, shard_dir, &path, &bytes, attempt) {
                jsdetect_obs::counter_add(names::CTR_CACHE_PUT, 1);
                self.lru
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(Self::lru_key(hash), Arc::new(record.clone()));
                return;
            }
        }
        jsdetect_obs::counter_add(names::CTR_CACHE_PUBLISH_FAILED, 1);
    }

    /// One tmp-write + atomic-rename publish attempt; returns success.
    fn publish_attempt(
        &self,
        hash: &ContentHash,
        shard_dir: &Path,
        path: &Path,
        bytes: &[u8],
        attempt: u32,
    ) -> bool {
        if let Some(injector) =
            self.publish_injector.lock().unwrap_or_else(|e| e.into_inner()).as_ref()
        {
            if injector(attempt) {
                return false;
            }
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = shard_dir.join(format!(".tmp-{}-{}", std::process::id(), seq));
        let _guard = self.shard_lock(hash);
        let wrote = std::fs::create_dir_all(shard_dir)
            .and_then(|_| std::fs::write(&tmp, bytes))
            .and_then(|_| std::fs::rename(&tmp, path));
        if wrote.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        wrote.is_ok()
    }

    /// Drops the in-memory front (disk records stay). Tests use this to
    /// force disk reads; long-running services can use it to bound memory.
    pub fn drop_memory(&self) {
        self.lru.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Root directory of this store.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_features::FeaturePayload;
    use jsdetect_guard::OutcomeKind;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch dir per test (no tempfile crate offline).
    fn scratch() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "jsdetect-cache-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample() -> CacheRecord {
        CacheRecord {
            outcome: OutcomeKind::Ok,
            error_kind: String::new(),
            error_msg: String::new(),
            payload: Some(FeaturePayload {
                handpicked: vec![1.0, 2.0],
                lint: vec![0.5],
                normalize: vec![1.0],
                ngrams: vec![([1, 2, 3, 4], 9)],
                degraded: false,
            }),
        }
    }

    fn open(dir: &Path) -> AnalysisCache {
        AnalysisCache::open(CacheConfig::new(dir, &Limits::wild())).unwrap()
    }

    #[test]
    fn put_then_get_roundtrips_via_disk_and_memory() {
        let dir = scratch();
        let cache = open(&dir);
        let h = ContentHash::of(b"var x = 1;");
        assert!(cache.get(&h).is_none());
        cache.put(&h, &sample());
        assert_eq!(*cache.get(&h).unwrap(), sample());
        // Force the disk path.
        cache.drop_memory();
        assert_eq!(*cache.get(&h).unwrap(), sample());
        // A second instance (fresh process, cold memory) sees it too.
        let cache2 = open(&dir);
        assert_eq!(*cache2.get(&h).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_land_in_two_hex_shards() {
        let dir = scratch();
        let cache = open(&dir);
        let h = ContentHash::of(b"f();");
        cache.put(&h, &sample());
        let path = cache.record_path(&h);
        assert!(path.exists());
        let shard = path.parent().unwrap().file_name().unwrap().to_str().unwrap();
        assert_eq!(shard.len(), 2);
        assert_eq!(shard, &h.to_hex()[..2]);
        assert!(path.file_name().unwrap().to_str().unwrap().ends_with("-wild.jdc"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_presets_do_not_share_records() {
        let dir = scratch();
        let wild = open(&dir);
        let trusted = AnalysisCache::open(CacheConfig::new(&dir, &Limits::trusted())).unwrap();
        let h = ContentHash::of(b"g();");
        wild.put(&h, &sample());
        assert!(trusted.get(&h).is_none(), "trusted must not replay a wild verdict");
        assert!(wild.get(&h).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feature_version_bump_is_a_stale_miss_and_put_overwrites() {
        let dir = scratch();
        let h = ContentHash::of(b"h();");
        open(&dir).put(&h, &sample());
        let mut cfg = CacheConfig::new(&dir, &Limits::wild());
        cfg.feature_version += 1;
        let bumped = AnalysisCache::open(cfg).unwrap();
        assert!(bumped.get(&h).is_none());
        // The stale file survives the miss (gc's job), but a publish under
        // the new version overwrites it in place.
        assert!(bumped.record_path(&h).exists());
        bumped.put(&h, &sample());
        assert!(bumped.get(&h).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_evicted_and_recovers_on_next_put() {
        let dir = scratch();
        let cache = open(&dir);
        let h = ContentHash::of(b"k();");
        cache.put(&h, &sample());
        let path = cache.record_path(&h);
        // Bit-flip the stored payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        cache.drop_memory();
        assert!(cache.get(&h).is_none());
        assert!(!path.exists(), "corrupt record must be evicted from disk");
        cache.put(&h, &sample());
        assert_eq!(*cache.get(&h).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_publish_failure_is_retried_then_succeeds() {
        let dir = scratch();
        let cache = open(&dir);
        // First attempt fails, first retry succeeds.
        cache.set_publish_injector(Some(Box::new(|attempt| attempt == 0)));
        let h = ContentHash::of(b"retry();");
        cache.put(&h, &sample());
        cache.drop_memory();
        assert_eq!(*cache.get(&h).unwrap(), sample(), "record must land despite one failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_publish_failure_gives_up_after_bounded_retries() {
        let dir = scratch();
        let cache = open(&dir);
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        cache.set_publish_injector(Some(Box::new(move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            true
        })));
        let h = ContentHash::of(b"never();");
        cache.put(&h, &sample());
        assert_eq!(
            attempts.load(Ordering::Relaxed),
            1 + PUBLISH_RETRIES,
            "put must stop after the bounded retry budget"
        );
        cache.drop_memory();
        assert!(cache.get(&h).is_none(), "nothing may be published");
        // Clearing the injector restores normal publishing.
        cache.set_publish_injector(None);
        cache.put(&h, &sample());
        assert!(cache.get(&h).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readonly_cache_reads_but_never_writes() {
        let dir = scratch();
        let rw = open(&dir);
        let h = ContentHash::of(b"m();");
        rw.put(&h, &sample());
        let mut cfg = CacheConfig::new(&dir, &Limits::wild());
        cfg.readonly = true;
        let ro = AnalysisCache::open(cfg).unwrap();
        assert!(ro.get(&h).is_some());
        let h2 = ContentHash::of(b"n();");
        ro.put(&h2, &sample());
        assert!(!ro.record_path(&h2).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readonly_open_tolerates_missing_directory() {
        let dir = scratch().join("never-created");
        let mut cfg = CacheConfig::new(&dir, &Limits::wild());
        cfg.readonly = true;
        let ro = AnalysisCache::open(cfg).unwrap();
        assert!(ro.get(&ContentHash::of(b"x")).is_none());
        assert!(!dir.exists());
    }

    #[test]
    fn preset_tags_are_stable_and_collision_free() {
        assert_eq!(preset_tag(&Limits::wild()), "wild");
        assert_eq!(preset_tag(&Limits::trusted()), "trusted");
        assert_eq!(preset_tag(&Limits::interactive()), "interactive");
        assert_eq!(preset_tag(&Limits::unbounded()), "unbounded");
        let custom_a = Limits { max_tokens: 123, ..Limits::wild() };
        let custom_b = Limits { max_tokens: 124, ..Limits::wild() };
        let tag_a = preset_tag(&custom_a);
        assert!(tag_a.starts_with("custom-"), "{}", tag_a);
        assert_eq!(tag_a, preset_tag(&custom_a.clone()));
        assert_ne!(tag_a, preset_tag(&custom_b));
    }

    #[test]
    fn concurrent_writers_on_one_key_converge() {
        let dir = scratch();
        let cache = open(&dir);
        let h = ContentHash::of(b"r();");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..16 {
                        cache.put(&h, &sample());
                        if let Some(rec) = cache.get(&h) {
                            assert_eq!(*rec, sample());
                        }
                    }
                });
            }
        });
        assert_eq!(*cache.get(&h).unwrap(), sample());
        // No tmp litter left behind.
        let shard_dir = cache.record_path(&h);
        for entry in std::fs::read_dir(shard_dir.parent().unwrap()).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(!name.to_string_lossy().starts_with(".tmp-"), "leftover tmp file {:?}", name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

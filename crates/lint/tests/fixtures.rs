//! Fixture tests: every rule must fire on the transform preset that
//! produces its signature and stay silent on clean input.

use jsdetect_lint::{Diagnostic, LintRunner, Severity};
use jsdetect_parser::parse;
use jsdetect_transform::{apply, Technique};

/// Clean base program: every binding is read, every string is used, no
/// dead code — zero diagnostics expected before transformation.
const BASE: &str = r#"
function greet(name) {
    var message = 'hello there ' + name;
    var punct = '!!';
    log(message + punct);
    return message;
}
function compute(a, b) {
    var total = a + b;
    var scale = 'factor';
    var label = 'result value';
    log(label + ': ' + total + scale);
    return total;
}
greet('world');
compute(3, 4);
log('done with work');
"#;

fn lint(src: &str) -> Vec<Diagnostic> {
    let program = parse(src).expect("fixture must parse");
    let graph = jsdetect_flow::analyze(&program);
    LintRunner::default().run(src, &program, &graph)
}

fn transformed(t: Technique) -> String {
    apply(BASE, &[t], 11).expect("preset must apply")
}

fn hits<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

/// Every diagnostic must anchor to a real in-bounds span.
fn assert_anchored(diags: &[Diagnostic], src: &str) {
    for d in diags {
        assert!(
            (d.span.end as usize) <= src.len() && d.span.start < d.span.end,
            "{} has a bad span {:?} for source of {} bytes",
            d.rule,
            d.span,
            src.len()
        );
    }
}

#[test]
fn clean_base_is_silent() {
    assert!(lint(BASE).is_empty(), "clean fixture must produce no diagnostics: {:#?}", lint(BASE));
}

#[test]
fn unreachable_code_fires_on_dead_code_injection() {
    let src = transformed(Technique::DeadCodeInjection);
    let diags = lint(&src);
    let found = hits(&diags, "unreachable-code");
    assert!(!found.is_empty(), "dead-code output must contain unreachable code:\n{}", src);
    assert_anchored(&diags, &src);
    // The opaque-predicate findings name the sentinel state variable.
    assert!(
        found.iter().any(|d| d.data.iter().any(|(k, _)| *k == "state_var")),
        "expected at least one opaque-predicate finding"
    );
}

#[test]
fn unused_binding_fires_on_dead_code_injection() {
    let src = transformed(Technique::DeadCodeInjection);
    let diags = lint(&src);
    assert!(
        !hits(&diags, "unused-binding").is_empty(),
        "junk declarations must be flagged:\n{}",
        src
    );
}

#[test]
fn flattening_dispatcher_fires_on_control_flow_flattening() {
    let src = transformed(Technique::ControlFlowFlattening);
    let diags = lint(&src);
    let found = hits(&diags, "flattening-dispatcher");
    assert!(!found.is_empty(), "dispatcher must be flagged:\n{}", src);
    // The span must anchor the actual switch statement.
    let snippet = &src[found[0].span.start as usize..found[0].span.end as usize];
    assert!(snippet.starts_with("switch"), "span should cover the switch, got: {}", snippet);
}

#[test]
fn global_string_array_fires_on_global_array() {
    let src = transformed(Technique::GlobalArray);
    let diags = lint(&src);
    assert!(
        !hits(&diags, "global-string-array").is_empty(),
        "string pool must be flagged:\n{}",
        src
    );
    assert_anchored(&diags, &src);
}

#[test]
fn string_decoder_call_fires_on_global_array() {
    let src = transformed(Technique::GlobalArray);
    let diags = lint(&src);
    let found = hits(&diags, "string-decoder-call");
    assert!(!found.is_empty(), "decoder shim must be flagged:\n{}", src);
    assert!(found[0].data.iter().any(|(k, _)| *k == "calls"));
}

#[test]
fn debugger_in_loop_fires_on_debug_protection() {
    let src = transformed(Technique::DebugProtection);
    let diags = lint(&src);
    assert!(
        !hits(&diags, "debugger-in-loop").is_empty(),
        "constructor('debugger') probe must be flagged:\n{}",
        src
    );
}

#[test]
fn debugger_statement_in_loop_fires() {
    let src = "while (running) { debugger; step(); }";
    let diags = lint(src);
    let found = hits(&diags, "debugger-in-loop");
    assert_eq!(found.len(), 1);
    assert_eq!(&src[found[0].span.start as usize..found[0].span.end as usize], "debugger");
}

#[test]
fn self_defending_fires_on_self_defending() {
    let src = transformed(Technique::SelfDefending);
    let diags = lint(&src);
    assert!(
        !hits(&diags, "self-defending-tostring").is_empty(),
        "regex pump must be flagged:\n{}",
        src
    );
}

#[test]
fn density_fires_on_identifier_obfuscation() {
    let src = transformed(Technique::IdentifierObfuscation);
    let diags = lint(&src);
    assert!(
        !hits(&diags, "non-alphanumeric-density").is_empty(),
        "hex-renamed identifiers must be flagged:\n{}",
        src
    );
}

#[test]
fn density_fires_on_no_alphanumeric() {
    let src = transformed(Technique::NoAlphanumeric);
    let diags = lint(&src);
    assert!(!hits(&diags, "non-alphanumeric-density").is_empty(), "jsfuck charset must be flagged");
}

#[test]
fn comma_sequence_fires_on_long_chains() {
    let src = "init(), step(), step(), step(), finish();";
    let diags = lint(src);
    let found = hits(&diags, "comma-sequence-density");
    assert_eq!(found.len(), 1, "a 5-element chain must be flagged:\n{:#?}", diags);
    assert!(found[0].data.iter().any(|(k, v)| *k == "chain_len" && v == "5"));
    assert_anchored(&diags, src);
}

#[test]
fn comma_sequence_silent_on_short_chains() {
    let src = "for (var i = 0, j = 9; i < j; i++, j--) { swap(i, j); }\nlog((probe(), value));";
    let diags = lint(src);
    assert!(
        hits(&diags, "comma-sequence-density").is_empty(),
        "short idiomatic sequences must not be flagged:\n{:#?}",
        diags
    );
}

#[test]
fn comma_sequence_fires_on_advanced_minification() {
    // Enough adjacent expression statements for the minifier's
    // statement-merge to build a chain past the rule threshold.
    let plain = "setup();\nwork(1);\nwork(2);\nwork(3);\nteardown();";
    let src = apply(plain, &[Technique::MinificationAdvanced], 11).expect("preset must apply");
    let diags = lint(&src);
    assert!(
        !hits(&diags, "comma-sequence-density").is_empty(),
        "statement-merged output must contain long comma chains:\n{}",
        src
    );
}

#[test]
fn signature_rules_silent_on_generated_regular_corpus() {
    let gt = jsdetect_corpus::GroundTruth::generate(12, 7);
    for sample in &gt.regular {
        let diags = lint(&sample.src);
        let sigs: Vec<_> = diags.iter().filter(|d| d.severity == Severity::Signature).collect();
        assert!(
            sigs.is_empty(),
            "signature rules must stay silent on regular code, got {:#?} for:\n{}",
            sigs,
            sample.src
        );
    }
}

#[test]
fn minification_produces_no_signature_findings() {
    for t in [Technique::MinificationSimple, Technique::MinificationAdvanced] {
        let src = transformed(t);
        let diags = lint(&src);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Signature),
            "minification is not obfuscation; no signature findings expected for {:?}:\n{}",
            t,
            src
        );
    }
}

#[test]
fn diagnostics_are_sorted_by_span() {
    let src = transformed(Technique::DeadCodeInjection);
    let diags = lint(&src);
    for w in diags.windows(2) {
        assert!(
            (w[0].span.start, w[0].span.end) <= (w[1].span.start, w[1].span.end),
            "diagnostics must come back span-sorted"
        );
    }
}

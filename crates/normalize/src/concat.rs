//! String rebuilding collapse: undoes the runtime string constructions the
//! `transform::string_obf` pass emits.
//!
//! Three shapes fold back into plain string literals, bottom-up so whole
//! chains collapse in one traversal:
//!
//! - `'sec' + 'ret'` → `'secret'` (split concatenation),
//! - `String.fromCharCode(104, 105)` → `'hi'`,
//! - `'terces'.split('').reverse().join('')` → `'secret'`.

use crate::eval::str_expr;
use crate::{Pass, PassCx};
use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
use jsdetect_ast::*;

/// See the module docs.
pub(crate) struct StringConcatPass;

impl Pass for StringConcatPass {
    fn name(&self) -> &'static str {
        "string-concat"
    }

    fn counter(&self) -> &'static str {
        "normalize/string-concat/rewrites"
    }

    fn run(&self, program: &mut Program, cx: &PassCx) -> u64 {
        let mut v = Collapse { cx, count: 0 };
        v.visit_program_mut(program);
        v.count
    }
}

struct Collapse<'a, 'b> {
    cx: &'a PassCx<'b>,
    count: u64,
}

impl MutVisitor for Collapse<'_, '_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
        self.cx.tick(1);
        if let Some(folded) = try_collapse(e) {
            if self.cx.spend() {
                *e = folded;
                self.count += 1;
            }
        }
    }
}

fn str_of(e: &Expr) -> Option<&str> {
    e.as_str_lit()
}

fn try_collapse(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Binary { op: BinaryOp::Add, left, right, span } => {
            let (a, b) = (str_of(left)?, str_of(right)?);
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Some(str_expr(s, *span))
        }
        Expr::Call { callee, args, span } => {
            if is_static_member(callee, "String", "fromCharCode") {
                return from_char_code(args, *span);
            }
            reverse_chain(callee, args, *span)
        }
        _ => None,
    }
}

/// `String.fromCharCode(104, 105, ...)` with all-literal code units.
fn from_char_code(args: &[Expr], span: Span) -> Option<Expr> {
    if args.is_empty() {
        return Some(str_expr(String::new(), span));
    }
    let mut units: Vec<u16> = Vec::with_capacity(args.len());
    for a in args {
        let n = match a {
            Expr::Lit(Lit { value: LitValue::Num(n), .. }) => *n,
            _ => return None,
        };
        if n.fract() != 0.0 || !(0.0..=65_535.0).contains(&n) {
            return None;
        }
        units.push(n as u16);
    }
    // Lone surrogates have no valid string spelling; leave them alone.
    let s = String::from_utf16(&units).ok()?;
    Some(str_expr(s, span))
}

/// `'terces'.split('').reverse().join('')`.
fn reverse_chain(callee: &Expr, join_args: &[Expr], span: Span) -> Option<Expr> {
    let (reverse_call, m) = method_target(callee, "join")?;
    if !matches!(join_args, [arg] if str_of(arg) == Some("")) || m {
        return None;
    }
    let Expr::Call { callee: rev_callee, args: rev_args, .. } = reverse_call else { return None };
    let (split_call, _) = method_target(rev_callee, "reverse")?;
    if !rev_args.is_empty() {
        return None;
    }
    let Expr::Call { callee: split_callee, args: split_args, .. } = split_call else { return None };
    let (receiver, _) = method_target(split_callee, "split")?;
    if !matches!(split_args.as_slice(), [arg] if str_of(arg) == Some("")) {
        return None;
    }
    let reversed = str_of(receiver)?;
    Some(str_expr(reversed.chars().rev().collect::<String>(), span))
}

/// If `e` is `<object>.<name>`, returns the object (and whether the access
/// was optional, which disables folding).
fn method_target<'e>(e: &'e Expr, name: &str) -> Option<(&'e Expr, bool)> {
    match e {
        Expr::Member { object, property: MemberProp::Ident(id), optional, .. }
            if id.name == name =>
        {
            Some((object, *optional))
        }
        _ => None,
    }
}

fn is_static_member(e: &Expr, object: &str, name: &str) -> bool {
    match method_target(e, name) {
        Some((Expr::Ident(id), false)) => id.name == object,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_program, NormalizeOptions, PassKind};
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn run(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let opts = NormalizeOptions {
            passes: vec![PassKind::StringConcat],
            ..NormalizeOptions::default()
        };
        normalize_program(&mut p, &opts);
        to_minified(&p)
    }

    #[test]
    fn collapses_split_chains_in_one_round() {
        assert_eq!(run("var m = 'se' + 'cr' + 'et';"), "var m='secret';");
    }

    #[test]
    fn collapses_from_char_code() {
        assert_eq!(run("var m = String.fromCharCode(104, 105);"), "var m='hi';");
        assert_eq!(run("var m = String.fromCharCode();"), "var m='';");
    }

    #[test]
    fn collapses_reverse_chains() {
        assert_eq!(run("var m = 'terces'.split('').reverse().join('');"), "var m='secret';");
    }

    #[test]
    fn leaves_dynamic_shapes_alone() {
        assert_eq!(run("var m = a + 'x';"), "var m=a+'x';");
        assert_eq!(run("var m = String.fromCharCode(c);"), "var m=String.fromCharCode(c);");
        assert_eq!(
            run("var m = s.split('').reverse().join('');"),
            "var m=s.split('').reverse().join('');"
        );
        assert_eq!(
            run("var m = 'ab'.split('-').reverse().join('');"),
            "var m='ab'.split('-').reverse().join('');"
        );
    }

    #[test]
    fn numbers_are_not_coerced() {
        assert_eq!(run("var m = 1 + 'x';"), "var m=1+'x';");
        assert_eq!(run("var m = 'x' + 1;"), "var m='x'+1;");
    }

    #[test]
    fn lone_surrogate_codes_are_left_alone() {
        let out = run("var m = String.fromCharCode(55296);");
        assert!(out.contains("fromCharCode"), "{}", out);
    }

    #[test]
    fn undoes_the_string_obf_transform() {
        use jsdetect_transform::{apply, Technique};
        let src = "function greet() { return 'hello world, obfuscated people'; }";
        for seed in [1u64, 2, 3, 4, 5] {
            let obf = apply(src, &[Technique::StringObfuscation], seed).unwrap();
            let mut p = parse(&obf).unwrap();
            let report = normalize_program(&mut p, &NormalizeOptions::default());
            let out = to_minified(&p);
            // Whatever mix of split/reverse/fromCharCode the seed picked,
            // every statically decodable chain must collapse; the encoded
            // decoder-call mode is the only shape allowed to survive.
            if !out.contains("parseInt") {
                assert!(out.contains("'hello world, obfuscated people'"), "seed {}: {}", seed, out);
            }
            assert!(report.total_rewrites() > 0 || out.contains("parseInt"), "seed {}", seed);
        }
    }
}

// A tiny observable store module, bundler-style re-export surface.
import { deepFreeze } from "./freeze.js";

let state = deepFreeze({ items: [], total: 0n });
const subscribers = new Set();

export function getState() {
    return state;
}

export function subscribe(fn) {
    subscribers.add(fn);
    return () => subscribers.delete(fn);
}

export function dispatch(action) {
    const next = reduce(state, action);
    if (next !== state) {
        state = deepFreeze(next);
        for (const fn of subscribers) {
            fn(state);
        }
    }
    return state;
}

function reduce(prev, action) {
    switch (action?.type) {
        case "add":
            return {
                items: [...prev.items, action.item],
                total: prev.total + BigInt(action.item.price ?? 0),
            };
        case "clear":
            return { items: [], total: 0n };
        default:
            return prev;
    }
}

export * from "./selectors.js";
export * as middleware from "./middleware.js";
export { deepFreeze };
export default dispatch;
